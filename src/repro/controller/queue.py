"""Bounded command-queue model.

A real memory controller holds a finite number of outstanding column
commands; command issue can therefore only run a bounded distance
ahead of the data the DRAM is still delivering.  The paper's channel
model is transaction-level, so we capture the effect with a single
parameter: the command for access *i* may not issue before the data
phase of access *i - depth* has started.

The bound matters for row misses: with a deep queue the controller
issues the precharge/activate pair for an upcoming row while earlier
bursts still occupy the data bus, hiding most of tRP+tRCD; with a
shallow queue the miss latency lands on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CommandQueueModel:
    """Depth of the controller's column-command queue."""

    #: Maximum accesses whose commands may be in flight ahead of data.
    depth: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.depth <= 4096:
            raise ConfigurationError(
                f"queue depth must be in [1, 4096], got {self.depth}"
            )

    def make_ring(self) -> list:
        """Create the engine's ring buffer of past data-start times."""
        return [0] * self.depth
