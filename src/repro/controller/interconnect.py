"""The DRAM interconnect cost model.

Fig. 2 of the paper places a *DRAM interconnect* between every memory
controller and its bank cluster, and the channel model's "delay and
power consumption figures" are attained from the controller +
interconnect + bank cluster entity as a whole.  The paper models the
system at transaction level, where each access carries an address
phase and arbitration besides its data phase; those phases cannot
always be hidden behind the previous access's data phase.

We model that exposure as an *average* of ``address_cycles_per_access``
extra interconnect-clock cycles per burst, applied with an integer
accumulator so the engine stays in pure integer arithmetic (an extra
stall cycle is inserted whenever the accumulated fraction reaches one).

The default value is a calibration constant: together with the DRAM
timing overheads (row misses, refresh, read/write turnaround) it
reproduces the paper's feasibility boundaries -- a single 400 MHz
channel sustains roughly 80 % of its raw bandwidth on the use-case
traffic, which is what Fig. 3/4's pass/fail pattern implies (see
EXPERIMENTS.md for the derivation).  Setting it to zero yields an
ideal interconnect that exposes only DRAM protocol overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Fixed-point denominator for the per-access overhead accumulator.
#: Must be a power of two: the engine's hot loop reduces the
#: accumulator with the shift/mask pair derived below.
OVERHEAD_SCALE = 4096

#: log2(OVERHEAD_SCALE), derived (not hardcoded) so the engine's
#: shift can never drift out of sync with the scale.
OVERHEAD_SHIFT = OVERHEAD_SCALE.bit_length() - 1
if OVERHEAD_SCALE != 1 << OVERHEAD_SHIFT:  # pragma: no cover
    raise AssertionError("OVERHEAD_SCALE must be a power of two")


@dataclass(frozen=True)
class InterconnectModel:
    """Average per-access overhead of the channel's DRAM interconnect."""

    #: Average exposed interconnect cycles per burst access.
    address_cycles_per_access: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.address_cycles_per_access <= 8.0:
            raise ConfigurationError(
                "address_cycles_per_access must be in [0, 8], got "
                f"{self.address_cycles_per_access}"
            )

    @property
    def overhead_fixed_point(self) -> int:
        """Per-access overhead in 1/:data:`OVERHEAD_SCALE` cycles.

        The engine adds this to an accumulator per access and inserts
        ``accumulator // OVERHEAD_SCALE`` whole stall cycles, keeping
        the remainder.  Over a long run the average overhead converges
        to ``address_cycles_per_access`` exactly.
        """
        return round(self.address_cycles_per_access * OVERHEAD_SCALE)

    def ideal(self) -> "InterconnectModel":
        """Return a zero-overhead variant (perfect pipelining)."""
        return InterconnectModel(address_cycles_per_access=0.0)
