"""DRAM address multiplexing: how a channel-local address becomes a
(bank, row, column) triple.

Section IV of the paper: *"The address multiplexing type defines how
the DRAM input address is mapped to bank address, row address, and
column address.  The shown results utilize Row-Bank-Column (RBC)
address multiplexing type since somewhat better performance were
achieved compared to the Bank-Row-Column (BRC) multiplexing type."*

With **RBC** (row bits above bank bits above column bits) a sequential
stream walks all columns of a row, then the same row index in the
*next bank*, and only wraps to a new row after visiting every bank --
so consecutive row activations land in different banks and can overlap.
With **BRC** the bank bits are on top: a sequential stream exhausts an
entire bank before touching the next, so every row crossing is a
same-bank precharge+activate that cannot be overlapped.  This module
reduces both schemes to shift/mask pairs the channel engine applies
per chunk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.controller.request import CHUNK_SHIFT
from repro.dram.device import BankClusterGeometry
from repro.errors import AddressError, ConfigurationError


class AddressMultiplexing(enum.Enum):
    """Supported address multiplexing types."""

    #: Row-Bank-Column: the paper's default (better performance).
    RBC = "rbc"
    #: Bank-Row-Column: the paper's comparison scheme.
    BRC = "brc"
    #: RBC with the row's low bits XOR-folded into the bank index --
    #: the permutation-based interleaving common in later controllers
    #: (Zhang et al.-style).  Spreads row-conflicting strides across
    #: banks; an extension beyond the paper's two schemes, explored by
    #: the mapping ablation benchmark.
    RBC_XOR = "rbc-xor"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value.upper()


def _log2_exact(value: int, what: str) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ConfigurationError(f"{what} must be a power of two, got {value}")
    return bits


@dataclass(frozen=True)
class AddressMapping:
    """Resolved shift/mask decoding for one multiplexing scheme.

    Decoding operates on *chunk indices* (local byte address divided by
    16) because the engine schedules whole bursts; the four
    byte-offset bits and the two in-burst column bits never influence
    timing.

    Attributes are plain ints so the channel engine can inline
    ``(chunk >> bank_shift) & bank_mask`` without attribute chains in
    the loop (it copies them to locals first).
    """

    scheme: AddressMultiplexing
    geometry: BankClusterGeometry
    bank_shift: int
    bank_mask: int
    row_shift: int
    row_mask: int
    #: Chunks per row (how many bursts fit in one page).
    chunks_per_row: int
    #: XOR folding of the bank index: the engine computes
    #: ``bank = ((chunk >> bank_shift) ^ ((chunk >> xor_shift) & xor_mask))
    #: & bank_mask``.  Plain schemes set ``xor_mask = 0`` so the same
    #: formula decodes every scheme branch-free.
    xor_shift: int = 0
    xor_mask: int = 0

    @classmethod
    def build(
        cls, geometry: BankClusterGeometry, scheme: AddressMultiplexing
    ) -> "AddressMapping":
        """Construct the decode for ``scheme`` over ``geometry``."""
        bank_bits = _log2_exact(geometry.banks, "bank count")
        row_offset_bits = _log2_exact(geometry.row_bytes, "row size")
        row_bits = _log2_exact(geometry.rows_per_bank, "rows per bank")
        if row_offset_bits < CHUNK_SHIFT:
            raise ConfigurationError(
                f"row size {geometry.row_bytes} smaller than the 16-byte "
                "interleaving granularity"
            )
        row_chunk_bits = row_offset_bits - CHUNK_SHIFT

        xor_shift = 0
        xor_mask = 0
        if scheme is AddressMultiplexing.RBC:
            # chunk = row | bank | column-chunks
            bank_shift = row_chunk_bits
            row_shift = row_chunk_bits + bank_bits
        elif scheme is AddressMultiplexing.BRC:
            # chunk = bank | row | column-chunks
            row_shift = row_chunk_bits
            bank_shift = row_chunk_bits + row_bits
        elif scheme is AddressMultiplexing.RBC_XOR:
            bank_shift = row_chunk_bits
            row_shift = row_chunk_bits + bank_bits
            xor_shift = row_shift
            xor_mask = geometry.banks - 1
        else:  # pragma: no cover - exhaustive enum
            raise ConfigurationError(f"unknown multiplexing scheme {scheme!r}")

        return cls(
            scheme=scheme,
            geometry=geometry,
            bank_shift=bank_shift,
            bank_mask=geometry.banks - 1,
            row_shift=row_shift,
            row_mask=geometry.rows_per_bank - 1,
            chunks_per_row=1 << row_chunk_bits,
            xor_shift=xor_shift,
            xor_mask=xor_mask,
        )

    # -- decoding ----------------------------------------------------------

    def decode_chunk(self, chunk: int) -> Tuple[int, int]:
        """Decode a local chunk index into ``(bank, row)``.

        The engine inlines this arithmetic; this method exists for
        tests, tools and readability.
        """
        self._check_chunk(chunk)
        bank = (
            (chunk >> self.bank_shift) ^ ((chunk >> self.xor_shift) & self.xor_mask)
        ) & self.bank_mask
        row = (chunk >> self.row_shift) & self.row_mask
        return bank, row

    def decode_address(self, local_addr: int) -> Tuple[int, int, int]:
        """Decode a local byte address into ``(bank, row, column)``.

        The column is the word index within the row, matching how the
        controller presents addresses to the device.
        """
        self.geometry.check_local_address(local_addr)
        chunk = local_addr >> CHUNK_SHIFT
        bank, row = self.decode_chunk(chunk)
        column = (local_addr % self.geometry.row_bytes) // self.geometry.word_bytes
        return bank, row, column

    def encode(self, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decode_address` (used by property tests to
        prove the mapping is a bijection)."""
        if not 0 <= bank < self.geometry.banks:
            raise AddressError(f"bank {bank} out of range")
        if not 0 <= row < self.geometry.rows_per_bank:
            raise AddressError(f"row {row} out of range")
        if not 0 <= column < self.geometry.columns_per_row:
            raise AddressError(f"column {column} out of range")
        row_offset = column * self.geometry.word_bytes
        chunk_in_row = row_offset >> CHUNK_SHIFT
        # Invert the XOR folding: XOR is an involution given the row.
        stored_bank = bank ^ (row & self.xor_mask) if self.xor_mask else bank
        chunk = (
            (row << self.row_shift) | (stored_bank << self.bank_shift) | chunk_in_row
        )
        return (chunk << CHUNK_SHIFT) | (row_offset & 0xF)

    def _check_chunk(self, chunk: int) -> None:
        max_chunk = self.geometry.capacity_bytes >> CHUNK_SHIFT
        if not 0 <= chunk < max_chunk:
            raise AddressError(
                f"chunk {chunk} outside bank cluster capacity ({max_chunk} chunks)"
            )

    def banks_between(self, chunk_a: int, chunk_b: int) -> bool:
        """Whether two chunks decode to different banks (used by the
        analytic model to reason about activate overlap)."""
        return self.decode_chunk(chunk_a)[0] != self.decode_chunk(chunk_b)[0]
