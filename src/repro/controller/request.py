"""Memory requests at the two granularities the simulator uses.

The paper's load model produces **master transactions**: block reads
and writes against the global (multi-channel) address space, generated
by the video-recording state machine.  The channel interleaver splits
each master transaction into per-channel **access runs** -- contiguous
sequences of 16-byte DRAM bursts within one channel's local address
space (the minimum interleaving granularity of Table II: burst size 4
times the 32-bit word = 16 bytes).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Bytes moved by one DRAM burst: burst length 4 x 32-bit words.
CHUNK_BYTES = 16
#: log2(CHUNK_BYTES), for shift-based address arithmetic.
CHUNK_SHIFT = 4


class Op(enum.IntEnum):
    """Direction of a memory operation.

    ``IntEnum`` with explicit values so the hot loop can compare raw
    ints (``run.op == 0``) without enum attribute lookups.
    """

    READ = 0
    WRITE = 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "R" if self is Op.READ else "W"


@dataclass(frozen=True)
class MasterTransaction:
    """One block transfer issued by the load model's state machine.

    Addresses are byte addresses in the *global* interleaved address
    space; ``size`` is in bytes.  Master transactions carry no data --
    the simulator is timing/power only, exactly like the paper's
    untimed TLMs.
    """

    op: Op
    address: int
    size: int
    #: Earliest issue time in nanoseconds.  ``0.0`` (the default) and
    #: ``None`` both mean backlogged: the request is ready as soon as
    #: the memory can take it.  Consumers must test ``is not None``
    #: rather than truthiness -- an arrival of exactly ``0.0`` ns is a
    #: valid timestamp, not a missing one.
    arrival_ns: Optional[float] = 0.0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"address must be >= 0, got {self.address}")
        if self.size <= 0:
            raise ConfigurationError(f"size must be positive, got {self.size}")
        if self.arrival_ns is not None:
            # isfinite first: every comparison against NaN is False, so
            # a bare `< 0` test would wave NaN (and +inf) through into
            # the engine's time arithmetic and poison every cycle
            # computation downstream.
            if not math.isfinite(self.arrival_ns):
                raise ConfigurationError(
                    f"arrival_ns must be finite, got {self.arrival_ns}"
                )
            if self.arrival_ns < 0:
                raise ConfigurationError(
                    f"arrival_ns must be >= 0, got {self.arrival_ns}"
                )

    @property
    def end_address(self) -> int:
        """One past the last byte touched."""
        return self.address + self.size

    def chunk_span(self) -> range:
        """Global chunk indices this transaction touches.

        Partial head/tail chunks still cost a full DRAM burst, so the
        span is computed on aligned boundaries.
        """
        first = self.address >> CHUNK_SHIFT
        last = (self.end_address - 1) >> CHUNK_SHIFT
        return range(first, last + 1)


@dataclass(frozen=True)
class ChannelRun:
    """A contiguous sequence of chunk accesses on one channel.

    ``start_chunk`` indexes the channel-*local* chunk space (local
    byte address = ``start_chunk * 16``).  A run of ``count`` chunks
    with ``stride`` 1 is a sequential local stream; the interleaver
    always produces stride-1 runs because the Table II mapping packs a
    global sequential stream densely into each channel.
    """

    op: Op
    start_chunk: int
    count: int
    #: Earliest issue time in channel clock cycles (0 = backlogged).
    arrival_cycle: int = 0

    def __post_init__(self) -> None:
        if self.start_chunk < 0:
            raise ConfigurationError(
                f"start_chunk must be >= 0, got {self.start_chunk}"
            )
        if self.count <= 0:
            raise ConfigurationError(f"count must be positive, got {self.count}")
        if self.arrival_cycle < 0:
            raise ConfigurationError(
                f"arrival_cycle must be >= 0, got {self.arrival_cycle}"
            )

    @property
    def bytes_moved(self) -> int:
        """Bytes transferred by this run."""
        return self.count * CHUNK_BYTES
