"""FR-FCFS: a reordering memory-controller engine.

The paper's load is a single sequential master, so its controller has
nothing to gain from reordering and the main engine
(:class:`~repro.controller.engine.ChannelEngine`) processes requests
strictly in order.  Real controllers, however, implement **FR-FCFS**
(first-ready, first-come-first-served; Rixner et al.): among the
pending requests, row-buffer *hits* go first, and within a readiness
class the oldest request wins, with an aging bound so misses cannot
starve.

This module provides that scheduler as a drop-in alternative engine.
It exists for two reasons:

1. to *validate the paper's implicit choice*: on the recording use
   case FR-FCFS buys almost nothing (the ablation benchmark
   ``bench_ablation_scheduler`` quantifies it), because the stream is
   already row-friendly;
2. to make the library honest on traffic the paper does not cover:
   random or multi-pattern streams where reordering recovers
   significant bandwidth.

The implementation trades speed for clarity — it scans an N-entry
window per burst — and is protocol-audited by the same
:class:`~repro.dram.protocol.ProtocolChecker` as the in-order engine.
Only the open-page policy is supported (FR-FCFS is meaningless under
closed-page: there are no row hits to prefer).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.controller.engine import ChannelEngine, ChannelResult, RunLike
from repro.controller.interconnect import OVERHEAD_SCALE, InterconnectModel
from repro.controller.mapping import AddressMapping, AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.request import CHUNK_BYTES
from repro.dram.commands import Command, CommandCounters, StateDurations
from repro.dram.datasheet import DeviceDescriptor
from repro.dram.device import NO_OPEN_ROW
from repro.dram.powerstate import ImmediatePowerDown, PowerDownPolicy
from repro.dram.protocol import CommandRecord, ProtocolChecker
from repro.errors import AddressError, ConfigurationError


class ReorderingChannelEngine:
    """FR-FCFS channel engine (open-page only).

    Parameters mirror :class:`~repro.controller.engine.ChannelEngine`
    plus:

    window:
        Size of the scheduling window (pending requests considered
        for reordering).
    max_skips:
        Aging bound: once the oldest pending request has been passed
        over this many times, it is issued regardless of row state.
    """

    def __init__(
        self,
        device: DeviceDescriptor,
        freq_mhz: float,
        multiplexing: AddressMultiplexing = AddressMultiplexing.RBC,
        power_down: Optional[PowerDownPolicy] = None,
        interconnect: Optional[InterconnectModel] = None,
        window: int = 16,
        max_skips: int = 64,
    ) -> None:
        device.timing.validate_frequency(freq_mhz)
        if window < 1 or window > 256:
            raise ConfigurationError(f"window must be in [1, 256], got {window}")
        if max_skips < 1:
            raise ConfigurationError(f"max_skips must be >= 1, got {max_skips}")
        self.device = device
        self.freq_mhz = freq_mhz
        self.timing = device.timing.at_frequency(freq_mhz)
        self.mapping = AddressMapping.build(device.geometry, multiplexing)
        self.power_down = power_down if power_down is not None else ImmediatePowerDown()
        self.interconnect = (
            interconnect if interconnect is not None else InterconnectModel()
        )
        self.window = window
        self.max_skips = max_skips
        self._max_chunk = device.geometry.capacity_bytes >> 4

    def make_checker(self) -> ProtocolChecker:
        """Protocol checker matched to this engine's configuration."""
        return ProtocolChecker(self.timing, self.device.geometry)

    # ------------------------------------------------------------------

    def _expand(self, runs: Iterable[RunLike]):
        """Yield (op, bank, row, arrival) per chunk, in program order."""
        bank_shift = self.mapping.bank_shift
        bank_mask = self.mapping.bank_mask
        row_shift = self.mapping.row_shift
        row_mask = self.mapping.row_mask
        xor_shift = self.mapping.xor_shift
        xor_mask = self.mapping.xor_mask
        for run in ChannelEngine._normalise(runs):
            op, start, count, arrival = run
            if start + count > self._max_chunk:
                raise AddressError(
                    f"run [{start}, {start + count}) exceeds channel capacity"
                )
            for k in range(count):
                chunk = start + k
                bank = (
                    (chunk >> bank_shift) ^ ((chunk >> xor_shift) & xor_mask)
                ) & bank_mask
                row = (chunk >> row_shift) & row_mask
                yield op, bank, row, arrival

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Simulate the access stream with FR-FCFS scheduling."""
        t = self.timing
        cas = t.cas_latency
        wl = t.write_latency
        burst = t.burst_cycles
        log_append = command_log.append if command_log is not None else None

        nbanks = self.device.geometry.banks
        open_row = [NO_OPEN_ROW] * nbanks
        act_ready = [0] * nbanks
        pre_ready = [0] * nbanks
        col_ready = [0] * nbanks

        cmd_free = 0
        bus_free = 0
        last_rd_end = -(10**9)
        last_wr_end = -(10**9)
        last_act_any = -(10**9)
        last_pre_any = -(10**9)
        next_ref = t.t_refi

        ovh_per = self.interconnect.overhead_fixed_point
        ovh_acc = 0

        pd_cycles = 0
        pd_entries = 0
        n_act = n_pre = n_rd = n_wr = n_ref = 0
        faw_hist = [-(10**9)] * 4
        faw_idx = 0

        stream = self._expand(runs)
        # Window entries: [op, bank, row, arrival, skips], oldest first.
        pending: List[list] = []
        exhausted = False

        def refill() -> None:
            nonlocal exhausted
            while not exhausted and len(pending) < self.window:
                try:
                    op, bank, row, arrival = next(stream)
                except StopIteration:
                    exhausted = True
                    return
                pending.append([op, bank, row, arrival, 0])

        refill()
        while pending:
            now = cmd_free if cmd_free > 0 else 0

            # --- choose the next request (FR-FCFS) -------------------
            ready = [e for e in pending if e[3] <= now]
            if not ready:
                # Idle until the earliest arrival; hand the gap to the
                # power-down policy.
                arrival = min(e[3] for e in pending)
                busy_until = cmd_free if cmd_free > bus_free else bus_free
                gap = arrival - busy_until
                down = self.power_down.powered_down_cycles(gap, t.t_cke, t.t_xp)
                floor = arrival
                if down > 0:
                    pd_cycles += down
                    pd_entries += 1
                    floor = arrival + t.t_xp
                    if log_append is not None:
                        log_append(
                            CommandRecord(busy_until + 1, Command.POWER_DOWN_ENTER)
                        )
                        log_append(CommandRecord(arrival, Command.POWER_DOWN_EXIT))
                if floor > cmd_free:
                    cmd_free = floor
                continue

            oldest = ready[0]
            if oldest[4] >= self.max_skips:
                entry = oldest  # aging bound: no further reordering
            else:
                entry = next(
                    (e for e in ready if open_row[e[1]] == e[2]), oldest
                )
            if entry is not oldest:
                oldest[4] += 1
            pending.remove(entry)
            op, bank, row, _, _ = entry

            # --- refresh ---------------------------------------------
            if cmd_free >= next_ref:
                tpre = cmd_free
                any_open = False
                for b in range(nbanks):
                    if open_row[b] != NO_OPEN_ROW:
                        any_open = True
                        if pre_ready[b] > tpre:
                            tpre = pre_ready[b]
                if any_open:
                    n_pre += 1
                    tref = tpre + 1 + t.t_rp
                    if log_append is not None:
                        log_append(CommandRecord(tpre, Command.PRECHARGE_ALL))
                else:
                    tref = max(tpre, last_pre_any + t.t_rp)
                if log_append is not None:
                    log_append(CommandRecord(tref, Command.REFRESH))
                ref_done = tref + 1 + t.t_rfc
                for b in range(nbanks):
                    open_row[b] = NO_OPEN_ROW
                    if act_ready[b] < ref_done:
                        act_ready[b] = ref_done
                if ref_done > cmd_free:
                    cmd_free = ref_done
                n_ref += 1
                next_ref += t.t_refi

            t0 = cmd_free

            # --- row management --------------------------------------
            if open_row[bank] != row:
                if open_row[bank] != NO_OPEN_ROW:
                    tpre = max(pre_ready[bank], t0, cmd_free)
                    cmd_free = tpre + 1
                    n_pre += 1
                    last_pre_any = tpre
                    if log_append is not None:
                        log_append(CommandRecord(tpre, Command.PRECHARGE, bank))
                    tact = max(tpre + t.t_rp, act_ready[bank])
                else:
                    tact = max(t0, act_ready[bank])
                tact = max(
                    tact, last_act_any + t.t_rrd, faw_hist[faw_idx] + t.t_faw,
                    cmd_free,
                )
                cmd_free = tact + 1
                faw_hist[faw_idx] = tact
                faw_idx = (faw_idx + 1) & 3
                if log_append is not None:
                    log_append(CommandRecord(tact, Command.ACTIVATE, bank, row))
                last_act_any = tact
                act_ready[bank] = tact + t.t_rc
                pre_ready[bank] = tact + t.t_ras
                col_ready[bank] = tact + t.t_rcd
                open_row[bank] = row
                n_act += 1

            # --- column command --------------------------------------
            tc = max(col_ready[bank], t0)
            if op == 0:
                tc = max(tc, last_wr_end + t.t_wtr, bus_free - cas, cmd_free)
                cmd_free = tc + 1
                if log_append is not None:
                    log_append(CommandRecord(tc, Command.READ, bank, row))
                ds = tc + cas
                de = ds + burst
                last_rd_end = de
                pre_ready[bank] = max(pre_ready[bank], tc + burst)
                n_rd += 1
            else:
                tc = max(tc, last_rd_end + t.t_rtw_gap - wl, bus_free - wl, cmd_free)
                cmd_free = tc + 1
                if log_append is not None:
                    log_append(CommandRecord(tc, Command.WRITE, bank, row))
                ds = tc + wl
                de = ds + burst
                last_wr_end = de
                pre_ready[bank] = max(pre_ready[bank], de + t.t_wr)
                n_wr += 1

            ovh_acc += ovh_per
            if ovh_acc >= OVERHEAD_SCALE:
                de += ovh_acc >> 12
                ovh_acc &= OVERHEAD_SCALE - 1
            bus_free = de

            refill()

        finish = bus_free if bus_free > cmd_free else cmd_free
        tck = t.t_ck_ns
        total_ns = finish * tck
        pd_ns = pd_cycles * tck
        counters = CommandCounters(
            activates=n_act,
            precharges=n_pre,
            reads=n_rd,
            writes=n_wr,
            refreshes=n_ref,
            power_down_entries=pd_entries,
            power_down_exits=pd_entries,
        )
        states = StateDurations(
            active_standby_ns=max(0.0, total_ns - pd_ns),
            active_powerdown_ns=pd_ns,
        )
        return ChannelResult(
            finish_cycle=finish,
            freq_mhz=self.freq_mhz,
            data_cycles=(n_rd + n_wr) * burst,
            chunks_read=n_rd,
            chunks_written=n_wr,
            counters=counters,
            states=states,
        )
