"""The event-driven channel engine.

This is the heart of the reproduction: one instance models one channel
of Fig. 2 -- memory controller, DRAM interconnect and bank cluster --
and advances a cycle-resolution timeline over a stream of burst
accesses while enforcing the device's inter-command timing constraints
(tRP, tRCD, tRAS, tRC, tRRD, tWR, tWTR, tRFC, tXP, CAS/write latency,
burst occupancy) and collecting the command counts and state
residencies the power model integrates.

The engine is *event-driven per access*, not per cycle: each 16-byte
burst advances the per-bank ready times and the shared command/data
bus schedules by integer cycle arithmetic.  That matches the paper's
methodology ("untimed transaction level models associated with
separate timing and power information") and keeps the pure-Python cost
at a handful of integer operations per access.

Scheduling model
----------------

- Accesses are processed strictly in order (FCFS) -- the paper's load
  is a single master's sequential stream, so reordering has nothing to
  exploit.
- The command bus issues one command per cycle; precharge/activate
  pairs for upcoming accesses can issue while earlier data bursts are
  still draining, bounded by the command-queue depth
  (:class:`repro.controller.queue.CommandQueueModel`).
- The data bus is seamless for same-direction bursts; direction
  switches pay the write-to-read (tWTR) and read-to-write turnaround
  gaps.
- Refresh: every tREFI the engine precharges all banks and issues an
  all-bank refresh occupying tRFC (Section III: refresh is "done
  periodically for all DRAM banks").
- Power-down: idle gaps in front of a run are handed to the
  :class:`~repro.dram.powerstate.PowerDownPolicy`; powered-down cycles
  delay the next command by tXP and are accounted as power-down
  residency (Section III: clusters "go to power down states after the
  first idle clock cycle" under the default policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.controller.interconnect import (
    OVERHEAD_SCALE,
    OVERHEAD_SHIFT,
    InterconnectModel,
)
from repro.controller.mapping import AddressMapping, AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.queue import CommandQueueModel
from repro.controller.request import ChannelRun, Op
from repro.dram.commands import Command, CommandCounters, StateDurations
from repro.dram.datasheet import DeviceDescriptor
from repro.dram.device import NO_OPEN_ROW
from repro.dram.powerstate import ImmediatePowerDown, PowerDownPolicy
from repro.dram.protocol import CommandRecord, ProtocolChecker
from repro.errors import AddressError, ConfigurationError, ProtocolError

#: How many trailing commands a runtime invariant failure reports.
_VIOLATION_HISTORY = 12

#: Accepted run formats: ChannelRun objects or raw (op, start, count[, arrival]) tuples.
RunLike = Union[ChannelRun, Tuple[int, int, int], Tuple[int, int, int, int]]


@dataclass
class ChannelResult:
    """Outcome of running one channel over an access stream.

    Times are channel clock cycles unless suffixed ``_ns``.
    """

    #: Cycle at which the last data beat (or refresh) completes.
    finish_cycle: int
    #: Interface clock frequency the run used, MHz.
    freq_mhz: float
    #: Cycles the data bus spent moving data (useful work).
    data_cycles: int
    #: Bursts read / written.
    chunks_read: int
    chunks_written: int
    #: Commands issued.
    counters: CommandCounters
    #: Power-state residencies (ns), covering [0, finish].
    states: StateDurations
    #: Column accesses per bank (bank-balance statistics).
    bank_accesses: Tuple[int, ...] = ()
    #: Accesses whose column command was delayed by the command-queue
    #: depth bound (burst *i* waiting on the data phase of burst
    #: *i - depth*).
    queue_stalls: int = 0
    #: Row misses that found *another* row open in the bank and had to
    #: precharge it first (the open-page policy's conflict penalty, as
    #: opposed to misses into an already-closed bank).
    bank_conflicts: int = 0

    @property
    def finish_ns(self) -> float:
        """Completion time in nanoseconds."""
        return self.finish_cycle * (1000.0 / self.freq_mhz)

    @property
    def row_misses(self) -> int:
        """Column accesses that required an ACTIVATE first."""
        return self.counters.activates

    @property
    def row_hits(self) -> int:
        """Column accesses that hit an already-open row."""
        return max(0, self.counters.reads + self.counters.writes - self.counters.activates)

    @property
    def power_state_transitions(self) -> int:
        """CKE transitions: power-down entries plus exits."""
        return self.counters.power_down_entries + self.counters.power_down_exits

    @property
    def total_chunks(self) -> int:
        """Total bursts transferred."""
        return self.chunks_read + self.chunks_written

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred."""
        return self.total_chunks * 16

    @property
    def bank_balance(self) -> float:
        """Evenness of the bank access distribution: min/max ratio.

        1.0 means perfectly balanced banks; values near zero mean one
        bank is hammered while others idle (the pathology XOR-folded
        mappings exist to fix).  Returns 1.0 when no accesses or no
        statistics were collected.
        """
        if not self.bank_accesses or sum(self.bank_accesses) == 0:
            return 1.0
        return min(self.bank_accesses) / max(1, max(self.bank_accesses))

    @property
    def bus_efficiency(self) -> float:
        """Fraction of elapsed cycles the data bus moved data.

        This is the per-channel efficiency the paper's feasibility
        boundaries hinge on; 1.0 means every cycle carried data.  An
        empty run (nothing elapsed) moved no data and reports 0.0 --
        an idle channel is not a perfectly efficient one.
        """
        if self.finish_cycle <= 0:
            return 0.0
        return self.data_cycles / self.finish_cycle

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Achieved bandwidth over the run, bytes/s."""
        if self.finish_cycle <= 0:
            return 0.0
        return self.bytes_moved / (self.finish_ns * 1e-9)


class ChannelEngine:
    """Timing engine for one memory channel.

    Parameters
    ----------
    device:
        The bank-cluster descriptor (geometry + timing + currents).
    freq_mhz:
        Interface clock frequency; must lie in the device's range.
    multiplexing:
        RBC (paper default) or BRC address multiplexing.
    page_policy:
        Open (paper default) or closed page policy.
    power_down:
        Idle-gap policy; defaults to the paper's immediate power-down.
    interconnect:
        DRAM-interconnect overhead model.
    queue:
        Command-queue depth model.
    check_invariants:
        Audit every run's command stream against the datasheet timing
        constraints (tRCD/tRP/tRAS ordering, power-down legality,
        refresh cadence) and raise :class:`~repro.errors.ProtocolError`
        on any violation.  The checker derives its constraints
        independently from the datasheet, so an engine bug that issues
        a command early surfaces as a concrete error instead of
        silently inflating bandwidth.  Costs roughly one extra log
        append plus one audit pass per command (~2x per-burst cost).
    """

    def __init__(
        self,
        device: DeviceDescriptor,
        freq_mhz: float,
        multiplexing: AddressMultiplexing = AddressMultiplexing.RBC,
        page_policy: PagePolicy = PagePolicy.OPEN,
        power_down: Optional[PowerDownPolicy] = None,
        interconnect: Optional[InterconnectModel] = None,
        queue: Optional[CommandQueueModel] = None,
        check_invariants: bool = False,
    ) -> None:
        device.timing.validate_frequency(freq_mhz)
        self.device = device
        self.freq_mhz = freq_mhz
        self.timing = device.timing.at_frequency(freq_mhz)
        self.check_invariants = bool(check_invariants)
        self.mapping = AddressMapping.build(device.geometry, multiplexing)
        self.page_policy = page_policy
        self.power_down = power_down if power_down is not None else ImmediatePowerDown()
        self.interconnect = (
            interconnect if interconnect is not None else InterconnectModel()
        )
        self.queue = queue if queue is not None else CommandQueueModel()
        if not isinstance(page_policy, PagePolicy):
            raise ConfigurationError(f"invalid page policy {page_policy!r}")
        self._max_chunk = device.geometry.capacity_bytes >> 4

    # ------------------------------------------------------------------

    @staticmethod
    def _normalise(runs: Iterable[RunLike]) -> Sequence[Tuple[int, int, int, int]]:
        """Convert accepted run formats into (op, start, count, arrival)."""
        out = []
        for run in runs:
            if isinstance(run, ChannelRun):
                op = int(run.op)
                start = run.start_chunk
                count = run.count
                arrival = run.arrival_cycle
            elif len(run) == 3:
                op, start, count = run
                arrival = 0
            else:
                op, start, count, arrival = run
            # Both forms pass through the same checks: a ChannelRun can
            # be malformed too (op is not validated at construction, and
            # frozen dataclasses can still be corrupted), and letting one
            # through silently corrupts the engine's counters.
            if op not in (0, 1):
                raise ConfigurationError(f"run op must be 0 or 1, got {op!r}")
            if count <= 0:
                raise ConfigurationError(f"run count must be positive, got {count}")
            if start < 0 or arrival < 0:
                raise ConfigurationError("run start/arrival must be non-negative")
            out.append((op, start, count, arrival))
        return out

    def make_checker(self) -> ProtocolChecker:
        """Build a protocol checker matched to this engine's device and
        clock, for auditing a ``command_log``.

        The checker's constraints are re-derived from the datasheet
        (``device.timing``), *not* taken from the engine's scheduling
        state: a corrupted scheduling parameter (see
        :func:`repro.resilience.faults.corrupt_engine_timing`) is then
        a divergence the audit catches rather than inherits.
        """
        return ProtocolChecker(
            self.device.timing.at_frequency(self.freq_mhz),
            self.device.geometry,
        )

    def _audit(self, command_log: list) -> None:
        """Audit a finished run's command stream, raising
        :class:`~repro.errors.ProtocolError` with the violations and
        the tail of the offending command history."""
        violations = self.make_checker().check(command_log)
        if not violations:
            return
        shown = violations[:5]
        lines = [
            f"{len(violations)} DRAM protocol violation(s) at "
            f"{self.freq_mhz:g} MHz:"
        ]
        lines += [f"  {v}" for v in shown]
        if len(violations) > len(shown):
            lines.append(f"  ... and {len(violations) - len(shown)} more")
        tail = command_log[-_VIOLATION_HISTORY:]
        lines.append(f"last {len(tail)} commands:")
        lines += [f"  {record}" for record in tail]
        raise ProtocolError("\n".join(lines))

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Process an ordered stream of access runs and return timing,
        command and power-state statistics.

        Pass a list as ``command_log`` to record every issued command
        as a :class:`~repro.dram.protocol.CommandRecord` (in issue
        order) for auditing with the :class:`ProtocolChecker`.
        Logging roughly doubles the per-burst cost; leave it off for
        large sweeps.

        The loop body is deliberately monolithic and local-variable
        heavy: it executes once per 16-byte burst and dominates the
        simulator's runtime.
        """
        normalised = self._normalise(runs)
        if self.check_invariants and command_log is None:
            command_log = []
        log_append = command_log.append if command_log is not None else None

        timing = self.timing
        cas = timing.cas_latency
        wl = timing.write_latency
        burst = timing.burst_cycles
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_ras = timing.t_ras
        t_rc = timing.t_rc
        t_rrd = timing.t_rrd
        t_wr = timing.t_wr
        t_wtr = timing.t_wtr
        rtw_gap = timing.t_rtw_gap
        t_xp = timing.t_xp
        t_cke = timing.t_cke
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc

        bank_shift = self.mapping.bank_shift
        bank_mask = self.mapping.bank_mask
        row_shift = self.mapping.row_shift
        row_mask = self.mapping.row_mask
        xor_shift = self.mapping.xor_shift
        xor_mask = self.mapping.xor_mask

        nbanks = self.device.geometry.banks
        open_row = [NO_OPEN_ROW] * nbanks
        act_ready = [0] * nbanks
        pre_ready = [0] * nbanks
        col_ready = [0] * nbanks
        bank_accesses = [0] * nbanks

        closed_page = not self.page_policy.keeps_rows_open

        cmd_free = 0
        bus_free = 0
        last_rd_end = -(10**9)
        last_wr_end = -(10**9)
        last_act_any = -(10**9)
        last_pre_any = -(10**9)
        next_ref = t_refi
        t_faw = timing.t_faw
        faw_hist = [-(10**9)] * 4  # last four ACT cycles (tFAW window)
        faw_idx = 0

        ovh_per = self.interconnect.overhead_fixed_point
        ovh_acc = 0
        ovh_mask = OVERHEAD_SCALE - 1
        ovh_shift = OVERHEAD_SHIFT

        qdepth = self.queue.depth
        ring = self.queue.make_ring()
        ring_i = 0

        pd_policy = self.power_down
        pd_cycles = 0
        pd_entries = 0

        n_act = 0
        n_pre = 0
        n_rd = 0
        n_wr = 0
        n_ref = 0
        n_qstall = 0
        n_conflict = 0
        max_chunk = self._max_chunk

        for op, start, count, arrival in normalised:
            if start + count > max_chunk:
                raise AddressError(
                    f"run [{start}, {start + count}) exceeds channel capacity "
                    f"of {max_chunk} chunks"
                )
            # --- idle-gap / power-down handling at run boundaries -------
            if arrival > cmd_free and arrival > bus_free:
                busy_until = cmd_free if cmd_free > bus_free else bus_free
                gap = arrival - busy_until
                down = pd_policy.powered_down_cycles(gap, t_cke, t_xp)
                if down > 0:
                    pd_cycles += down
                    pd_entries += 1
                    floor = arrival + t_xp
                    if log_append is not None:
                        log_append(
                            CommandRecord(busy_until + 1, Command.POWER_DOWN_ENTER)
                        )
                        log_append(CommandRecord(arrival, Command.POWER_DOWN_EXIT))
                else:
                    floor = arrival
                if floor > cmd_free:
                    cmd_free = floor
                if arrival > bus_free:
                    bus_free = arrival

            is_read = op == 0
            for k in range(count):
                chunk = start + k
                bank = (
                    (chunk >> bank_shift) ^ ((chunk >> xor_shift) & xor_mask)
                ) & bank_mask
                row = (chunk >> row_shift) & row_mask

                # --- refresh ------------------------------------------
                if cmd_free >= next_ref:
                    tpre = cmd_free
                    any_open = False
                    for b in range(nbanks):
                        if open_row[b] != NO_OPEN_ROW:
                            any_open = True
                            if pre_ready[b] > tpre:
                                tpre = pre_ready[b]
                    if any_open:
                        n_pre += 1  # PREA
                        tref = tpre + 1 + t_rp
                        if log_append is not None:
                            log_append(CommandRecord(tpre, Command.PRECHARGE_ALL))
                    else:
                        # All banks already closed, but the most recent
                        # precharge must still settle for tRP.
                        tref = tpre
                        f = last_pre_any + t_rp
                        if f > tref:
                            tref = f
                    if log_append is not None:
                        log_append(CommandRecord(tref, Command.REFRESH))
                    ref_done = tref + 1 + t_rfc
                    for b in range(nbanks):
                        open_row[b] = NO_OPEN_ROW
                        if act_ready[b] < ref_done:
                            act_ready[b] = ref_done
                    if ref_done > cmd_free:
                        cmd_free = ref_done
                    n_ref += 1
                    next_ref += t_refi
                    while next_ref <= cmd_free:
                        # Catch up if a long stall crossed several tREFI.
                        if log_append is not None:
                            log_append(CommandRecord(cmd_free, Command.REFRESH))
                        ref_done = cmd_free + 1 + t_rfc
                        for b in range(nbanks):
                            if act_ready[b] < ref_done:
                                act_ready[b] = ref_done
                        cmd_free = ref_done
                        n_ref += 1
                        next_ref += t_refi

                t0 = cmd_free
                # --- command-queue bound ------------------------------
                floor = ring[ring_i]
                if floor > t0:
                    t0 = floor
                    n_qstall += 1

                # --- row management -----------------------------------
                orow = open_row[bank]
                if orow != row:
                    if orow != NO_OPEN_ROW:
                        n_conflict += 1
                        tpre = pre_ready[bank]
                        if tpre < t0:
                            tpre = t0
                        if tpre < cmd_free:
                            tpre = cmd_free
                        cmd_free = tpre + 1
                        n_pre += 1
                        last_pre_any = tpre
                        if log_append is not None:
                            log_append(CommandRecord(tpre, Command.PRECHARGE, bank))
                        tact = tpre + t_rp
                        if act_ready[bank] > tact:
                            tact = act_ready[bank]
                    else:
                        tact = t0
                        if act_ready[bank] > tact:
                            tact = act_ready[bank]
                    rrd_floor = last_act_any + t_rrd
                    if rrd_floor > tact:
                        tact = rrd_floor
                    faw_floor = faw_hist[faw_idx] + t_faw
                    if faw_floor > tact:
                        tact = faw_floor
                    if tact < cmd_free:
                        tact = cmd_free
                    cmd_free = tact + 1
                    faw_hist[faw_idx] = tact
                    faw_idx = (faw_idx + 1) & 3
                    if log_append is not None:
                        log_append(CommandRecord(tact, Command.ACTIVATE, bank, row))
                    last_act_any = tact
                    act_ready[bank] = tact + t_rc
                    pre_ready[bank] = tact + t_ras
                    col_ready[bank] = tact + t_rcd
                    open_row[bank] = row
                    n_act += 1

                # --- column command -----------------------------------
                t = col_ready[bank]
                if t < t0:
                    t = t0
                if is_read:
                    f = last_wr_end + t_wtr
                    if f > t:
                        t = f
                    f = bus_free - cas
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    if log_append is not None:
                        log_append(CommandRecord(t, Command.READ, bank, row))
                    ds = t + cas
                    de = ds + burst
                    last_rd_end = de
                    f = t + burst  # read-to-precharge (tRTP ~ BL/2)
                    if f > pre_ready[bank]:
                        pre_ready[bank] = f
                    n_rd += 1
                else:
                    f = last_rd_end + rtw_gap - wl
                    if f > t:
                        t = f
                    f = bus_free - wl
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    if log_append is not None:
                        log_append(CommandRecord(t, Command.WRITE, bank, row))
                    ds = t + wl
                    de = ds + burst
                    last_wr_end = de
                    f = de + t_wr  # write recovery before precharge
                    if f > pre_ready[bank]:
                        pre_ready[bank] = f
                    n_wr += 1

                bank_accesses[bank] += 1

                # --- interconnect overhead ----------------------------
                ovh_acc += ovh_per
                if ovh_acc >= OVERHEAD_SCALE:
                    de += ovh_acc >> ovh_shift
                    ovh_acc &= ovh_mask

                bus_free = de
                ring[ring_i] = ds
                ring_i += 1
                if ring_i == qdepth:
                    ring_i = 0

                # --- closed-page policy: precharge immediately --------
                if closed_page:
                    tpre = pre_ready[bank]
                    if tpre < cmd_free:
                        tpre = cmd_free
                    cmd_free = tpre + 1
                    n_pre += 1
                    last_pre_any = tpre
                    if log_append is not None:
                        log_append(CommandRecord(tpre, Command.PRECHARGE, bank))
                    open_row[bank] = NO_OPEN_ROW
                    f = tpre + t_rp
                    if f > act_ready[bank]:
                        act_ready[bank] = f

        finish = bus_free if bus_free > cmd_free else cmd_free

        if self.check_invariants:
            self._audit(command_log)

        tck = timing.t_ck_ns
        total_ns = finish * tck
        pd_ns = pd_cycles * tck
        # Under the open-page policy a row is open essentially the whole
        # busy window; charge non-powered-down time as active standby
        # and power-down residency as active power-down (CKE drops with
        # rows still open).  Closed-page leaves all banks precharged
        # between accesses, so both its standby time and its power-down
        # residency belong to the precharged states (IDD2N/IDD2P rather
        # than IDD3N/IDD3P).
        if closed_page:
            active_ns = 0.0
            pre_standby_ns = max(0.0, total_ns - pd_ns)
            pre_pd_ns = pd_ns
            act_pd_ns = 0.0
        else:
            active_ns = max(0.0, total_ns - pd_ns)
            pre_standby_ns = 0.0
            pre_pd_ns = 0.0
            act_pd_ns = pd_ns

        counters = CommandCounters(
            activates=n_act,
            precharges=n_pre,
            reads=n_rd,
            writes=n_wr,
            refreshes=n_ref,
            power_down_entries=pd_entries,
            power_down_exits=pd_entries,
        )
        states = StateDurations(
            precharge_standby_ns=pre_standby_ns,
            active_standby_ns=active_ns,
            precharge_powerdown_ns=pre_pd_ns,
            active_powerdown_ns=act_pd_ns,
        )
        return ChannelResult(
            finish_cycle=finish,
            freq_mhz=self.freq_mhz,
            data_cycles=(n_rd + n_wr) * burst,
            chunks_read=n_rd,
            chunks_written=n_wr,
            counters=counters,
            states=states,
            bank_accesses=tuple(bank_accesses),
            queue_stalls=n_qstall,
            bank_conflicts=n_conflict,
        )
