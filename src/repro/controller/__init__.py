"""Per-channel memory-controller models.

Section III of the paper: each channel contains a memory controller
(MC), a DRAM interconnect and a bank cluster.  "The memory controller
takes care of memory mappings onto banks, rows and columns of the bank
cluster" and "manage[s] all the DRAM operations: precharges,
activations, reads, writes, refreshes, and power downs."

- :mod:`repro.controller.request` -- master transactions and channel
  access runs,
- :mod:`repro.controller.mapping` -- RBC/BRC address multiplexing,
- :mod:`repro.controller.pagepolicy` -- open/closed page policies,
- :mod:`repro.controller.interconnect` -- the DRAM interconnect cost
  model,
- :mod:`repro.controller.queue` -- bounded command queue bookkeeping,
- :mod:`repro.controller.engine` -- the event-driven channel engine.
"""

from repro.controller.request import Op, MasterTransaction, ChannelRun
from repro.controller.mapping import AddressMultiplexing, AddressMapping
from repro.controller.pagepolicy import PagePolicy
from repro.controller.interconnect import InterconnectModel
from repro.controller.queue import CommandQueueModel
from repro.controller.engine import ChannelEngine, ChannelResult
from repro.controller.frfcfs import ReorderingChannelEngine

__all__ = [
    "ReorderingChannelEngine",
    "Op",
    "MasterTransaction",
    "ChannelRun",
    "AddressMultiplexing",
    "AddressMapping",
    "PagePolicy",
    "InterconnectModel",
    "CommandQueueModel",
    "ChannelEngine",
    "ChannelResult",
]
