"""Row-buffer (page) management policies.

Section IV: *"In all the evaluations, DRAM open page policy is used."*
Under the open-page policy the controller leaves a row open after a
column access, betting the next access to that bank hits the same row
("When data is read from an open page, only the read operation is
needed").  The closed-page alternative precharges immediately after
every access, paying tRP+tRCD on every access but never paying a
precharge *on the critical path* of a row miss.

The video-recording traffic is highly sequential, so open-page wins
clearly; the ablation benchmark ``bench_ablation_pagepolicy``
quantifies by how much.
"""

from __future__ import annotations

import enum


class PagePolicy(enum.Enum):
    """Row-buffer management policy of the memory controller."""

    #: Leave rows open after access (the paper's policy).
    OPEN = "open"
    #: Precharge immediately after every access (auto-precharge).
    CLOSED = "closed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def keeps_rows_open(self) -> bool:
        """Whether a row remains open after a column access."""
        return self is PagePolicy.OPEN
