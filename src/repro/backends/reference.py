"""The reference backend: the event-driven :class:`ChannelEngine`.

Pure adapter -- :meth:`ReferenceBackend.create` returns the engine
itself (it already satisfies the
:class:`~repro.backends.base.ChannelSimulator` contract), so selecting
``backend="reference"`` is behaviourally identical, bit for bit, to the
pre-backend code path.  Every other backend is validated against this
one (``tests/backends/``, ``benchmarks/bench_backends.py``).
"""

from __future__ import annotations

from repro.backends.base import ChannelBackend, ChannelSimulator
from repro.controller.engine import ChannelEngine
from repro.core.config import SystemConfig

# The engine predates the backend protocol; register it as fulfilling
# the simulator contract instead of inheriting (keeps the hot class
# free of abc machinery).
ChannelSimulator.register(ChannelEngine)


def build_engine(
    config: SystemConfig, engine_cls: type = ChannelEngine
) -> ChannelEngine:
    """Construct a channel engine (or subclass) from a system config.

    Shared by the reference and fast backends so the config-to-engine
    parameter mapping exists exactly once.
    """
    return engine_cls(
        device=config.device,
        freq_mhz=config.freq_mhz,
        multiplexing=config.multiplexing,
        page_policy=config.page_policy,
        power_down=config.power_down,
        interconnect=config.interconnect,
        queue=config.queue,
        check_invariants=config.check_invariants,
    )


class ReferenceBackend(ChannelBackend):
    """Cycle-resolution event-driven engine (the ground truth)."""

    name = "reference"
    supports_command_log = True
    description = (
        "event-driven cycle-resolution engine; exact, auditable, slowest"
    )
    reference_tolerance = 0.0  # it *is* the reference

    def create(self, config: SystemConfig, index: int = 0) -> ChannelEngine:
        """One :class:`ChannelEngine` per channel, as before."""
        return build_engine(config)
