"""The fast backend: run-length batching over the reference algebra.

The reference engine executes one loop iteration per 16-byte burst.
On the paper's workload that is almost always wasted generality: the
traffic is long same-direction sequential runs, and once the data bus
saturates every access follows the same recurrence --

    t_j        = bus_free_{j-1} - latency          (column command)
    cmd_free_j = t_j + 1
    ds_j       = bus_free_{j-1}                     (data start)
    bus_free_j = bus_free_{j-1} + burst + overhead  (data end)

-- until a direction switch, a row crossing, a refresh deadline or a
power-down gap breaks it.  :class:`FastChannelEngine` detects the
recurrence, *proves* it holds for the next ``n`` accesses (all bounds
dominated by the data-bus bound, no queue stall, no refresh due, same
(bank, row) block), and then applies its closed form in O(1) instead
of O(n).  Where the proof fails it steps per access with the reference
engine's exact loop body, so the result is **bit-identical** to the
reference backend on every input stream -- the parity suite
(``tests/backends/``) and ``benchmarks/bench_backends.py`` pin both the
identity and the speedup.

Command logging and runtime invariant checking disable batching (every
command must be materialised to be logged), which degrades the fast
backend to exactly the reference behaviour.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.backends.base import ChannelBackend
from repro.backends.reference import build_engine
from repro.controller.engine import ChannelEngine, ChannelResult, RunLike
from repro.controller.interconnect import OVERHEAD_SCALE, OVERHEAD_SHIFT
from repro.core.config import SystemConfig
from repro.dram.commands import Command, CommandCounters, StateDurations
from repro.dram.device import NO_OPEN_ROW
from repro.dram.protocol import CommandRecord
from repro.errors import AddressError

#: Smallest run length worth the batch bookkeeping; shorter stretches
#: are stepped (the closed form costs ~a dozen integer ops plus up to
#: ``queue.depth`` ring updates, so tiny batches would not pay).
MIN_BATCH = 4


class FastChannelEngine(ChannelEngine):
    """Reference timing algebra with an exact streaming fast path."""

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Bit-identical to :meth:`ChannelEngine.run`, faster on
        streaming traffic.

        The stepped branch below is the reference engine's loop body,
        kept textually in sync; the batch branch is the closed form of
        that body under the conditions it checks first.
        """
        normalised = self._normalise(runs)
        if self.check_invariants and command_log is None:
            command_log = []
        log_append = command_log.append if command_log is not None else None

        timing = self.timing
        cas = timing.cas_latency
        wl = timing.write_latency
        burst = timing.burst_cycles
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_ras = timing.t_ras
        t_rc = timing.t_rc
        t_rrd = timing.t_rrd
        t_wr = timing.t_wr
        t_wtr = timing.t_wtr
        rtw_gap = timing.t_rtw_gap
        t_xp = timing.t_xp
        t_cke = timing.t_cke
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc

        bank_shift = self.mapping.bank_shift
        bank_mask = self.mapping.bank_mask
        row_shift = self.mapping.row_shift
        row_mask = self.mapping.row_mask
        xor_shift = self.mapping.xor_shift
        xor_mask = self.mapping.xor_mask

        nbanks = self.device.geometry.banks
        open_row = [NO_OPEN_ROW] * nbanks
        act_ready = [0] * nbanks
        pre_ready = [0] * nbanks
        col_ready = [0] * nbanks
        bank_accesses = [0] * nbanks

        closed_page = not self.page_policy.keeps_rows_open

        cmd_free = 0
        bus_free = 0
        last_rd_end = -(10**9)
        last_wr_end = -(10**9)
        last_act_any = -(10**9)
        last_pre_any = -(10**9)
        next_ref = t_refi
        t_faw = timing.t_faw
        faw_hist = [-(10**9)] * 4
        faw_idx = 0

        ovh_per = self.interconnect.overhead_fixed_point
        ovh_acc = 0
        ovh_mask = OVERHEAD_SCALE - 1
        ovh_shift = OVERHEAD_SHIFT

        qdepth = self.queue.depth
        ring = self.queue.make_ring()
        ring_i = 0

        pd_policy = self.power_down
        pd_cycles = 0
        pd_entries = 0

        n_act = 0
        n_pre = 0
        n_rd = 0
        n_wr = 0
        n_ref = 0
        n_qstall = 0
        n_conflict = 0
        max_chunk = self._max_chunk

        # --- fast-path constants --------------------------------------
        # Accesses share (bank, row) while the chunk bits at or above
        # every decode shift are constant, i.e. within one aligned
        # 2**seg_shift block.  This needs no row semantics: it is the
        # coarsest granularity at which *any* decode input can change.
        seg_shift = min(
            (bank_shift, row_shift, xor_shift)
            if xor_mask
            else (bank_shift, row_shift)
        )
        seg_mask = (1 << seg_shift) - 1
        seg_size = seg_mask + 1
        # For batched access a > qdepth the queue floor is the batch's
        # own access a - qdepth, giving a constant stall-free criterion
        # (see the batch proof below); when it fails, batches are capped
        # at qdepth so every floor is checked explicitly.
        const_ok_rd = (qdepth - 1) * burst >= cas - 1
        const_ok_wr = (qdepth - 1) * burst >= wl - 1
        # Batching requires every command to be computed (not logged) and
        # rows to stay open between accesses.
        batching = log_append is None and not closed_page

        for op, start, count, arrival in normalised:
            if start + count > max_chunk:
                raise AddressError(
                    f"run [{start}, {start + count}) exceeds channel capacity "
                    f"of {max_chunk} chunks"
                )
            # --- idle-gap / power-down handling at run boundaries -------
            if arrival > cmd_free and arrival > bus_free:
                busy_until = cmd_free if cmd_free > bus_free else bus_free
                gap = arrival - busy_until
                down = pd_policy.powered_down_cycles(gap, t_cke, t_xp)
                if down > 0:
                    pd_cycles += down
                    pd_entries += 1
                    floor = arrival + t_xp
                    if log_append is not None:
                        log_append(
                            CommandRecord(busy_until + 1, Command.POWER_DOWN_ENTER)
                        )
                        log_append(CommandRecord(arrival, Command.POWER_DOWN_EXIT))
                else:
                    floor = arrival
                if floor > cmd_free:
                    cmd_free = floor
                if arrival > bus_free:
                    bus_free = arrival

            is_read = op == 0
            lat = cas if is_read else wl
            const_ok = const_ok_rd if is_read else const_ok_wr
            k = 0
            while k < count:
                chunk = start + k
                bank = (
                    (chunk >> bank_shift) ^ ((chunk >> xor_shift) & xor_mask)
                ) & bank_mask
                row = (chunk >> row_shift) & row_mask

                # ==== batch attempt ===================================
                # Conditions under which the next n accesses provably
                # reduce to the steady-state recurrence:
                #   1. no refresh due before any batched command issue,
                #   2. row hit (same (bank, row) block throughout),
                #   3. the data-bus bound dominates every other bound of
                #      the first access (monotonicity extends this to
                #      the rest: the bus bound grows by >= burst >= 1
                #      per access while col_ready / turnaround bounds
                #      stay fixed and cmd_free trails the bus bound),
                #   4. no command-queue stall for any batched access.
                if batching and cmd_free < next_ref and open_row[bank] == row:
                    t1 = bus_free - lat
                    turn_ok = (
                        t1 >= last_wr_end + t_wtr
                        if is_read
                        else t1 >= last_rd_end + rtw_gap - wl
                    )
                    if turn_ok and t1 >= cmd_free and t1 >= col_ready[bank]:
                        n = count - k
                        seg_left = seg_size - (chunk & seg_mask)
                        if seg_left < n:
                            n = seg_left
                        if not const_ok and n > qdepth:
                            n = qdepth
                        # Refresh cap: access a (>= 2) issues its
                        # column command with cmd_free_a =
                        # busfree(a-2) - lat + 1, which must stay below
                        # next_ref.  busfree(i) = bus_free + i*burst +
                        # (ovh_acc + i*ovh_per) >> ovh_shift.
                        if n >= 2:
                            x = next_ref + lat - 2 - bus_free
                            if x < 0:
                                n = 1
                            else:
                                i_max = (x * OVERHEAD_SCALE - ovh_acc) // (
                                    burst * OVERHEAD_SCALE + ovh_per
                                )
                                # floor slack can admit at most one more
                                if (
                                    (i_max + 1) * burst
                                    + ((ovh_acc + (i_max + 1) * ovh_per) >> ovh_shift)
                                    <= x
                                ):
                                    i_max += 1
                                if i_max + 2 < n:
                                    n = i_max + 2 if i_max >= 0 else 1
                        if n >= MIN_BATCH:
                            # Queue floors for the first min(n, qdepth)
                            # accesses are pre-batch ring entries; check
                            # each against that access's cmd_free.
                            m = n if n < qdepth else qdepth
                            ok = True
                            for a in range(1, m + 1):
                                if a == 1:
                                    cf = cmd_free
                                else:
                                    i = a - 2
                                    cf = (
                                        bus_free
                                        + i * burst
                                        + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                        - lat
                                        + 1
                                    )
                                if ring[(ring_i + a - 1) % qdepth] > cf:
                                    ok = False
                                    break
                            if ok:
                                # ---- apply the closed form ----------
                                i = n - 1
                                busfree_last = (
                                    bus_free
                                    + i * burst
                                    + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                )
                                t_n = busfree_last - lat
                                for a in range(n - m + 1, n + 1):
                                    i = a - 1
                                    ring[(ring_i + a - 1) % qdepth] = (
                                        bus_free
                                        + i * burst
                                        + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                    )
                                ring_i = (ring_i + n) % qdepth
                                total = ovh_acc + n * ovh_per
                                bus_free = bus_free + n * burst + (total >> ovh_shift)
                                ovh_acc = total & ovh_mask
                                cmd_free = t_n + 1
                                if is_read:
                                    last_rd_end = t_n + cas + burst
                                    f = t_n + burst
                                    if f > pre_ready[bank]:
                                        pre_ready[bank] = f
                                    n_rd += n
                                else:
                                    de = t_n + wl + burst
                                    last_wr_end = de
                                    f = de + t_wr
                                    if f > pre_ready[bank]:
                                        pre_ready[bank] = f
                                    n_wr += n
                                bank_accesses[bank] += n
                                k += n
                                continue

                # ==== stepped access (reference loop body) ============
                # --- refresh ------------------------------------------
                if cmd_free >= next_ref:
                    tpre = cmd_free
                    any_open = False
                    for b in range(nbanks):
                        if open_row[b] != NO_OPEN_ROW:
                            any_open = True
                            if pre_ready[b] > tpre:
                                tpre = pre_ready[b]
                    if any_open:
                        n_pre += 1  # PREA
                        tref = tpre + 1 + t_rp
                        if log_append is not None:
                            log_append(CommandRecord(tpre, Command.PRECHARGE_ALL))
                    else:
                        tref = tpre
                        f = last_pre_any + t_rp
                        if f > tref:
                            tref = f
                    if log_append is not None:
                        log_append(CommandRecord(tref, Command.REFRESH))
                    ref_done = tref + 1 + t_rfc
                    for b in range(nbanks):
                        open_row[b] = NO_OPEN_ROW
                        if act_ready[b] < ref_done:
                            act_ready[b] = ref_done
                    if ref_done > cmd_free:
                        cmd_free = ref_done
                    n_ref += 1
                    next_ref += t_refi
                    while next_ref <= cmd_free:
                        if log_append is not None:
                            log_append(CommandRecord(cmd_free, Command.REFRESH))
                        ref_done = cmd_free + 1 + t_rfc
                        for b in range(nbanks):
                            if act_ready[b] < ref_done:
                                act_ready[b] = ref_done
                        cmd_free = ref_done
                        n_ref += 1
                        next_ref += t_refi

                t0 = cmd_free
                # --- command-queue bound ------------------------------
                floor = ring[ring_i]
                if floor > t0:
                    t0 = floor
                    n_qstall += 1

                # --- row management -----------------------------------
                orow = open_row[bank]
                if orow != row:
                    if orow != NO_OPEN_ROW:
                        n_conflict += 1
                        tpre = pre_ready[bank]
                        if tpre < t0:
                            tpre = t0
                        if tpre < cmd_free:
                            tpre = cmd_free
                        cmd_free = tpre + 1
                        n_pre += 1
                        last_pre_any = tpre
                        if log_append is not None:
                            log_append(CommandRecord(tpre, Command.PRECHARGE, bank))
                        tact = tpre + t_rp
                        if act_ready[bank] > tact:
                            tact = act_ready[bank]
                    else:
                        tact = t0
                        if act_ready[bank] > tact:
                            tact = act_ready[bank]
                    rrd_floor = last_act_any + t_rrd
                    if rrd_floor > tact:
                        tact = rrd_floor
                    faw_floor = faw_hist[faw_idx] + t_faw
                    if faw_floor > tact:
                        tact = faw_floor
                    if tact < cmd_free:
                        tact = cmd_free
                    cmd_free = tact + 1
                    faw_hist[faw_idx] = tact
                    faw_idx = (faw_idx + 1) & 3
                    if log_append is not None:
                        log_append(CommandRecord(tact, Command.ACTIVATE, bank, row))
                    last_act_any = tact
                    act_ready[bank] = tact + t_rc
                    pre_ready[bank] = tact + t_ras
                    col_ready[bank] = tact + t_rcd
                    open_row[bank] = row
                    n_act += 1

                # --- column command -----------------------------------
                t = col_ready[bank]
                if t < t0:
                    t = t0
                if is_read:
                    f = last_wr_end + t_wtr
                    if f > t:
                        t = f
                    f = bus_free - cas
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    if log_append is not None:
                        log_append(CommandRecord(t, Command.READ, bank, row))
                    ds = t + cas
                    de = ds + burst
                    last_rd_end = de
                    f = t + burst  # read-to-precharge (tRTP ~ BL/2)
                    if f > pre_ready[bank]:
                        pre_ready[bank] = f
                    n_rd += 1
                else:
                    f = last_rd_end + rtw_gap - wl
                    if f > t:
                        t = f
                    f = bus_free - wl
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    if log_append is not None:
                        log_append(CommandRecord(t, Command.WRITE, bank, row))
                    ds = t + wl
                    de = ds + burst
                    last_wr_end = de
                    f = de + t_wr  # write recovery before precharge
                    if f > pre_ready[bank]:
                        pre_ready[bank] = f
                    n_wr += 1

                bank_accesses[bank] += 1

                # --- interconnect overhead ----------------------------
                ovh_acc += ovh_per
                if ovh_acc >= OVERHEAD_SCALE:
                    de += ovh_acc >> ovh_shift
                    ovh_acc &= ovh_mask

                bus_free = de
                ring[ring_i] = ds
                ring_i += 1
                if ring_i == qdepth:
                    ring_i = 0

                # --- closed-page policy: precharge immediately --------
                if closed_page:
                    tpre = pre_ready[bank]
                    if tpre < cmd_free:
                        tpre = cmd_free
                    cmd_free = tpre + 1
                    n_pre += 1
                    last_pre_any = tpre
                    if log_append is not None:
                        log_append(CommandRecord(tpre, Command.PRECHARGE, bank))
                    open_row[bank] = NO_OPEN_ROW
                    f = tpre + t_rp
                    if f > act_ready[bank]:
                        act_ready[bank] = f

                k += 1

        finish = bus_free if bus_free > cmd_free else cmd_free

        if self.check_invariants:
            self._audit(command_log)

        tck = timing.t_ck_ns
        total_ns = finish * tck
        pd_ns = pd_cycles * tck
        if closed_page:
            active_ns = 0.0
            pre_standby_ns = max(0.0, total_ns - pd_ns)
            pre_pd_ns = pd_ns
            act_pd_ns = 0.0
        else:
            active_ns = max(0.0, total_ns - pd_ns)
            pre_standby_ns = 0.0
            pre_pd_ns = 0.0
            act_pd_ns = pd_ns

        counters = CommandCounters(
            activates=n_act,
            precharges=n_pre,
            reads=n_rd,
            writes=n_wr,
            refreshes=n_ref,
            power_down_entries=pd_entries,
            power_down_exits=pd_entries,
        )
        states = StateDurations(
            precharge_standby_ns=pre_standby_ns,
            active_standby_ns=active_ns,
            precharge_powerdown_ns=pre_pd_ns,
            active_powerdown_ns=act_pd_ns,
        )
        return ChannelResult(
            finish_cycle=finish,
            freq_mhz=self.freq_mhz,
            data_cycles=(n_rd + n_wr) * burst,
            chunks_read=n_rd,
            chunks_written=n_wr,
            counters=counters,
            states=states,
            bank_accesses=tuple(bank_accesses),
            queue_stalls=n_qstall,
            bank_conflicts=n_conflict,
        )


class FastBackend(ChannelBackend):
    """Run-length batching backend: reference-exact, streaming-fast."""

    name = "fast"
    supports_command_log = True
    description = (
        "run-length batching over the reference algebra; bit-identical, "
        ">=3x faster on streaming traffic"
    )
    #: Batching is applied only when provably exact, so the fuzzer and
    #: golden comparator hold this backend to bit-identity.
    reference_tolerance = 0.0

    def create(self, config: SystemConfig, index: int = 0) -> FastChannelEngine:
        """One :class:`FastChannelEngine` per channel."""
        return build_engine(config, engine_cls=FastChannelEngine)
