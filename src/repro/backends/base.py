"""The :class:`ChannelBackend` protocol.

The paper's methodology is explicitly multi-fidelity: "untimed
transaction level models associated with separate timing and power
information".  A backend is one such timing/power interpretation of a
channel's access stream -- anything that can take the
:class:`~repro.controller.request.ChannelRun` stream the Table II
interleaver produces for one channel and return
:class:`~repro.controller.engine.ChannelResult`-compatible timing,
command and state data.

Four fidelity levels ship with the package (see
:mod:`repro.backends.registry`):

``reference``
    The event-driven :class:`~repro.controller.engine.ChannelEngine`,
    cycle-resolution and protocol-auditable.  The ground truth.
``fast``
    Run-length batching over the same timing algebra: same-direction
    streaming row hits are advanced arithmetically in one step and the
    engine only falls back to per-access stepping at direction, row,
    refresh and power-down boundaries.  Bit-identical to ``reference``
    on every stream (the batch closed form is applied only when it is
    provably exact), several times faster on streaming traffic.
``batch``
    The same provably-exact batching fed by a numpy-vectorized segment
    decode that is cached across sweep points (the decode depends only
    on the access stream and address mapping, not on the clock), plus
    a proof-gated skip of dead command-queue bookkeeping.  Bit-identical
    to ``reference``, an order of magnitude faster on the paper's
    sweeps.  Needs the ``repro[batch]`` numpy extra; selecting the name
    is always legal, building an engine without numpy raises
    :class:`~repro.errors.ConfigurationError`.
``analytic``
    The closed-form model promoted to a full backend: O(runs) instead
    of O(bursts), within its documented tolerance of the reference
    (see docs/architecture.md, Backends).  Cannot produce command logs.

A backend is a *factory*: :meth:`ChannelBackend.create` builds one
:class:`ChannelSimulator` per (configuration, channel index), mirroring
how :class:`~repro.core.system.MultiChannelMemorySystem` owns one
engine per channel.  Simulators may keep per-channel state between
calls exactly as :class:`ChannelEngine` does (it does not), but one
``run`` call must be a pure function of its input stream.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.controller.engine import ChannelResult, RunLike
    from repro.core.config import SystemConfig


class ChannelSimulator(abc.ABC):
    """One channel's simulator, built by a backend for one config.

    The contract matches :meth:`ChannelEngine.run
    <repro.controller.engine.ChannelEngine.run>`: process an ordered
    stream of access runs, return a
    :class:`~repro.controller.engine.ChannelResult`.
    """

    @abc.abstractmethod
    def run(
        self,
        runs: "Iterable[RunLike]",
        command_log: Optional[list] = None,
    ) -> "ChannelResult":
        """Simulate an ordered access stream on this channel.

        ``command_log`` (a list to be filled with
        :class:`~repro.dram.protocol.CommandRecord`) is only supported
        by backends whose :attr:`ChannelBackend.supports_command_log`
        is true; others raise
        :class:`~repro.errors.ConfigurationError`.
        """


class ChannelBackend(abc.ABC):
    """A pluggable simulation backend for one memory channel.

    Register instances with
    :func:`repro.backends.register_backend` to make them selectable by
    name through ``SystemConfig(backend=...)``, the sweep runners and
    the CLI's ``--backend`` flag.
    """

    #: Registry name (``SystemConfig(backend=<name>)``).
    name: str = "abstract"

    #: Whether :meth:`ChannelSimulator.run` accepts a ``command_log``
    #: (and therefore whether ``check_invariants`` / protocol auditing
    #: work under this backend).
    supports_command_log: bool = False

    #: One-line fidelity/speed description for docs and error messages.
    description: str = ""

    #: Documented relative access-time agreement with the ``reference``
    #: backend: ``0.0`` declares the backend *bit-identical* (the
    #: differential fuzzer and the golden comparator then demand exact
    #: equality of timing, counters and state residencies), a positive
    #: value declares a screening fidelity (results are compared within
    #: this relative tolerance and exact-valued fields are skipped).
    #: Custom backends registered at runtime inherit the strict default
    #: and should widen it to whatever their model actually guarantees.
    reference_tolerance: float = 0.0

    @property
    def bit_identical(self) -> bool:
        """Whether this backend promises reference-exact results."""
        return self.reference_tolerance == 0.0

    @abc.abstractmethod
    def create(self, config: "SystemConfig", index: int = 0) -> ChannelSimulator:
        """Build the simulator for channel ``index`` of ``config``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
