"""The batch backend: vectorized segment decode + closed-form batching.

The fast backend already collapses steady-state streaming into O(1)
closed forms, but it still pays Python-loop overhead *per access* for
address decode (bank/row shifts, segment-boundary arithmetic) and
re-derives the same decode for every point of a frequency sweep.  This
backend removes both costs:

1. **Vectorized decode.**  The run list is decoded once, with numpy,
   into a structured *segment table*: maximal stretches of accesses
   that share (op, bank, row) -- broken at direction switches, at
   2**seg_shift address blocks (the coarsest granularity at which any
   decode input can change; row crossings and bank rotations happen
   only there) and at run boundaries (where power-down gaps can
   occur).  Per-access work in the timing loop disappears; the loop
   advances one *segment* at a time.

2. **Cross-point decode cache.**  The segment table depends only on
   the run list and the address mapping -- never on clock frequency --
   so a frequency sweep re-decodes nothing: every point of the Fig. 3
   sweep shares one decoded access timeline and re-evaluates only the
   frequency-dependent timing recurrences.  The cache is a small
   content-keyed LRU (:data:`DECODE_CACHE_SIZE` entries); inspect it
   with :func:`decode_cache_stats`, drop it with
   :func:`clear_decode_cache`.

The timing recurrences themselves are resolved per segment with the
same *provably exact* cumulative-sum closed form the fast backend
uses (``busfree(i) = bus_free + i*burst + (ovh_acc + i*ovh_per) >>
ovh_shift``), split at refresh deadlines; where the proof fails the
engine steps per access with the reference engine's exact loop body.
The result is therefore **bit-identical** to the reference backend on
every input stream (``reference_tolerance = 0.0``: the differential
fuzzer and the golden comparator hold it to exact equality).

numpy is an *optional* dependency (the ``batch`` extra:
``pip install repro[batch]``).  Importing this module without numpy
works -- the registry can still list and describe the backend -- but
:meth:`BatchBackend.create` raises
:class:`~repro.errors.ConfigurationError` explaining what to install.

Command logging, runtime invariant checking and the closed-page
policy fall back to the reference engine's exact stepping loop
(inherited from :class:`~repro.controller.engine.ChannelEngine`), so
protocol audits and closed-page studies behave identically to
``reference`` -- just without the vectorized speedup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

try:  # numpy is optional: the "batch" extra in pyproject.toml
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

from repro.backends.base import ChannelBackend
from repro.backends.fast import MIN_BATCH
from repro.backends.reference import build_engine
from repro.controller.engine import ChannelEngine, ChannelResult, RunLike
from repro.controller.interconnect import OVERHEAD_SCALE, OVERHEAD_SHIFT
from repro.core.config import SystemConfig
from repro.dram.commands import CommandCounters, StateDurations
from repro.dram.device import NO_OPEN_ROW
from repro.errors import AddressError, ConfigurationError

_NUMPY_MISSING = (
    "the 'batch' backend needs numpy, which is not installed; "
    "install the optional extra (pip install repro[batch]) or pick "
    "another backend (reference, fast, analytic)"
)

#: Maximum decoded segment tables kept alive.  Sized for one sweep
#: row's worth of channel streams (up to 8 channels) with headroom, so
#: a whole frequency sweep hits the cache after its first point.
DECODE_CACHE_SIZE = 32

#: Content-keyed LRU: (runs, mapping params) -> _DecodedStream.
_DECODE_CACHE: "OrderedDict[tuple, _DecodedStream]" = OrderedDict()
_CACHE_STATS = {
    "hits": 0,
    "misses": 0,
    "lookups": 0,
    "insertions": 0,
    "evictions": 0,
}


def decode_cache_stats() -> dict:
    """Counters of the cross-point decode cache.

    The counters form a closed ledger -- after any sequence of
    operations since the last :func:`clear_decode_cache`:

    - ``hits + misses == lookups`` (every lookup is exactly one or the
      other);
    - every miss inserts, so ``insertions == misses``;
    - ``evictions <= insertions`` (only inserted entries can be
      evicted) and ``entries == insertions - evictions
      <= DECODE_CACHE_SIZE``.

    Pinned by a property test in ``tests/backends/test_batch.py``.
    """
    return {
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
        "lookups": _CACHE_STATS["lookups"],
        "insertions": _CACHE_STATS["insertions"],
        "evictions": _CACHE_STATS["evictions"],
        "entries": len(_DECODE_CACHE),
    }


def clear_decode_cache() -> None:
    """Drop every cached segment table and reset the statistics."""
    _DECODE_CACHE.clear()
    for name in _CACHE_STATS:
        _CACHE_STATS[name] = 0


class _DecodedStream:
    """One run list decoded into a frequency-independent segment table.

    ``segments`` is a list of ``(op, bank, row, count, arrival)``
    tuples (materialised from the numpy structured table: plain-int
    iteration is what the scalar timing loop wants).  ``arrival`` is
    the run's arrival cycle on the run-head segment and ``-1``
    elsewhere, so the power-down block runs exactly once per run.
    Data-movement statistics that do not depend on timing at all
    (reads, writes, per-bank access counts) are folded here too.
    """

    __slots__ = ("segments", "n_rd", "n_wr", "bank_counts")

    def __init__(self, segments, n_rd, n_wr, bank_counts):
        self.segments = segments
        self.n_rd = n_rd
        self.n_wr = n_wr
        self.bank_counts = bank_counts


def _decode_stream(runs: Tuple[Tuple[int, int, int, int], ...], mapping) -> _DecodedStream:
    """Vectorized run-list -> segment-table decode (cache miss path)."""
    np = _np
    # Accesses share (bank, row) while the chunk bits at or above every
    # decode shift are constant, i.e. within one aligned 2**seg_shift
    # block (same criterion as the fast backend's batch proof).
    bank_shift = mapping.bank_shift
    row_shift = mapping.row_shift
    xor_shift = mapping.xor_shift
    xor_mask = mapping.xor_mask
    seg_shift = min(
        (bank_shift, row_shift, xor_shift)
        if xor_mask
        else (bank_shift, row_shift)
    )
    nbanks = mapping.bank_mask + 1

    if not runs:
        return _DecodedStream([], 0, 0, (0,) * nbanks)

    table = np.asarray(runs, dtype=np.int64)  # (nruns, 4)
    ops = table[:, 0]
    starts = table[:, 1]
    counts = table[:, 2]
    arrivals = table[:, 3]

    first_block = starts >> seg_shift
    nseg = ((starts + counts - 1) >> seg_shift) - first_block + 1
    total = int(nseg.sum())
    seg_run = np.repeat(np.arange(len(runs), dtype=np.int64), nseg)
    offsets = np.zeros(len(runs), dtype=np.int64)
    np.cumsum(nseg[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - offsets[seg_run]
    block = first_block[seg_run] + within

    lo = np.maximum(block << seg_shift, starts[seg_run])
    hi = np.minimum((block + 1) << seg_shift, (starts + counts)[seg_run])

    segs = np.empty(
        total,
        dtype=np.dtype(
            [
                ("op", np.int64),
                ("bank", np.int64),
                ("row", np.int64),
                ("count", np.int64),
                ("arrival", np.int64),
            ]
        ),
    )
    segs["op"] = ops[seg_run]
    segs["bank"] = ((lo >> bank_shift) ^ ((lo >> xor_shift) & xor_mask)) & mapping.bank_mask
    segs["row"] = (lo >> row_shift) & mapping.row_mask
    seg_len = hi - lo
    segs["count"] = seg_len
    segs["arrival"] = np.where(within == 0, arrivals[seg_run], -1)

    bank_counts = np.bincount(
        segs["bank"], weights=seg_len, minlength=nbanks
    ).astype(np.int64)
    n_rd = int(seg_len[ops[seg_run] == 0].sum())
    n_wr = int(seg_len.sum()) - n_rd

    return _DecodedStream(
        segs.tolist(), n_rd, n_wr, tuple(int(c) for c in bank_counts)
    )


def _decode_cached(
    runs: Tuple[Tuple[int, int, int, int], ...], mapping
) -> _DecodedStream:
    """LRU-cached decode, keyed by run content + mapping parameters."""
    key = (
        runs,
        mapping.bank_shift,
        mapping.bank_mask,
        mapping.row_shift,
        mapping.row_mask,
        mapping.xor_shift,
        mapping.xor_mask,
    )
    _CACHE_STATS["lookups"] += 1
    cached = _DECODE_CACHE.get(key)
    if cached is not None:
        _DECODE_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    decoded = _decode_stream(runs, mapping)
    _DECODE_CACHE[key] = decoded
    _CACHE_STATS["insertions"] += 1
    while len(_DECODE_CACHE) > DECODE_CACHE_SIZE:
        _DECODE_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return decoded


class BatchChannelEngine(ChannelEngine):
    """Reference timing algebra over a vectorized segment decode."""

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Bit-identical to :meth:`ChannelEngine.run`, an order of
        magnitude faster on streaming traffic.

        The stepped branch is the reference engine's loop body, kept
        textually in sync; the batch branch is the fast backend's
        closed form applied per decoded segment.  Command logging,
        invariant checking and the closed-page policy fall back to the
        inherited reference loop (every command must be materialised
        to be logged / immediately precharged).
        """
        if command_log is not None or self.check_invariants:
            return ChannelEngine.run(self, runs, command_log)
        if not self.page_policy.keeps_rows_open:
            return ChannelEngine.run(self, runs, command_log)
        if _np is None:
            raise ConfigurationError(_NUMPY_MISSING)

        normalised = tuple(self._normalise(runs))
        max_chunk = self._max_chunk
        for _, start, count, _ in normalised:
            if start + count > max_chunk:
                raise AddressError(
                    f"run [{start}, {start + count}) exceeds channel capacity "
                    f"of {max_chunk} chunks"
                )
        decoded = _decode_cached(normalised, self.mapping)

        timing = self.timing
        cas = timing.cas_latency
        wl = timing.write_latency
        burst = timing.burst_cycles
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_ras = timing.t_ras
        t_rc = timing.t_rc
        t_rrd = timing.t_rrd
        t_wr = timing.t_wr
        t_wtr = timing.t_wtr
        rtw_gap = timing.t_rtw_gap
        t_xp = timing.t_xp
        t_cke = timing.t_cke
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc
        t_faw = timing.t_faw

        nbanks = self.device.geometry.banks
        open_row = [NO_OPEN_ROW] * nbanks
        act_ready = [0] * nbanks
        pre_ready = [0] * nbanks
        col_ready = [0] * nbanks

        cmd_free = 0
        bus_free = 0
        last_rd_end = -(10**9)
        last_wr_end = -(10**9)
        last_act_any = -(10**9)
        last_pre_any = -(10**9)
        next_ref = t_refi
        faw_hist = [-(10**9)] * 4
        faw_idx = 0

        ovh_per = self.interconnect.overhead_fixed_point
        ovh_acc = 0
        ovh_scale = OVERHEAD_SCALE
        ovh_mask = ovh_scale - 1
        ovh_shift = OVERHEAD_SHIFT
        bstep = burst * ovh_scale + ovh_per

        qdepth = self.queue.depth
        ring = self.queue.make_ring()
        ring_i = 0

        pd_policy = self.power_down
        pd_cycles = 0
        pd_entries = 0

        n_act = 0
        n_pre = 0
        n_ref = 0
        n_qstall = 0
        n_conflict = 0

        const_ok_rd = (qdepth - 1) * burst >= cas - 1
        const_ok_wr = (qdepth - 1) * burst >= wl - 1
        # When both hold, the command-queue floor can never bind: every
        # access's data start satisfies ds_j >= ds_{j-1} + burst (the
        # column command is max'ed with bus_free - lat), so the ring
        # entry consumed by access j is ds_{j-q} <= ds_{j-1} -
        # (q-1)*burst <= (cmd_free - 1 + lat) - (lat - 1) = cmd_free
        # (initial entries are zero and cmd_free >= 0).  No stall can
        # be counted and no floor can raise t0, so the whole ring --
        # checks and writes -- is provably dead weight and is skipped.
        queue_live = not (const_ok_rd and const_ok_wr)

        for op, bnk, row, count, arrival in decoded.segments:
            # --- idle-gap / power-down handling at run boundaries -----
            if arrival > cmd_free and arrival > bus_free:
                busy_until = cmd_free if cmd_free > bus_free else bus_free
                gap = arrival - busy_until
                down = pd_policy.powered_down_cycles(gap, t_cke, t_xp)
                if down > 0:
                    pd_cycles += down
                    pd_entries += 1
                    floor = arrival + t_xp
                else:
                    floor = arrival
                if floor > cmd_free:
                    cmd_free = floor
                if arrival > bus_free:
                    bus_free = arrival

            if op == 0:
                is_read = True
                lat = cas
                const_ok = const_ok_rd
            else:
                is_read = False
                lat = wl
                const_ok = const_ok_wr

            left = count
            while left > 0:
                # ==== batch attempt (the fast backend's exact proof) ===
                #   1. no refresh due before any batched command issue,
                #   2. row hit ((bank, row) constant per segment),
                #   3. the data-bus bound dominates every other bound of
                #      the first access (monotonicity extends this),
                #   4. no command-queue stall for any batched access.
                if left >= MIN_BATCH and cmd_free < next_ref and open_row[bnk] == row:
                    t1 = bus_free - lat
                    if is_read:
                        turn_ok = t1 >= last_wr_end + t_wtr
                    else:
                        turn_ok = t1 >= last_rd_end + rtw_gap - wl
                    if turn_ok and t1 >= cmd_free and t1 >= col_ready[bnk]:
                        n = left
                        if queue_live and not const_ok and n > qdepth:
                            n = qdepth
                        # Refresh cap: access a (>= 2) issues its column
                        # command with cmd_free_a = busfree(a-2)-lat+1,
                        # which must stay below next_ref.
                        x = next_ref + lat - 2 - bus_free
                        if x < 0:
                            n = 1
                        else:
                            i_max = (x * ovh_scale - ovh_acc) // bstep
                            # floor slack can admit at most one more
                            if (
                                (i_max + 1) * burst
                                + ((ovh_acc + (i_max + 1) * ovh_per) >> ovh_shift)
                                <= x
                            ):
                                i_max += 1
                            if i_max + 2 < n:
                                n = i_max + 2 if i_max >= 0 else 1
                        if n >= MIN_BATCH:
                            ok = True
                            if queue_live:
                                # Queue floors for the first min(n,
                                # qdepth) accesses are pre-batch ring
                                # entries; check each against that
                                # access's cmd_free.
                                m = n if n < qdepth else qdepth
                                for a in range(1, m + 1):
                                    if a == 1:
                                        cf = cmd_free
                                    else:
                                        i = a - 2
                                        cf = (
                                            bus_free
                                            + i * burst
                                            + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                            - lat
                                            + 1
                                        )
                                    if ring[(ring_i + a - 1) % qdepth] > cf:
                                        ok = False
                                        break
                            if ok:
                                # ---- apply the closed form -----------
                                i = n - 1
                                t_n = (
                                    bus_free
                                    + i * burst
                                    + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                    - lat
                                )
                                if queue_live:
                                    for a in range(n - m + 1, n + 1):
                                        i = a - 1
                                        ring[(ring_i + a - 1) % qdepth] = (
                                            bus_free
                                            + i * burst
                                            + ((ovh_acc + i * ovh_per) >> ovh_shift)
                                        )
                                    ring_i = (ring_i + n) % qdepth
                                total = ovh_acc + n * ovh_per
                                bus_free = bus_free + n * burst + (total >> ovh_shift)
                                ovh_acc = total & ovh_mask
                                cmd_free = t_n + 1
                                if is_read:
                                    last_rd_end = t_n + cas + burst
                                    f = t_n + burst
                                else:
                                    de = t_n + wl + burst
                                    last_wr_end = de
                                    f = de + t_wr
                                if f > pre_ready[bnk]:
                                    pre_ready[bnk] = f
                                left -= n
                                continue

                # ==== stepped access (reference loop body) ============
                # --- refresh ------------------------------------------
                if cmd_free >= next_ref:
                    tpre = cmd_free
                    any_open = False
                    for b in range(nbanks):
                        if open_row[b] != NO_OPEN_ROW:
                            any_open = True
                            if pre_ready[b] > tpre:
                                tpre = pre_ready[b]
                    if any_open:
                        n_pre += 1  # PREA
                        tref = tpre + 1 + t_rp
                    else:
                        tref = tpre
                        f = last_pre_any + t_rp
                        if f > tref:
                            tref = f
                    ref_done = tref + 1 + t_rfc
                    for b in range(nbanks):
                        open_row[b] = NO_OPEN_ROW
                        if act_ready[b] < ref_done:
                            act_ready[b] = ref_done
                    if ref_done > cmd_free:
                        cmd_free = ref_done
                    n_ref += 1
                    next_ref += t_refi
                    while next_ref <= cmd_free:
                        ref_done = cmd_free + 1 + t_rfc
                        for b in range(nbanks):
                            if act_ready[b] < ref_done:
                                act_ready[b] = ref_done
                        cmd_free = ref_done
                        n_ref += 1
                        next_ref += t_refi

                t0 = cmd_free
                # --- command-queue bound (dead unless queue_live) -----
                if queue_live:
                    floor = ring[ring_i]
                    if floor > t0:
                        t0 = floor
                        n_qstall += 1

                # --- row management -----------------------------------
                orow = open_row[bnk]
                if orow != row:
                    if orow != NO_OPEN_ROW:
                        n_conflict += 1
                        tpre = pre_ready[bnk]
                        if tpre < t0:
                            tpre = t0
                        if tpre < cmd_free:
                            tpre = cmd_free
                        cmd_free = tpre + 1
                        n_pre += 1
                        last_pre_any = tpre
                        tact = tpre + t_rp
                        if act_ready[bnk] > tact:
                            tact = act_ready[bnk]
                    else:
                        tact = t0
                        if act_ready[bnk] > tact:
                            tact = act_ready[bnk]
                    rrd_floor = last_act_any + t_rrd
                    if rrd_floor > tact:
                        tact = rrd_floor
                    faw_floor = faw_hist[faw_idx] + t_faw
                    if faw_floor > tact:
                        tact = faw_floor
                    if tact < cmd_free:
                        tact = cmd_free
                    cmd_free = tact + 1
                    faw_hist[faw_idx] = tact
                    faw_idx = (faw_idx + 1) & 3
                    last_act_any = tact
                    act_ready[bnk] = tact + t_rc
                    pre_ready[bnk] = tact + t_ras
                    col_ready[bnk] = tact + t_rcd
                    open_row[bnk] = row
                    n_act += 1

                # --- column command -----------------------------------
                t = col_ready[bnk]
                if t < t0:
                    t = t0
                if is_read:
                    f = last_wr_end + t_wtr
                    if f > t:
                        t = f
                    f = bus_free - cas
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    ds = t + cas
                    de = ds + burst
                    last_rd_end = de
                    f = t + burst  # read-to-precharge (tRTP ~ BL/2)
                    if f > pre_ready[bnk]:
                        pre_ready[bnk] = f
                else:
                    f = last_rd_end + rtw_gap - wl
                    if f > t:
                        t = f
                    f = bus_free - wl
                    if f > t:
                        t = f
                    if t < cmd_free:
                        t = cmd_free
                    cmd_free = t + 1
                    ds = t + wl
                    de = ds + burst
                    last_wr_end = de
                    f = de + t_wr  # write recovery before precharge
                    if f > pre_ready[bnk]:
                        pre_ready[bnk] = f

                # --- interconnect overhead ----------------------------
                ovh_acc += ovh_per
                if ovh_acc >= ovh_scale:
                    de += ovh_acc >> ovh_shift
                    ovh_acc &= ovh_mask

                bus_free = de
                if queue_live:
                    ring[ring_i] = ds
                    ring_i += 1
                    if ring_i == qdepth:
                        ring_i = 0
                left -= 1

        finish = bus_free if bus_free > cmd_free else cmd_free

        tck = timing.t_ck_ns
        total_ns = finish * tck
        pd_ns = pd_cycles * tck
        # Open-page only on this path (closed-page fell back above):
        # non-powered-down time is active standby, power-down residency
        # is active power-down (CKE drops with rows still open).
        n_rd = decoded.n_rd
        n_wr = decoded.n_wr
        counters = CommandCounters(
            activates=n_act,
            precharges=n_pre,
            reads=n_rd,
            writes=n_wr,
            refreshes=n_ref,
            power_down_entries=pd_entries,
            power_down_exits=pd_entries,
        )
        states = StateDurations(
            precharge_standby_ns=0.0,
            active_standby_ns=max(0.0, total_ns - pd_ns),
            precharge_powerdown_ns=0.0,
            active_powerdown_ns=pd_ns,
        )
        return ChannelResult(
            finish_cycle=finish,
            freq_mhz=self.freq_mhz,
            data_cycles=(n_rd + n_wr) * burst,
            chunks_read=n_rd,
            chunks_written=n_wr,
            counters=counters,
            states=states,
            bank_accesses=decoded.bank_counts[:nbanks],
            queue_stalls=n_qstall,
            bank_conflicts=n_conflict,
        )


class BatchBackend(ChannelBackend):
    """Vectorized-decode batching backend: reference-exact, sweep-fast."""

    name = "batch"
    supports_command_log = True
    description = (
        "vectorized segment decode + closed-form batching (numpy); "
        "bit-identical, >=10x faster on streaming sweeps"
    )
    #: Batching is applied only when provably exact, so the fuzzer and
    #: golden comparator hold this backend to bit-identity.
    reference_tolerance = 0.0

    def create(self, config: SystemConfig, index: int = 0) -> BatchChannelEngine:
        """One :class:`BatchChannelEngine` per channel.

        Raises :class:`~repro.errors.ConfigurationError` when numpy is
        not installed (the ``batch`` optional extra).
        """
        if _np is None:
            raise ConfigurationError(_NUMPY_MISSING)
        return build_engine(config, engine_cls=BatchChannelEngine)
