"""Backend registry: name -> :class:`~repro.backends.base.ChannelBackend`.

This module is deliberately import-light (only :mod:`repro.errors`):
:class:`~repro.core.config.SystemConfig` validates backend names at
construction time, so the registry must be importable before any of
the simulation machinery.  The built-in backends are resolved lazily
on first :func:`get_backend` -- ``import repro`` never pays for a
backend nobody selected.

Custom backends (a numpy kernel, a remote worker proxy, ...) register
at runtime::

    from repro.backends import ChannelBackend, register_backend

    class MyBackend(ChannelBackend):
        name = "mybackend"
        ...

    register_backend(MyBackend())
    config = SystemConfig(backend="mybackend")

The process-wide *default* backend (what ``SystemConfig()`` resolves
``backend`` to when the caller does not pass one) is ``reference``;
:func:`set_default_backend` overrides it, which is how the CI backend
matrix runs the whole suite under ``--backend fast``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ChannelBackend

#: Built-in backends, resolved lazily: name -> (module, class).
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "reference": ("repro.backends.reference", "ReferenceBackend"),
    "fast": ("repro.backends.fast", "FastBackend"),
    "analytic": ("repro.backends.analytic", "AnalyticBackend"),
    "batch": ("repro.backends.batch", "BatchBackend"),
}

#: Instantiated backends (built-ins land here on first resolution).
_REGISTRY: Dict[str, "ChannelBackend"] = {}

#: What ``SystemConfig()`` uses when no backend is passed.
_DEFAULT_BACKEND = "reference"


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend (built-in + custom)."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTRY)))


def validate_backend_name(name: str) -> str:
    """Check that ``name`` is a registered backend and return it.

    Raises :class:`~repro.errors.ConfigurationError` naming the
    registered backends otherwise -- the error a typo'd
    ``SystemConfig(backend="refrence")`` or ``--backend`` value hits.
    """
    if not isinstance(name, str):
        raise ConfigurationError(
            f"backend must be a backend name (str), got {name!r}; "
            f"registered backends: {', '.join(available_backends())}"
        )
    if name not in _BUILTIN and name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return name


def get_backend(name: str) -> "ChannelBackend":
    """Resolve a backend name to its registered instance.

    Built-in backends are imported and instantiated on first use and
    cached.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` listing what is
    registered.
    """
    validate_backend_name(name)
    backend = _REGISTRY.get(name)
    if backend is None:
        import importlib

        module_name, class_name = _BUILTIN[name]
        backend_cls = getattr(importlib.import_module(module_name), class_name)
        backend = backend_cls()
        _REGISTRY[name] = backend
    return backend


def register_backend(backend: "ChannelBackend", replace: bool = False) -> None:
    """Register a custom backend under ``backend.name``.

    ``replace=True`` allows shadowing an existing registration
    (including a built-in); without it a name collision raises
    :class:`~repro.errors.ConfigurationError` -- silently replacing the
    reference backend is exactly the kind of action-at-a-distance this
    guard exists to catch.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend {backend!r} must define a non-empty string 'name'"
        )
    if not replace and (name in _BUILTIN or name in _REGISTRY):
        raise ConfigurationError(
            f"backend name {name!r} is already registered "
            "(pass replace=True to shadow it)"
        )
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> None:
    """Remove a runtime registration (built-ins reappear lazily)."""
    _REGISTRY.pop(name, None)


def default_backend_name() -> str:
    """The backend ``SystemConfig()`` selects when none is passed."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    Used by the test harness's ``--backend`` option to run existing
    suites under a different backend without touching every
    ``SystemConfig()`` call site.
    """
    global _DEFAULT_BACKEND
    validate_backend_name(name)
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous
