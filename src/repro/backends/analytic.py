"""The analytic backend: the closed-form model as a full simulator.

Promotes :class:`~repro.core.analytic.AnalyticModel` from a test
cross-check to a selectable backend: it consumes the same per-channel
:class:`~repro.controller.request.ChannelRun` stream as the engines
and returns a complete :class:`~repro.controller.engine.ChannelResult`,
so whole sweeps -- and therefore whole ``SimulationResult`` trees --
can run closed-form.  Cost is O(runs) instead of O(bursts): a 100 MB
transfer is a few thousand arithmetic operations, not six million loop
iterations.

Fidelity: access time tracks the reference within the tolerance
documented in docs/architecture.md (Backends) on the paper's streaming
workloads -- it models data occupancy, interconnect exposure,
direction-switch turnaround, queue-hidden row misses, refresh duty and
arrival-gap power-down, but not cycle-level effects (command-queue
stalls, tFAW/tRRD shaping, refresh/burst phase alignment).  Command
counters are estimates with the same caveat.  It cannot produce
command logs; asking for one raises
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.backends.base import ChannelBackend, ChannelSimulator
from repro.controller.engine import ChannelEngine, ChannelResult, RunLike
from repro.controller.mapping import AddressMapping
from repro.core.analytic import (
    direction_switch_cost_cycles,
    refresh_inflation,
    row_miss_cost_cycles,
)
from repro.core.config import SystemConfig
from repro.dram.commands import CommandCounters, StateDurations
from repro.errors import AddressError, ConfigurationError


class AnalyticChannelSimulator(ChannelSimulator):
    """Closed-form channel simulator for one configuration."""

    def __init__(self, config: SystemConfig, index: int = 0) -> None:
        self.config = config
        self.index = index
        self.freq_mhz = config.freq_mhz
        self.timing = config.device.timing.at_frequency(config.freq_mhz)
        self.mapping = AddressMapping.build(
            config.device.geometry, config.multiplexing
        )
        self._max_chunk = config.device.geometry.capacity_bytes >> 4

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Estimate the stream's timing/command/state outcome closed-form."""
        if command_log is not None:
            raise ConfigurationError(
                "the 'analytic' backend cannot produce command logs "
                "(protocol auditing / check_invariants need the "
                "'reference' or 'fast' backend)"
            )
        cfg = self.config
        t = self.timing
        normalised = ChannelEngine._normalise(runs)

        # (bank, row) changes whenever any chunk bit at or above the
        # lowest decode shift changes; one aligned 2**seg_shift block is
        # one open row's worth of sequential chunks.
        m = self.mapping
        seg_shift = min(
            (m.bank_shift, m.row_shift, m.xor_shift)
            if m.xor_mask
            else (m.bank_shift, m.row_shift)
        )

        closed_page = not cfg.page_policy.keeps_rows_open
        nbanks = cfg.device.geometry.banks
        pd_policy = cfg.power_down
        inflate = refresh_inflation(t)
        switch_cost = direction_switch_cost_cycles(t)
        miss_cost = row_miss_cost_cycles(t, cfg.queue.depth)
        addr_cycles = cfg.interconnect.address_cycles_per_access

        n_rd = 0
        n_wr = 0
        n_act = 0
        pd_cycles = 0
        pd_entries = 0
        prev_op = -1
        prev_block = -1
        end = 0.0  # running completion estimate, channel cycles
        max_chunk = self._max_chunk

        for op, start, count, arrival in normalised:
            if start + count > max_chunk:
                raise AddressError(
                    f"run [{start}, {start + count}) exceeds channel capacity "
                    f"of {max_chunk} chunks"
                )
            # Arrival gaps: idle time is spent powered down per policy,
            # exactly as the engines hand run-boundary gaps to it.
            if arrival > end:
                gap = int(arrival - end)
                down = pd_policy.powered_down_cycles(gap, t.t_cke, t.t_xp)
                if down > 0:
                    pd_cycles += down
                    pd_entries += 1
                end = float(arrival)

            first_block = start >> seg_shift
            last_block = (start + count - 1) >> seg_shift
            acts = last_block - first_block + 1
            if first_block == prev_block:
                acts -= 1
            prev_block = last_block
            if closed_page:
                acts = count  # every access re-opens its row
            n_act += acts

            busy = count * (t.burst_cycles + addr_cycles) + acts * miss_cost
            if prev_op >= 0 and prev_op != op:
                busy += switch_cost
            prev_op = op
            end += busy * inflate

            if op == 0:
                n_rd += count
            else:
                n_wr += count

        finish = int(math.ceil(end))
        n_ref = finish // t.t_refi if t.t_refi > 0 else 0
        if closed_page:
            n_pre = n_act
        else:
            # Conflict precharges (a later row evicting an earlier one)
            # plus one PREA ahead of each refresh.
            n_pre = max(0, n_act - nbanks) + n_ref

        tck = t.t_ck_ns
        total_ns = finish * tck
        pd_ns = pd_cycles * tck
        if closed_page:
            active_ns = 0.0
            pre_standby_ns = max(0.0, total_ns - pd_ns)
            pre_pd_ns = pd_ns
            act_pd_ns = 0.0
        else:
            active_ns = max(0.0, total_ns - pd_ns)
            pre_standby_ns = 0.0
            pre_pd_ns = 0.0
            act_pd_ns = pd_ns

        counters = CommandCounters(
            activates=n_act,
            precharges=n_pre,
            reads=n_rd,
            writes=n_wr,
            refreshes=n_ref,
            power_down_entries=pd_entries,
            power_down_exits=pd_entries,
        )
        states = StateDurations(
            precharge_standby_ns=pre_standby_ns,
            active_standby_ns=active_ns,
            precharge_powerdown_ns=pre_pd_ns,
            active_powerdown_ns=act_pd_ns,
        )
        return ChannelResult(
            finish_cycle=finish,
            freq_mhz=self.freq_mhz,
            data_cycles=(n_rd + n_wr) * t.burst_cycles,
            chunks_read=n_rd,
            chunks_written=n_wr,
            counters=counters,
            states=states,
            bank_accesses=(),
            queue_stalls=0,
            bank_conflicts=max(0, n_act - nbanks) if not closed_page else 0,
        )


class AnalyticBackend(ChannelBackend):
    """Closed-form backend: O(runs) screening fidelity."""

    name = "analytic"
    supports_command_log = False
    description = (
        "closed-form model; O(runs) not O(bursts), screening fidelity, "
        "no command logs"
    )
    #: Documented access-time agreement with the reference on the
    #: paper's streaming workloads (docs/architecture.md, Backends).
    reference_tolerance = 0.15

    def create(self, config: SystemConfig, index: int = 0) -> AnalyticChannelSimulator:
        """One closed-form simulator per channel."""
        return AnalyticChannelSimulator(config, index)
