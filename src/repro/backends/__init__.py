"""Pluggable channel-simulation backends.

One :class:`~repro.backends.base.ChannelBackend` sits behind
:class:`~repro.core.system.MultiChannelMemorySystem`, the sweep
runners and the CLI; ``reference``, ``fast``, ``batch`` (needs the
numpy extra) and ``analytic`` ship built in (see
:mod:`repro.backends.registry` for the trade-offs and how to register
a custom backend).

This package imports only the protocol and the registry -- concrete
backends load lazily on first use.
"""

from repro.backends.base import ChannelBackend, ChannelSimulator
from repro.backends.registry import (
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
    validate_backend_name,
)

__all__ = [
    "ChannelBackend",
    "ChannelSimulator",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "unregister_backend",
    "validate_backend_name",
]
