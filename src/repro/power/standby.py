"""Standby power analysis: what the memory costs when nothing records.

A handheld device spends most of its life *not* recording.  The paper's
conclusions stress that "aggressive use of power-down modes is
necessary for energy efficient operation with handheld devices"; this
module quantifies the three standby options for a multi-channel
memory holding its contents:

- **precharge power-down** (CKE low, clock mostly gated, controller
  still issuing periodic refreshes),
- **self refresh** (IDD6: the device refreshes itself, everything
  else off — the deepest content-preserving state),
- **precharge standby** (no power management at all, the comparison
  baseline).

All three scale linearly with the channel count, which is the flip
side of the multi-channel argument: eight idle channels cost eight
times one, so idle-state choice matters more, not less, as channels
multiply — exactly the Section V concern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.dram.power import PowerModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StandbyReport:
    """Idle power of a configuration in each content-preserving state."""

    config_description: str
    channels: int
    #: Watts, whole subsystem.
    self_refresh_w: float
    precharge_powerdown_w: float
    precharge_standby_w: float

    @property
    def best_state_w(self) -> float:
        """The cheapest content-preserving idle power."""
        return min(self.self_refresh_w, self.precharge_powerdown_w)

    @property
    def powerdown_saving(self) -> float:
        """Fraction of standby power saved by precharge power-down."""
        if self.precharge_standby_w <= 0:
            return 0.0
        return 1.0 - self.precharge_powerdown_w / self.precharge_standby_w

    def summary(self) -> str:
        """One-line human-readable report (mW)."""
        return (
            f"{self.config_description}: self-refresh "
            f"{self.self_refresh_w * 1e3:.1f} mW, power-down "
            f"{self.precharge_powerdown_w * 1e3:.1f} mW, standby "
            f"{self.precharge_standby_w * 1e3:.1f} mW"
        )


def standby_power(config: SystemConfig) -> StandbyReport:
    """Compute the idle-state power menu for ``config``.

    Self-refresh power comes straight from IDD6 (no external refresh
    traffic); power-down and standby add the periodic auto-refresh
    energy the controller must keep issuing.
    """
    model = PowerModel(config.device, config.freq_mhz)
    cur = config.device.currents
    v = config.device.core_voltage_v
    v_ref = cur.reference_voltage_v
    v_factor = (v / v_ref) ** 2

    # IDD6 is a DC current: no frequency scaling, quadratic voltage.
    self_refresh_per_channel_w = cur.idd6_ma * v_ref * v_factor * 1e-3

    refresh_power_w = (
        model.refresh_energy_j / (config.device.refresh.interval_ns * 1e-9)
    )
    pd_per_channel_w = model.precharge_powerdown_power_w + refresh_power_w
    standby_per_channel_w = model.precharge_standby_power_w + refresh_power_w

    m = config.channels
    return StandbyReport(
        config_description=config.describe(),
        channels=m,
        self_refresh_w=m * self_refresh_per_channel_w,
        precharge_powerdown_w=m * pd_per_channel_w,
        precharge_standby_w=m * standby_per_channel_w,
    )
