"""Frame-average power assembly: the Fig. 5 metric.

Fig. 5 reports the average power of the memory subsystem while
sustaining one frame period of the recording use case, with the
interface power (equation (1)) stacked on top of the DRAM power.  The
average combines:

- the **busy window**: the simulated access time, with the energy the
  power model integrated from the channel's commands and states, plus
  interface energy (the interface clock runs while the channel is
  active);
- the **idle remainder** of the frame period: the controller
  precharges and powers the cluster down between frames (the paper's
  aggressive power-down assumption), burning precharge power-down
  current plus the periodic refresh energy; the interface clock is
  gated.

When the access time exceeds the frame period there is no idle window
and the average is taken over the access time itself; the experiment
layer separately flags such configurations as real-time failures
(Fig. 5 draws them as zero-height bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.dram.power import PowerModel
from repro.errors import ConfigurationError
from repro.power.interface import (
    PAPER_INTERFACE,
    InterfaceParameters,
    interface_power_w,
)


@dataclass(frozen=True)
class FramePowerReport:
    """Average power of one configuration over one frame period."""

    #: DRAM core power averaged over the frame period, watts.
    dram_power_w: float
    #: Interface power averaged over the frame period, watts.
    interface_power_w: float
    #: Frame access time, ms (full workload).
    access_time_ms: float
    #: The frame period the average is taken over, ms.
    frame_period_ms: float
    #: Energy per frame, joules (DRAM + interface).
    energy_per_frame_j: float

    @property
    def total_power_w(self) -> float:
        """DRAM + interface power, watts."""
        return self.dram_power_w + self.interface_power_w

    @property
    def total_power_mw(self) -> float:
        """Total power in milliwatts (Fig. 5's unit)."""
        return self.total_power_w * 1e3

    @property
    def meets_realtime(self) -> bool:
        """Whether the access time fits the frame period at all."""
        return self.access_time_ms <= self.frame_period_ms

    def meets_realtime_with_margin(self, margin: float = 0.15) -> bool:
        """The paper's feasibility test: access time within the frame
        period leaving ``margin`` (15 %) for data processing."""
        if not 0.0 <= margin < 1.0:
            raise ConfigurationError(f"margin must be in [0, 1), got {margin}")
        return self.access_time_ms <= self.frame_period_ms * (1.0 - margin)


def compute_frame_power(
    config: SystemConfig,
    result: SimulationResult,
    frame_period_ms: float,
    interface: InterfaceParameters = PAPER_INTERFACE,
) -> FramePowerReport:
    """Assemble the Fig. 5 power figure for one simulated frame.

    ``result`` may be a scaled simulation; energies and times are
    rescaled to the full frame before averaging.
    """
    if frame_period_ms <= 0:
        raise ConfigurationError(
            f"frame period must be positive, got {frame_period_ms}"
        )
    model = PowerModel(config.device, config.freq_mhz)
    scale = result.scale
    access_ns = result.access_time_ns
    frame_ns = frame_period_ms * 1e6
    window_ns = max(access_ns, frame_ns)

    refresh_interval_ns = config.device.refresh.interval_ns
    if config.power_down.idles_powered_down:
        idle_power_w = model.precharge_powerdown_power_w
        idle_interface = False
    else:
        # Without power-down the cluster idles in precharge standby
        # with its interface clock still running.
        idle_power_w = model.precharge_standby_power_w
        idle_interface = True
    if_power_w = interface_power_w(config.freq_mhz, interface)

    dram_energy_j = 0.0
    interface_energy_j = 0.0
    for ch in result.channels:
        # Busy window, rescaled to the full frame.
        busy_energy = model.energy(ch.counters, ch.states).total_j / scale
        busy_ns = ch.finish_ns / scale
        dram_energy_j += busy_energy
        # Interface clock is gated while powered down, including
        # power-down residency *inside* the busy window (paced loads).
        pd_in_busy_ns = (
            ch.states.active_powerdown_ns + ch.states.precharge_powerdown_ns
        ) / scale
        interface_energy_j += if_power_w * max(0.0, busy_ns - pd_in_busy_ns) * 1e-9

        # Idle remainder: power-down (or standby) plus periodic refresh.
        idle_ns = max(0.0, window_ns - busy_ns)
        idle_refreshes = idle_ns / refresh_interval_ns
        dram_energy_j += idle_power_w * idle_ns * 1e-9
        dram_energy_j += idle_refreshes * model.refresh_energy_j
        if idle_interface:
            interface_energy_j += if_power_w * idle_ns * 1e-9

    window_s = window_ns * 1e-9
    return FramePowerReport(
        dram_power_w=dram_energy_j / window_s,
        interface_power_w=interface_energy_j / window_s,
        access_time_ms=access_ns / 1e6,
        frame_period_ms=frame_period_ms,
        energy_per_frame_j=dram_energy_j + interface_energy_j,
    )
