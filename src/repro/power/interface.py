"""Equation (1): chip-to-chip interface power.

Section III: *"the analysis assumes the estimate for the interface
power per channel as*

    interface power = nr_of_pins x C x V^2 x f_clk x activity  (1)

*The number of pins toggling during a burst ... is assumed to be 36
(data bus and data strobe signals).  For the capacitance value ... the
expected value for 3D chip-to-chip connection is 0.4 pF ...  The
voltage V is the I/O voltage, estimated for next generation devices as
1.2 V. ... activity is fixed to be 50 %.  As an example, with 400 MHz
clock frequency, these assumptions result in the approximate interface
power of 5 mW per channel."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterfaceParameters:
    """Parameters of equation (1), defaulting to the paper's values."""

    #: Pins toggling during a burst: 32 data + 4 data-strobe signals.
    pins: int = 36
    #: Per-pin load capacitance, farads: the 0.4 pF average of the
    #: 3D bonding techniques surveyed in the paper's reference [17].
    capacitance_f: float = 0.4e-12
    #: I/O supply voltage, volts (projected 1.2 V).
    voltage_v: float = 1.2
    #: Switching activity factor (fixed at 50 %).
    activity: float = 0.5

    def __post_init__(self) -> None:
        if self.pins <= 0:
            raise ConfigurationError(f"pins must be positive, got {self.pins}")
        if self.capacitance_f <= 0:
            raise ConfigurationError(
                f"capacitance must be positive, got {self.capacitance_f}"
            )
        if self.voltage_v <= 0:
            raise ConfigurationError(
                f"voltage must be positive, got {self.voltage_v}"
            )
        if not 0.0 <= self.activity <= 1.0:
            raise ConfigurationError(
                f"activity must be in [0, 1], got {self.activity}"
            )


#: The paper's parameter set.
PAPER_INTERFACE = InterfaceParameters()


def interface_power_w(
    freq_mhz: float, params: InterfaceParameters = PAPER_INTERFACE
) -> float:
    """Interface power of one active channel, watts (equation (1)).

    About 4.1 mW at 400 MHz with the paper's parameters (quoted there
    as "approximately 5 mW").
    """
    if freq_mhz <= 0:
        raise ConfigurationError(f"frequency must be positive, got {freq_mhz}")
    return (
        params.pins
        * params.capacitance_f
        * params.voltage_v**2
        * freq_mhz
        * 1e6
        * params.activity
    )


def interface_energy_j(
    freq_mhz: float, active_ns: float, params: InterfaceParameters = PAPER_INTERFACE
) -> float:
    """Interface energy over ``active_ns`` of channel activity, joules.

    Power-down gates the interface clock, so only the active window is
    charged.
    """
    if active_ns < 0:
        raise ConfigurationError(f"active time must be >= 0, got {active_ns}")
    return interface_power_w(freq_mhz, params) * active_ns * 1e-9
