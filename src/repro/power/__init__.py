"""Power analysis: interface power, frame power reports, XDR comparison.

- :mod:`repro.power.interface` -- the paper's equation (1) for
  chip-to-chip interface power,
- :mod:`repro.power.report` -- frame-average power assembly (Fig. 5),
- :mod:`repro.power.xdr` -- the Cell BE XDR comparison point.
"""

from repro.power.interface import InterfaceParameters, interface_power_w
from repro.power.report import FramePowerReport, compute_frame_power
from repro.power.xdr import XdrReference, XDR_CELL_BE
from repro.power.standby import StandbyReport, standby_power
from repro.power.metrics import EnergyMetrics, energy_per_bit, reference_pj_per_bit

__all__ = [
    "StandbyReport",
    "standby_power",
    "EnergyMetrics",
    "energy_per_bit",
    "reference_pj_per_bit",
    "InterfaceParameters",
    "interface_power_w",
    "FramePowerReport",
    "compute_frame_power",
    "XdrReference",
    "XDR_CELL_BE",
]
