"""The XDR / Cell Broadband Engine comparison point.

Section IV: *"the Cell Broadband Engine (Cell BE) contains a dual XDR
DRAM memory interface.  The XDR memory interface operating with
1.6 GHz clock frequency acquires 25.6 GB/s bandwidth and consumes
typically power of 5 W.  According to this study, the proposed
theoretical next generation mobile DDR SDRAM with eight channels and
400 MHz clock frequency has similar bandwidth (25.0 GB/s) but power
consumption from 4 % to 25 % of the XDR value, depending on the used
encoding format."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class XdrReference:
    """A published memory-interface reference point."""

    name: str
    #: Peak bandwidth, bytes/s.
    bandwidth_bytes_per_s: float
    #: Typical power, watts.
    power_w: float
    #: Interface clock, MHz (informational).
    clock_mhz: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.power_w <= 0:
            raise ConfigurationError("reference bandwidth and power must be positive")

    def power_ratio(self, power_w: float) -> float:
        """Fraction of the reference power a competing subsystem uses."""
        if power_w < 0:
            raise ConfigurationError(f"power must be >= 0, got {power_w}")
        return power_w / self.power_w

    def bandwidth_ratio(self, bandwidth_bytes_per_s: float) -> float:
        """Fraction of the reference bandwidth a competitor provides."""
        if bandwidth_bytes_per_s < 0:
            raise ConfigurationError(
                f"bandwidth must be >= 0, got {bandwidth_bytes_per_s}"
            )
        return bandwidth_bytes_per_s / self.bandwidth_bytes_per_s

    def energy_per_byte_j(self) -> float:
        """Energy per transferred byte at peak bandwidth, joules."""
        return self.power_w / self.bandwidth_bytes_per_s


#: The Cell BE's dual-channel XDR interface (the paper's reference [18]).
XDR_CELL_BE = XdrReference(
    name="Cell BE dual XDR",
    bandwidth_bytes_per_s=25.6e9,
    power_w=5.0,
    clock_mhz=1600.0,
)
