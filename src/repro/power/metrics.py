"""Normalised energy metrics: energy per transferred bit.

The paper's XDR comparison is two absolute numbers (bandwidth, watts);
the architecturally portable way to state it is **energy per bit**.
This module computes pJ/bit for simulated runs and for published
reference points, making the multi-channel argument quotable in the
unit memory-system papers actually compare on:

- the Cell BE XDR interface at peak: 5 W / 25.6 GB/s ≈ 24.4 pJ/bit;
- the paper's 8-channel mobile DDR at 2160p30: ≈ 1.3 W moving
  ≈ 16 GB/s ≈ 10 pJ/bit — and far less at lighter loads, because
  power-down makes the *idle* bits nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import SimulationResult
from repro.errors import ConfigurationError
from repro.power.report import FramePowerReport
from repro.power.xdr import XdrReference


@dataclass(frozen=True)
class EnergyMetrics:
    """Energy-per-bit view of one simulated frame."""

    #: Average pJ per transferred bit over the frame (idle included).
    pj_per_bit: float
    #: pJ per bit counting only the busy window (marginal cost).
    busy_pj_per_bit: float
    #: Bits moved per frame.
    bits_per_frame: float

    def ratio_to(self, reference_pj_per_bit: float) -> float:
        """This run's frame energy-per-bit over a reference's."""
        if reference_pj_per_bit <= 0:
            raise ConfigurationError("reference must be positive")
        return self.pj_per_bit / reference_pj_per_bit


def energy_per_bit(
    result: SimulationResult, power: FramePowerReport
) -> EnergyMetrics:
    """Compute energy-per-bit metrics for one simulated frame.

    ``power`` must be the :func:`~repro.power.report.compute_frame_power`
    report of the same ``result``.
    """
    bits = result.total_bytes * 8.0
    if bits <= 0:
        raise ConfigurationError("the run moved no data")
    frame_energy_j = power.energy_per_frame_j
    busy_fraction = min(1.0, power.access_time_ms / max(
        power.access_time_ms, power.frame_period_ms
    ))
    # Busy-window energy: total minus what the idle remainder burned,
    # approximated by the average idle power share.
    idle_ms = max(0.0, power.frame_period_ms - power.access_time_ms)
    window_ms = max(power.frame_period_ms, power.access_time_ms)
    # The idle remainder runs at the power-down floor; attribute
    # energy proportionally to time at the *average* power as a bound.
    busy_energy_j = frame_energy_j * (
        power.access_time_ms / window_ms
        if idle_ms > 0
        else 1.0
    )
    return EnergyMetrics(
        pj_per_bit=frame_energy_j / bits * 1e12,
        busy_pj_per_bit=busy_energy_j / bits * 1e12,
        bits_per_frame=bits,
    )


def reference_pj_per_bit(reference: XdrReference) -> float:
    """A published interface's energy per bit at peak, pJ."""
    return reference.energy_per_byte_j() / 8.0 * 1e12
