"""H.264/AVC level-limit validation.

The standard (the paper's reference [1]) caps, per level, the frame
size in macroblocks, the macroblock throughput, the decoded-picture-
buffer (DPB) size and the video bitrate.  This module encodes the
limits for the levels the paper evaluates and validates the use-case
parameters against them.

Besides catching invalid configurations, the DPB check independently
corroborates the reproduction's calibration: at 1920x1088 the level-4
DPB holds *exactly four* reference frames — the same number the
bandwidth anchors demanded (DESIGN.md section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.usecase.levels import H264Level

#: Macroblock edge in pixels.
MB_PIXELS = 16

#: H.264 Annex A limits per level: (MaxMBPS [MB/s], MaxFS [MBs],
#: MaxDpbMbs [MBs], MaxBR [kbit/s, Baseline/Main VCL]).
LEVEL_LIMITS: Dict[str, Tuple[int, int, int, int]] = {
    "3.1": (108_000, 3_600, 18_000, 14_000),
    "3.2": (216_000, 5_120, 20_480, 20_000),
    "4": (245_760, 8_192, 32_768, 20_000),
    "4.1": (245_760, 8_192, 32_768, 50_000),
    "4.2": (522_240, 8_704, 34_816, 50_000),
    "5": (589_824, 22_080, 110_400, 135_000),
    "5.1": (983_040, 36_864, 184_320, 240_000),
    "5.2": (2_073_600, 36_864, 184_320, 240_000),
}

#: The standard's hard cap on reference frames regardless of DPB.
MAX_REFS = 16


def macroblocks(width: int, height: int) -> int:
    """Macroblock count of a frame (ceiling division per axis)."""
    if width <= 0 or height <= 0:
        raise ConfigurationError("dimensions must be positive")
    return ((width + MB_PIXELS - 1) // MB_PIXELS) * (
        (height + MB_PIXELS - 1) // MB_PIXELS
    )


def max_reference_frames(level_name: str, width: int, height: int) -> int:
    """Largest legal reference count for a raster at a level."""
    limits = _limits(level_name)
    frame_mbs = macroblocks(width, height)
    return max(1, min(MAX_REFS, limits[2] // frame_mbs))


@dataclass(frozen=True)
class LevelCheck:
    """Outcome of validating a use-case point against its level."""

    level_name: str
    frame_mbs: int
    mb_rate: float
    violations: Tuple[str, ...]

    @property
    def conformant(self) -> bool:
        """Whether every level limit is honoured."""
        return not self.violations


def _limits(level_name: str) -> Tuple[int, int, int, int]:
    try:
        return LEVEL_LIMITS[level_name]
    except KeyError:
        raise ConfigurationError(
            f"no H.264 limits known for level {level_name!r}; have "
            f"{sorted(LEVEL_LIMITS)}"
        ) from None


def check_level(level: H264Level) -> LevelCheck:
    """Validate an :class:`H264Level`'s parameters against Annex A."""
    max_mbps, max_fs, max_dpb_mbs, max_br_kbps = _limits(level.name)
    frame_mbs = macroblocks(level.frame.width, level.frame.height)
    mb_rate = frame_mbs * level.fps
    violations: List[str] = []

    if frame_mbs > max_fs:
        violations.append(
            f"frame size {frame_mbs} MBs exceeds MaxFS {max_fs}"
        )
    if mb_rate > max_mbps:
        violations.append(
            f"macroblock rate {mb_rate:.0f}/s exceeds MaxMBPS {max_mbps}"
        )
    dpb_frames = min(MAX_REFS, max_dpb_mbs // frame_mbs) if frame_mbs else 0
    if level.reference_frames > dpb_frames:
        violations.append(
            f"{level.reference_frames} reference frames exceed the DPB "
            f"capacity of {dpb_frames} at this resolution"
        )
    if level.max_bitrate_mbps * 1000 > max_br_kbps:
        violations.append(
            f"bitrate {level.max_bitrate_mbps} Mb/s exceeds MaxBR "
            f"{max_br_kbps / 1000:g} Mb/s"
        )
    return LevelCheck(
        level_name=level.name,
        frame_mbs=frame_mbs,
        mb_rate=mb_rate,
        violations=tuple(violations),
    )


def check_paper_levels() -> Dict[str, LevelCheck]:
    """Validate every Table I column; all must be conformant."""
    from repro.usecase.levels import PAPER_LEVELS

    return {level.name: check_level(level) for level in PAPER_LEVELS}
