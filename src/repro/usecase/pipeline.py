"""The Fig. 1 video-recording pipeline model.

Reproduces the paper's use case stage by stage: *"the video stream
originates from the image sensor and it is buffered in execution
memory.  After various processing steps, including H.264 encoding, the
video stream is multiplexed with the corresponding audio stream and
stored in removable media.  While this process is ongoing, the stream
must also be presented on the device display."*

Modelling assumptions, all from the paper:

- The cache is large enough to hit on everything except the Fig. 1
  inter-stage frame buffers; instruction traffic is insignificant.
- The sensor image carries a 20 % stabilization border (1.2W x 1.2H).
- Bayer RGB and YUV422 use 16 bit/pel, H.264 frames 12 bit/pel
  (YUV420), the WVGA display 24 bit/pel (RGB888); the display is
  refreshed at 60 Hz regardless of the recording frame rate, so
  DisplayCtrl has constant memory requirements.
- Reads and writes are identical with respect to bandwidth; every
  stage's number combines consumption and production.
- "The video encoding exhibits an implementation dependent constant
  factor that is estimated to be six": the encoder reads each of the
  ``n_ref`` reference frames six times over per encoded frame
  (Fig. 1's ``6 x N x # reference frames`` annotation), plus writes
  and re-reads the reconstructed frame.

The reconstructed per-stage constants reproduce every numeric anchor
the paper's prose preserves (1.9 / 4.3 / 8.6 GB/s and the 2.2x
720p-to-1080p ratio); see DESIGN.md section 4.

Since ROADMAP item 3 landed, this class is a thin facade: the actual
buffer/stage model lives in the declarative ``h264_camcorder``
:class:`~repro.workloads.spec.WorkloadSpec`
(:mod:`repro.workloads.zoo`), whose expressions mirror the historical
formulas in the same operation order -- the instantiated traffic is
bit-identical to what this class always produced (``verify-paper``
stays exact at 186/186).  :class:`BufferSpec` and
:class:`StageTraffic` now live in :mod:`repro.workloads.spec` and are
re-exported here unchanged for compatibility.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.usecase.audio import AudioStream
from repro.usecase.formats import FORMAT_WVGA, FrameFormat
from repro.usecase.levels import H264Level
from repro.workloads.spec import BufferSpec, StageTraffic, WorkloadInstance

__all__ = ["BufferSpec", "StageTraffic", "VideoRecordingUseCase"]


class VideoRecordingUseCase:
    """The complete Fig. 1 use case for one H.264/AVC level.

    A facade over the registered ``h264_camcorder``
    :class:`~repro.workloads.spec.WorkloadSpec`; the instantiated
    workload is exposed as :attr:`workload`.

    Parameters
    ----------
    level:
        The encoding level (fixes format, frame rate, bitrate and the
        reference-frame count).
    audio:
        Audio stream parameters.
    digizoom:
        The digital zoom factor *z*; post-processing emits N/z^2
        pixels (Fig. 1's ``~N/(z x z)``).
    display:
        Device display format (WVGA in the paper).
    display_refresh_hz:
        Display controller refresh rate (60 Hz in the paper).
    stabilization_border:
        Linear sensor over-scan factor (1.2 in the paper: a 20 %
        stabilization border).
    encoder_factor:
        The implementation-dependent encoder constant (six).
    intra_only:
        Model an intra-coded (I) frame: the encoder reads no reference
        frames, only writing and re-reading the reconstruction.  Table
        I and the paper's evaluation use the steady-state inter-coded
        (P) frame (the default); the GOP analysis in
        :mod:`repro.analysis.steadystate` mixes both.
    """

    def __init__(
        self,
        level: H264Level,
        audio: Optional[AudioStream] = None,
        digizoom: float = 1.0,
        display: FrameFormat = FORMAT_WVGA,
        display_refresh_hz: float = 60.0,
        stabilization_border: float = 1.2,
        encoder_factor: float = 6.0,
        intra_only: bool = False,
    ) -> None:
        if digizoom < 1.0:
            raise ConfigurationError(f"digizoom must be >= 1, got {digizoom}")
        if display_refresh_hz <= 0:
            raise ConfigurationError(
                f"display refresh must be positive, got {display_refresh_hz}"
            )
        if stabilization_border < 1.0:
            raise ConfigurationError(
                f"stabilization border must be >= 1, got {stabilization_border}"
            )
        if encoder_factor <= 0:
            raise ConfigurationError(
                f"encoder factor must be positive, got {encoder_factor}"
            )
        self.level = level
        self.audio = audio if audio is not None else AudioStream()
        self.digizoom = digizoom
        self.display = display
        self.display_refresh_hz = display_refresh_hz
        self.stabilization_border = stabilization_border
        self.encoder_factor = encoder_factor
        self.intra_only = intra_only

        self.sensor_frame = level.frame.with_border(stabilization_border)
        #: Pixels after digizoom cropping (``~N/(z*z)``).
        self.zoomed_pixels = max(1, round(level.frame.pixels / (digizoom * digizoom)))

        from repro.workloads.registry import get_workload

        #: The instantiated declarative workload this facade fronts.
        self.workload: WorkloadInstance = get_workload("h264_camcorder").instantiate(
            level,
            digizoom=digizoom,
            display_pixels=display.pixels,
            display_refresh_hz=display_refresh_hz,
            stabilization_border=stabilization_border,
            encoder_factor=encoder_factor,
            audio_bitrate_mbps=self.audio.bitrate_mbps,
            intra_only=intra_only,
        )

    # -- derived stream rates ------------------------------------------------

    @property
    def video_bits_per_frame(self) -> float:
        """Encoded video bitstream bits produced per frame (V/fps)."""
        return self.level.max_bitrate_mbps * 1e6 / self.level.fps

    @property
    def audio_bits_per_frame(self) -> float:
        """Audio bits accumulated per video frame (A/fps)."""
        return self.audio.bits_per_frame(self.level.fps)

    @property
    def mux_bits_per_frame(self) -> float:
        """Multiplexed stream bits per frame ((A+V)/fps)."""
        return self.video_bits_per_frame + self.audio_bits_per_frame

    # -- buffers ---------------------------------------------------------------

    def buffers(self) -> List[BufferSpec]:
        """Execution-memory buffers the stages stream through.

        The load model lays these out contiguously in the global
        address space (see :mod:`repro.load.addressmap`).
        """
        return self.workload.buffers()

    # -- stages ---------------------------------------------------------------

    def stages(self) -> List[StageTraffic]:
        """The Fig. 1 stages in pipeline order, with per-frame traffic."""
        return self.workload.stages()

    # -- totals ---------------------------------------------------------------

    def image_processing_bits_per_frame(self) -> float:
        """Table I: "Image proc. total (1 frame)"."""
        return self.workload.image_processing_bits_per_frame()

    def video_coding_bits_per_frame(self) -> float:
        """Table I: "Video coding total (1 frame)"."""
        return self.workload.video_coding_bits_per_frame()

    def total_bits_per_frame(self) -> float:
        """Table I: "Data Mem. load (1 frame)"."""
        return self.workload.total_bits_per_frame()

    def total_bytes_per_frame(self) -> float:
        """Per-frame execution-memory traffic in bytes."""
        return self.workload.total_bytes_per_frame()

    def bandwidth_bytes_per_s(self) -> float:
        """Table I: "Data Mem. load [MB/s]" in bytes/s."""
        return self.workload.bandwidth_bytes_per_s()

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"video recording {self.level.column_title}: "
            f"{self.total_bits_per_frame() / 1e6:.1f} Mb/frame, "
            f"{self.bandwidth_bytes_per_s() / 1e9:.2f} GB/s"
        )
