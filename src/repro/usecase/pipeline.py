"""The Fig. 1 video-recording pipeline model.

Reproduces the paper's use case stage by stage: *"the video stream
originates from the image sensor and it is buffered in execution
memory.  After various processing steps, including H.264 encoding, the
video stream is multiplexed with the corresponding audio stream and
stored in removable media.  While this process is ongoing, the stream
must also be presented on the device display."*

Modelling assumptions, all from the paper:

- The cache is large enough to hit on everything except the Fig. 1
  inter-stage frame buffers; instruction traffic is insignificant.
- The sensor image carries a 20 % stabilization border (1.2W x 1.2H).
- Bayer RGB and YUV422 use 16 bit/pel, H.264 frames 12 bit/pel
  (YUV420), the WVGA display 24 bit/pel (RGB888); the display is
  refreshed at 60 Hz regardless of the recording frame rate, so
  DisplayCtrl has constant memory requirements.
- Reads and writes are identical with respect to bandwidth; every
  stage's number combines consumption and production.
- "The video encoding exhibits an implementation dependent constant
  factor that is estimated to be six": the encoder reads each of the
  ``n_ref`` reference frames six times over per encoded frame
  (Fig. 1's ``6 x N x # reference frames`` annotation), plus writes
  and re-reads the reconstructed frame.

The reconstructed per-stage constants reproduce every numeric anchor
the paper's prose preserves (1.9 / 4.3 / 8.6 GB/s and the 2.2x
720p-to-1080p ratio); see DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.usecase.audio import AudioStream
from repro.usecase.formats import FORMAT_WVGA, FrameFormat, PixelFormat
from repro.usecase.levels import H264Level


@dataclass(frozen=True)
class BufferSpec:
    """One execution-memory frame/stream buffer."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("buffer name must be non-empty")
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"buffer {self.name!r} must have positive size, got {self.size_bytes}"
            )


@dataclass(frozen=True)
class StageTraffic:
    """Per-frame execution-memory traffic of one pipeline stage.

    ``reads``/``writes`` list ``(buffer_name, bits)`` pairs; Table I's
    cell for the stage is their combined total.
    """

    name: str
    #: ``"image"`` (image processing) or ``"coding"`` (video coding).
    category: str
    reads: Tuple[Tuple[str, float], ...] = ()
    writes: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.category not in ("image", "coding"):
            raise ConfigurationError(
                f"category must be 'image' or 'coding', got {self.category!r}"
            )
        for buf, bits in self.reads + self.writes:
            if bits < 0:
                raise ConfigurationError(
                    f"stage {self.name!r}: negative traffic on {buf!r}"
                )

    @property
    def read_bits(self) -> float:
        """Bits read from execution memory per frame."""
        return sum(bits for _, bits in self.reads)

    @property
    def write_bits(self) -> float:
        """Bits written to execution memory per frame."""
        return sum(bits for _, bits in self.writes)

    @property
    def total_bits(self) -> float:
        """Combined consumption + production (the Table I cell)."""
        return self.read_bits + self.write_bits


class VideoRecordingUseCase:
    """The complete Fig. 1 use case for one H.264/AVC level.

    Parameters
    ----------
    level:
        The encoding level (fixes format, frame rate, bitrate and the
        reference-frame count).
    audio:
        Audio stream parameters.
    digizoom:
        The digital zoom factor *z*; post-processing emits N/z^2
        pixels (Fig. 1's ``~N/(z x z)``).
    display:
        Device display format (WVGA in the paper).
    display_refresh_hz:
        Display controller refresh rate (60 Hz in the paper).
    stabilization_border:
        Linear sensor over-scan factor (1.2 in the paper: a 20 %
        stabilization border).
    encoder_factor:
        The implementation-dependent encoder constant (six).
    intra_only:
        Model an intra-coded (I) frame: the encoder reads no reference
        frames, only writing and re-reading the reconstruction.  Table
        I and the paper's evaluation use the steady-state inter-coded
        (P) frame (the default); the GOP analysis in
        :mod:`repro.analysis.steadystate` mixes both.
    """

    def __init__(
        self,
        level: H264Level,
        audio: AudioStream = None,
        digizoom: float = 1.0,
        display: FrameFormat = FORMAT_WVGA,
        display_refresh_hz: float = 60.0,
        stabilization_border: float = 1.2,
        encoder_factor: float = 6.0,
        intra_only: bool = False,
    ) -> None:
        if digizoom < 1.0:
            raise ConfigurationError(f"digizoom must be >= 1, got {digizoom}")
        if display_refresh_hz <= 0:
            raise ConfigurationError(
                f"display refresh must be positive, got {display_refresh_hz}"
            )
        if stabilization_border < 1.0:
            raise ConfigurationError(
                f"stabilization border must be >= 1, got {stabilization_border}"
            )
        if encoder_factor <= 0:
            raise ConfigurationError(
                f"encoder factor must be positive, got {encoder_factor}"
            )
        self.level = level
        self.audio = audio if audio is not None else AudioStream()
        self.digizoom = digizoom
        self.display = display
        self.display_refresh_hz = display_refresh_hz
        self.stabilization_border = stabilization_border
        self.encoder_factor = encoder_factor
        self.intra_only = intra_only

        self.sensor_frame = level.frame.with_border(stabilization_border)
        #: Pixels after digizoom cropping (``~N/(z*z)``).
        self.zoomed_pixels = max(1, round(level.frame.pixels / (digizoom * digizoom)))

    # -- derived stream rates ------------------------------------------------

    @property
    def video_bits_per_frame(self) -> float:
        """Encoded video bitstream bits produced per frame (V/fps)."""
        return self.level.max_bitrate_mbps * 1e6 / self.level.fps

    @property
    def audio_bits_per_frame(self) -> float:
        """Audio bits accumulated per video frame (A/fps)."""
        return self.audio.bits_per_frame(self.level.fps)

    @property
    def mux_bits_per_frame(self) -> float:
        """Multiplexed stream bits per frame ((A+V)/fps)."""
        return self.video_bits_per_frame + self.audio_bits_per_frame

    # -- buffers ---------------------------------------------------------------

    def buffers(self) -> List[BufferSpec]:
        """Execution-memory buffers the stages stream through.

        The load model lays these out contiguously in the global
        address space (see :mod:`repro.load.addressmap`).
        """
        n = self.level.frame.pixels
        nb = self.sensor_frame.pixels
        nz = self.zoomed_pixels
        bayer = PixelFormat.BAYER_RGB
        yuv422 = PixelFormat.YUV422
        yuv420 = PixelFormat.YUV420
        rgb = PixelFormat.RGB888

        bufs = [
            BufferSpec("sensor_raw", bayer.frame_bytes(nb)),
            BufferSpec("sensor_filtered", bayer.frame_bytes(nb)),
            BufferSpec("yuv_full", yuv422.frame_bytes(nb)),
            BufferSpec("yuv_stab", yuv422.frame_bytes(n)),
            BufferSpec("yuv_zoom", yuv422.frame_bytes(nz)),
            BufferSpec("display_fb", rgb.frame_bytes(self.display.pixels)),
        ]
        for i in range(self.level.reference_frames):
            bufs.append(BufferSpec(f"ref_{i}", yuv420.frame_bytes(n)))
        bufs.append(BufferSpec("recon", yuv420.frame_bytes(n)))
        stream_bytes = max(16, int(self.mux_bits_per_frame / 8) + 16)
        bufs.append(BufferSpec("video_bs", stream_bytes))
        bufs.append(BufferSpec("audio_bs", max(16, int(self.audio_bits_per_frame / 8) + 16)))
        bufs.append(BufferSpec("mux_out", stream_bytes))
        return bufs

    # -- stages ---------------------------------------------------------------

    def stages(self) -> List[StageTraffic]:
        """The Fig. 1 stages in pipeline order, with per-frame traffic."""
        n = self.level.frame.pixels
        nb = self.sensor_frame.pixels
        nz = self.zoomed_pixels
        bayer = float(PixelFormat.BAYER_RGB.bits_per_pixel)
        yuv422 = float(PixelFormat.YUV422.bits_per_pixel)
        yuv420 = float(PixelFormat.YUV420.bits_per_pixel)
        rgb = float(PixelFormat.RGB888.bits_per_pixel)

        v_frame = self.video_bits_per_frame
        a_frame = self.audio_bits_per_frame
        av_frame = self.mux_bits_per_frame
        display_bits = rgb * self.display.pixels
        refreshes_per_frame = self.display_refresh_hz / self.level.fps

        n_ref = self.level.reference_frames
        ref_read_each = self.encoder_factor * yuv420 * n

        if self.intra_only:
            # I frame: no motion search, so no reference reads.
            encoder_reads: List[Tuple[str, float]] = [("recon", yuv420 * n)]
        else:
            encoder_reads = [(f"ref_{i}", ref_read_each) for i in range(n_ref)]
            encoder_reads.append(("recon", yuv420 * n))

        return [
            StageTraffic(
                "Camera I/F",
                "image",
                writes=(("sensor_raw", bayer * nb),),
            ),
            StageTraffic(
                "Preprocess",
                "image",
                reads=(("sensor_raw", bayer * nb),),
                writes=(("sensor_filtered", bayer * nb),),
            ),
            StageTraffic(
                "Bayer to YUV",
                "image",
                reads=(("sensor_filtered", bayer * nb),),
                writes=(("yuv_full", yuv422 * nb),),
            ),
            StageTraffic(
                "Video stabilization",
                "image",
                reads=(("yuv_full", yuv422 * nb),),
                writes=(("yuv_stab", yuv422 * n),),
            ),
            StageTraffic(
                "Post proc & digizoom",
                "image",
                reads=(("yuv_stab", yuv422 * n),),
                writes=(("yuv_zoom", yuv422 * nz),),
            ),
            StageTraffic(
                "Scaling to display",
                "image",
                reads=(("yuv_zoom", yuv422 * nz),),
                writes=(("display_fb", display_bits),),
            ),
            StageTraffic(
                "DisplayCtrl",
                "image",
                reads=(("display_fb", display_bits * refreshes_per_frame),),
            ),
            StageTraffic(
                "Video encoder",
                "coding",
                reads=tuple(encoder_reads),
                writes=(("recon", yuv420 * n), ("video_bs", v_frame)),
            ),
            StageTraffic(
                "Multiplex",
                "coding",
                reads=(("video_bs", v_frame), ("audio_bs", a_frame)),
                writes=(("mux_out", av_frame),),
            ),
            StageTraffic(
                "Memory card",
                "coding",
                reads=(("mux_out", av_frame),),
            ),
        ]

    # -- totals ---------------------------------------------------------------

    def image_processing_bits_per_frame(self) -> float:
        """Table I: "Image proc. total (1 frame)"."""
        return sum(s.total_bits for s in self.stages() if s.category == "image")

    def video_coding_bits_per_frame(self) -> float:
        """Table I: "Video coding total (1 frame)"."""
        return sum(s.total_bits for s in self.stages() if s.category == "coding")

    def total_bits_per_frame(self) -> float:
        """Table I: "Data Mem. load (1 frame)"."""
        return self.image_processing_bits_per_frame() + self.video_coding_bits_per_frame()

    def total_bytes_per_frame(self) -> float:
        """Per-frame execution-memory traffic in bytes."""
        return self.total_bits_per_frame() / 8.0

    def bandwidth_bytes_per_s(self) -> float:
        """Table I: "Data Mem. load [MB/s]" in bytes/s."""
        return self.total_bytes_per_frame() * self.level.fps

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"video recording {self.level.column_title}: "
            f"{self.total_bits_per_frame() / 1e6:.1f} Mb/frame, "
            f"{self.bandwidth_bytes_per_s() / 1e9:.2f} GB/s"
        )
