"""The five HD-compatible H.264/AVC encoding levels of Table I.

Table I tabulates the memory bandwidth requirement "for the five HD
compatible encoding levels defined by H.264/AVC": levels 3.1 and 3.2
(720p at 30/60 fps), 4 and 4.2 (1080p at 30/60 fps) and 5.2 (2160p at
30 fps).  Each level fixes the image size, the maximum frame rate that
must be supported ("Limits") and the maximum output bitrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.usecase.formats import (
    FORMAT_1080P,
    FORMAT_2160P,
    FORMAT_4320P,
    FORMAT_720P,
    FrameFormat,
)


@dataclass(frozen=True)
class H264Level:
    """One H.264/AVC level as evaluated in Table I."""

    #: Level designation, e.g. ``"3.1"``.
    name: str
    #: Image format the level is evaluated at.
    frame: FrameFormat
    #: Maximum frame rate that needs supporting, fps ("Limits").
    fps: int
    #: Maximum output video bitrate, Mb/s.
    max_bitrate_mbps: float
    #: Number of reference frames the encoder keeps (calibration
    #: constant; four reproduces every bandwidth anchor the paper
    #: states -- see DESIGN.md section 4).
    reference_frames: int = 4

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.max_bitrate_mbps <= 0:
            raise ConfigurationError(
                f"max bitrate must be positive, got {self.max_bitrate_mbps}"
            )
        if self.reference_frames < 1:
            raise ConfigurationError(
                f"need at least one reference frame, got {self.reference_frames}"
            )

    @property
    def column_title(self) -> str:
        """Table I column header, e.g. ``"1080p HD 4.2"``."""
        return f"{self.frame.name}@{self.fps} (L{self.name})"

    @property
    def frame_period_ms(self) -> float:
        """Real-time budget per frame in ms (the Fig. 3/4 red lines)."""
        return 1000.0 / self.fps

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.column_title


#: The Table I columns, in paper order.
PAPER_LEVELS: Tuple[H264Level, ...] = (
    H264Level(name="3.1", frame=FORMAT_720P, fps=30, max_bitrate_mbps=14.0),
    H264Level(name="3.2", frame=FORMAT_720P, fps=60, max_bitrate_mbps=20.0),
    H264Level(name="4", frame=FORMAT_1080P, fps=30, max_bitrate_mbps=20.0),
    H264Level(name="4.2", frame=FORMAT_1080P, fps=60, max_bitrate_mbps=50.0),
    H264Level(name="5.2", frame=FORMAT_2160P, fps=30, max_bitrate_mbps=240.0),
)

#: Extrapolated future formats for the Section V discussion ("future
#: systems, where the memory loads exceed the HDTV requirement").
#: 2160p@60 matches H.264 level 5.2's ceiling; the 8K entry is beyond
#: any 2009-era level and exists to exercise >8-channel organisations.
FUTURE_LEVELS: Tuple[H264Level, ...] = (
    H264Level(
        name="5.2@60", frame=FORMAT_2160P, fps=60, max_bitrate_mbps=240.0
    ),
    H264Level(
        name="8K", frame=FORMAT_4320P, fps=30, max_bitrate_mbps=480.0
    ),
)

_BY_NAME: Dict[str, H264Level] = {
    lvl.name: lvl for lvl in PAPER_LEVELS + FUTURE_LEVELS
}


def level_by_name(name: str) -> H264Level:
    """Look up one of the paper's levels by designation (e.g. ``"4.2"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown H.264 level {name!r}; paper levels are "
            f"{sorted(_BY_NAME)}"
        ) from None
