"""The Table I calculator.

Regenerates the paper's Table I -- "memory bandwidth requirement for
the stages of the video recording use case" -- for any set of
H.264/AVC levels: one column per level, one row per Fig. 1 stage, with
the image-processing / video-coding subtotals and the per-frame,
per-second and MB/s totals the prose quotes (1.9 GB/s for 720p30,
4.3 GB/s for 1080p30, 8.6 GB/s for 1080p60).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.usecase.levels import H264Level, PAPER_LEVELS
from repro.usecase.pipeline import VideoRecordingUseCase


@dataclass(frozen=True)
class BandwidthColumn:
    """One Table I column: a level and its per-stage traffic."""

    level: H264Level
    #: Stage name -> bits per frame, in pipeline order.
    stage_bits: Tuple[Tuple[str, float], ...]
    image_total_bits: float
    coding_total_bits: float

    @property
    def frame_total_bits(self) -> float:
        """Data memory load for one frame, bits."""
        return self.image_total_bits + self.coding_total_bits

    @property
    def second_total_bits(self) -> float:
        """Data memory load for one second, bits."""
        return self.frame_total_bits * self.level.fps

    @property
    def bandwidth_mb_per_s(self) -> float:
        """Data memory load in decimal MB/s (Table I's bottom row)."""
        return self.second_total_bits / 8.0 / 1e6

    @property
    def bandwidth_gb_per_s(self) -> float:
        """Data memory load in decimal GB/s (the prose's unit)."""
        return self.bandwidth_mb_per_s / 1e3


@dataclass(frozen=True)
class BandwidthTable:
    """The full Table I: one column per level."""

    columns: Tuple[BandwidthColumn, ...]

    def column_for(self, level_name: str) -> BandwidthColumn:
        """Fetch a column by level designation (e.g. ``"3.1"``)."""
        for col in self.columns:
            if col.level.name == level_name:
                return col
        raise ConfigurationError(
            f"no column for level {level_name!r}; have "
            f"{[c.level.name for c in self.columns]}"
        )

    def stage_names(self) -> List[str]:
        """Stage row labels in pipeline order."""
        return [name for name, _ in self.columns[0].stage_bits]

    def as_rows(self) -> List[List[str]]:
        """Render as text rows for the report formatter.

        Traffic cells are in Mb (decimal megabits) per frame, matching
        the paper's "numbers in bits per frame ... (M = 10^6)" header.
        """
        header = ["Stage"] + [c.level.column_title for c in self.columns]
        rows: List[List[str]] = [header]
        for idx, name in enumerate(self.stage_names()):
            row = [name]
            for col in self.columns:
                row.append(f"{col.stage_bits[idx][1] / 1e6:.2f}")
            rows.append(row)
        rows.append(
            ["Image proc. total (1 frame) [Mb]"]
            + [f"{c.image_total_bits / 1e6:.1f}" for c in self.columns]
        )
        rows.append(
            ["Video coding total (1 frame) [Mb]"]
            + [f"{c.coding_total_bits / 1e6:.1f}" for c in self.columns]
        )
        rows.append(
            ["Data Mem. load (1 frame) [Mb]"]
            + [f"{c.frame_total_bits / 1e6:.1f}" for c in self.columns]
        )
        rows.append(
            ["Data Mem. load (1 s) [Mb]"]
            + [f"{c.second_total_bits / 1e6:.0f}" for c in self.columns]
        )
        rows.append(
            ["Data Mem. load [MB/s]"]
            + [f"{c.bandwidth_mb_per_s:.0f}" for c in self.columns]
        )
        return rows


def compute_table1(
    levels: Sequence[H264Level] = PAPER_LEVELS, **use_case_kwargs
) -> BandwidthTable:
    """Compute Table I for ``levels`` (default: the paper's five).

    Extra keyword arguments are forwarded to
    :class:`~repro.usecase.pipeline.VideoRecordingUseCase`, so a caller
    can, e.g., sweep the digizoom factor or encoder constant.
    """
    if not levels:
        raise ConfigurationError("need at least one level")
    columns = []
    for level in levels:
        use_case = VideoRecordingUseCase(level, **use_case_kwargs)
        stage_bits = tuple((s.name, s.total_bits) for s in use_case.stages())
        columns.append(
            BandwidthColumn(
                level=level,
                stage_bits=stage_bits,
                image_total_bits=use_case.image_processing_bits_per_frame(),
                coding_total_bits=use_case.video_coding_bits_per_frame(),
            )
        )
    return BandwidthTable(columns=tuple(columns))
