"""Pixel formats and frame formats of the video-recording chain.

The paper (Section II / Table I): *"Bayer RGB and YUV422 encodings use
16 bits to store one pixel and, correspondingly, H.264 encoded frames
require 12 bits (YUV420) and the displayed RGB888 format needs 24 bits
per pixel."*  Image sizes are 1280x720, 1920x1088 and 3840x2160
pixels, with a WVGA (800x480) device display.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class PixelFormat(enum.Enum):
    """Pixel encodings used along the processing chain."""

    BAYER_RGB = ("Bayer RGB", 16)
    YUV422 = ("YUV422", 16)
    YUV420 = ("YUV420", 12)
    RGB888 = ("RGB888", 24)

    def __init__(self, label: str, bits_per_pixel: int) -> None:
        self.label = label
        self.bits_per_pixel = bits_per_pixel

    def frame_bits(self, pixels: int) -> int:
        """Bits needed to store ``pixels`` in this format."""
        if pixels < 0:
            raise ConfigurationError(f"pixel count must be >= 0, got {pixels}")
        return pixels * self.bits_per_pixel

    def frame_bytes(self, pixels: int) -> int:
        """Bytes needed to store ``pixels`` (rounded up)."""
        return (self.frame_bits(pixels) + 7) // 8

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True)
class FrameFormat:
    """A raster size: width x height in pixels."""

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"frame dimensions must be positive, got {self.width}x{self.height}"
            )

    @property
    def pixels(self) -> int:
        """Total pixel count N."""
        return self.width * self.height

    def with_border(self, factor: float) -> "FrameFormat":
        """Scale both dimensions by ``factor``.

        The paper's video stabilization consumes a sensor image with a
        20 % border: 1.2W x 1.2H (Fig. 1), i.e. ``with_border(1.2)``.
        """
        if factor <= 0:
            raise ConfigurationError(f"border factor must be positive, got {factor}")
        return FrameFormat(
            name=f"{self.name}+border",
            width=round(self.width * factor),
            height=round(self.height * factor),
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} ({self.width}x{self.height})"


#: 720p HD as evaluated by the paper.
FORMAT_720P = FrameFormat("720p", 1280, 720)
#: 1080p HD; the paper uses the macroblock-aligned 1920x1088 raster.
FORMAT_1080P = FrameFormat("1080p", 1920, 1088)
#: Quad HD / UHD.
FORMAT_2160P = FrameFormat("2160p", 3840, 2160)
#: 8K UHD -- beyond the paper's evaluation, used by the future-format
#: extension experiments (Section V: "future systems, where the memory
#: loads exceed the HDTV requirement").
FORMAT_4320P = FrameFormat("4320p", 7680, 4320)
#: The device display (Section II: "the device display is capable of
#: presenting WVGA images").
FORMAT_WVGA = FrameFormat("WVGA", 800, 480)
