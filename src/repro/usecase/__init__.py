"""The video-recording use case (Section II, Fig. 1, Table I).

Models the complete camcorder processing chain -- image processing
(camera interface through display control) and video coding (H.264/AVC
encoding through memory-card writeout) -- and computes the execution-
memory traffic each stage generates per frame for the five HD-capable
H.264/AVC levels.

- :mod:`repro.usecase.formats` -- pixel and frame formats,
- :mod:`repro.usecase.levels` -- H.264/AVC levels,
- :mod:`repro.usecase.audio` -- audio stream parameters,
- :mod:`repro.usecase.pipeline` -- the Fig. 1 stage model,
- :mod:`repro.usecase.bandwidth` -- the Table I calculator.
"""

from repro.usecase.formats import (
    PixelFormat,
    FrameFormat,
    FORMAT_720P,
    FORMAT_1080P,
    FORMAT_2160P,
    FORMAT_WVGA,
)
from repro.usecase.levels import (
    FUTURE_LEVELS,
    H264Level,
    PAPER_LEVELS,
    level_by_name,
)
from repro.usecase.constraints import (
    LevelCheck,
    check_level,
    check_paper_levels,
    macroblocks,
    max_reference_frames,
)
from repro.usecase.audio import AudioStream
from repro.usecase.pipeline import (
    BufferSpec,
    StageTraffic,
    VideoRecordingUseCase,
)
from repro.usecase.bandwidth import BandwidthTable, compute_table1

__all__ = [
    "PixelFormat",
    "FrameFormat",
    "FORMAT_720P",
    "FORMAT_1080P",
    "FORMAT_2160P",
    "FORMAT_WVGA",
    "H264Level",
    "PAPER_LEVELS",
    "FUTURE_LEVELS",
    "level_by_name",
    "LevelCheck",
    "check_level",
    "check_paper_levels",
    "macroblocks",
    "max_reference_frames",
    "AudioStream",
    "BufferSpec",
    "StageTraffic",
    "VideoRecordingUseCase",
    "BandwidthTable",
    "compute_table1",
]
