"""Audio stream parameters.

The recording chain multiplexes the encoded video with an audio
bitstream (Fig. 1's ``A Mbits/s`` arrows).  The paper never states the
audio rate because it is negligible next to the video; we default to a
192 kb/s stereo AAC-class stream, typical for 2009 camcorders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AudioStream:
    """Encoded audio stream accompanying the video."""

    #: Output bitrate, Mb/s.
    bitrate_mbps: float = 0.192
    #: Sample rate, Hz (informational).
    sample_rate_hz: int = 48_000
    #: Channel count (informational).
    channels: int = 2

    def __post_init__(self) -> None:
        if self.bitrate_mbps <= 0:
            raise ConfigurationError(
                f"audio bitrate must be positive, got {self.bitrate_mbps}"
            )
        if self.sample_rate_hz <= 0 or self.channels <= 0:
            raise ConfigurationError("sample rate and channels must be positive")

    def bits_per_frame(self, fps: float) -> float:
        """Audio bits accumulated during one video frame period."""
        if fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {fps}")
        return self.bitrate_mbps * 1e6 / fps
