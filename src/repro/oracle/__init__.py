"""Feasibility oracle: microsecond queries with a cost-based planner.

See :mod:`repro.oracle.api` for the query layer,
:mod:`repro.oracle.planner` for the escalation policy and
:mod:`repro.oracle.surrogate` for the interpolation surfaces.
"""

from repro.oracle.api import (
    DEFAULT_ACCURACY,
    EXACT_BACKENDS,
    FeasibilityOracle,
    OracleAnswer,
    run_batch,
)
from repro.oracle.planner import (
    TIER_ANALYTIC,
    TIER_EXACT,
    TIER_SURROGATE,
    TIERS,
    CostPlanner,
    QueryPlan,
    feasibility_limit_ms,
    screen_survivors,
)
from repro.oracle.surrogate import SurrogateEstimate, SurrogateSurface

__all__ = [
    "DEFAULT_ACCURACY",
    "EXACT_BACKENDS",
    "FeasibilityOracle",
    "OracleAnswer",
    "run_batch",
    "TIER_ANALYTIC",
    "TIER_EXACT",
    "TIER_SURROGATE",
    "TIERS",
    "CostPlanner",
    "QueryPlan",
    "feasibility_limit_ms",
    "screen_survivors",
    "SurrogateEstimate",
    "SurrogateSurface",
]
