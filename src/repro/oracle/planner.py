"""Cost-based backend planner: accuracy budget in, cheapest tier out.

The oracle (:mod:`repro.oracle.api`) answers feasibility queries by
escalating through three tiers of increasing cost and fidelity:

========== ===================================== =====================
tier       source                                error bound
========== ===================================== =====================
surrogate  monotone interpolation over exact     data-dependent; the
           sweep points already in the result    bracketing interval is
           cache / checkpoints (microseconds)    reported per answer
analytic   the closed-form ``analytic`` backend  its registered
           (milliseconds)                        ``reference_tolerance``
                                                 (documented 15 %)
exact      a bit-identical backend               0.0
           (``batch``/``fast``/``reference``;
           tens of milliseconds and up)
========== ===================================== =====================

:class:`CostPlanner` owns the escalation policy: given the caller's
relative accuracy budget and what the surrogate layer can offer for
this query, it picks the *cheapest adequate* tier.  A surrogate answer
is adequate only when its error bound fits the budget **and** its
confidence interval does not straddle a verdict boundary -- an
interpolated point whose interval covers both PASS and FAIL territory
must escalate no matter how tight its relative error is.

The module also hosts the screening policy the explorer's
``--prescreen`` mode shares with the oracle
(:func:`feasibility_limit_ms` / :func:`screen_survivors`), so there is
exactly one place in the codebase that decides "how far past the frame
period may a low-fidelity estimate be before we discard the point".
"""

from __future__ import annotations

import importlib.util
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.backends.registry import get_backend, validate_backend_name
from repro.errors import ConfigurationError

#: Planner tiers, cheapest first.
TIER_SURROGATE = "surrogate"
TIER_ANALYTIC = "analytic"
TIER_EXACT = "exact"

#: Escalation order (also the order tiers are rejected in).
TIERS: Tuple[str, ...] = (TIER_SURROGATE, TIER_ANALYTIC, TIER_EXACT)


def feasibility_limit_ms(frame_period_ms: float, slack: float) -> float:
    """The screening limit: ``frame_period_ms * (1 + slack)``.

    A low-fidelity estimate at most ``slack`` (fractionally) past the
    frame period is kept for refinement; anything beyond is discarded
    as infeasible.  Both inputs are validated loudly -- a zero or
    non-finite period would make the multiplicative slack a no-op and
    silently turn the screen into "discard everything", which then
    double-simulates the full grid.
    """
    if not math.isfinite(frame_period_ms) or frame_period_ms <= 0:
        raise ConfigurationError(
            f"screening needs a positive finite frame period, got "
            f"{frame_period_ms}"
        )
    if not math.isfinite(slack) or slack < 0:
        raise ConfigurationError(
            f"screening slack must be finite and >= 0, got {slack}"
        )
    return frame_period_ms * (1.0 + slack)


def screen_survivors(
    points: Sequence[object], frame_period_ms: float, slack: float
) -> List[object]:
    """Points whose screened access time is within the slacked limit.

    ``points`` is any sequence with ``access_time_ms`` attributes
    (:class:`~repro.analysis.sweep.SweepPoint` in practice).  The
    returned list preserves order.  Shared by the explorer pre-screen
    and the oracle so the discard policy cannot drift between them.
    """
    limit_ms = feasibility_limit_ms(frame_period_ms, slack)
    return [point for point in points if point.access_time_ms <= limit_ms]


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query.

    ``tier`` answers; ``backend`` is the simulation backend to run
    (``None`` for the surrogate tier); ``error_bound`` is the relative
    access-time error the answer must be labelled with; ``rejected``
    names the cheaper tiers that were considered and found inadequate,
    in escalation order (``len(rejected)`` is the number of
    escalations this query cost).
    """

    tier: str
    backend: Optional[str]
    error_bound: float
    rejected: Tuple[str, ...] = ()

    @property
    def escalations(self) -> int:
        """How many cheaper tiers were rejected before this one."""
        return len(self.rejected)


class CostPlanner:
    """Pick the cheapest tier whose error bound fits a budget.

    ``exact_backend`` pins the tier-3 backend; it must be registered
    and bit-identical (``reference_tolerance == 0.0``) -- the exact
    tier's contract is "indistinguishable from ``sweep_use_case``".
    When ``None``, the planner prefers ``batch`` when numpy is
    importable and falls back to ``fast`` (both bit-identical to
    ``reference``).
    """

    def __init__(self, exact_backend: Optional[str] = None) -> None:
        if exact_backend is not None:
            validate_backend_name(exact_backend)
            if not get_backend(exact_backend).bit_identical:
                raise ConfigurationError(
                    f"exact tier needs a bit-identical backend, but "
                    f"{exact_backend!r} carries a "
                    f"{get_backend(exact_backend).reference_tolerance:.0%} "
                    "tolerance; pick reference, fast or batch"
                )
        self._exact_backend = exact_backend

    def resolve_exact_backend(self) -> str:
        """The backend the exact tier runs on."""
        if self._exact_backend is not None:
            return self._exact_backend
        if importlib.util.find_spec("numpy") is not None:
            return "batch"
        return "fast"

    @staticmethod
    def analytic_tolerance() -> float:
        """The analytic tier's documented relative error bound."""
        return get_backend(TIER_ANALYTIC).reference_tolerance

    def plan(
        self,
        accuracy_budget: float,
        surrogate_bound: Optional[float] = None,
        surrogate_verdict_certain: bool = False,
    ) -> QueryPlan:
        """Choose the cheapest adequate tier for one query.

        ``accuracy_budget`` is the caller's relative access-time error
        tolerance (0.0 demands an exact answer).  ``surrogate_bound``
        is the surrogate layer's error bound for this query (``None``
        when no interpolation is possible -- a tier that cannot answer
        is skipped without counting as an escalation);
        ``surrogate_verdict_certain`` says whether the surrogate's
        confidence interval stays on one side of every verdict
        boundary.
        """
        if not math.isfinite(accuracy_budget) or accuracy_budget < 0:
            raise ConfigurationError(
                f"accuracy budget must be finite and >= 0, got "
                f"{accuracy_budget}"
            )
        rejected: List[str] = []
        if surrogate_bound is not None:
            if surrogate_bound <= accuracy_budget and surrogate_verdict_certain:
                return QueryPlan(
                    tier=TIER_SURROGATE, backend=None,
                    error_bound=surrogate_bound,
                )
            rejected.append(TIER_SURROGATE)
        analytic_tol = self.analytic_tolerance()
        if analytic_tol <= accuracy_budget:
            return QueryPlan(
                tier=TIER_ANALYTIC, backend=TIER_ANALYTIC,
                error_bound=analytic_tol, rejected=tuple(rejected),
            )
        rejected.append(TIER_ANALYTIC)
        return QueryPlan(
            tier=TIER_EXACT, backend=self.resolve_exact_backend(),
            error_bound=0.0, rejected=tuple(rejected),
        )
