"""The feasibility oracle: interactive-rate answers to the paper's
question.

"Will memory configuration X sustain video format Y in real time, and
at what power?" is the query millions of hypothetical users ask, and
they ask it at interactive rates -- a serving problem, not a batch
problem.  :class:`FeasibilityOracle` answers it in microseconds when
it can and escalates only as far as the caller's accuracy budget
demands:

1. **surrogate** -- monotone interpolation over exact sweep points
   harvested from the result cache and/or sweep checkpoints
   (:mod:`repro.oracle.surrogate`); microseconds, with an explicit
   confidence interval per answer;
2. **analytic** -- the closed-form backend within its documented 15 %
   tolerance; milliseconds;
3. **exact** -- a bit-identical backend (``batch``/``fast``/
   ``reference``), bit-identical to :func:`~repro.analysis.sweep.sweep_use_case`
   by construction (it *is* a one-point sweep, run through the same
   cache), with the computed point folded back into the cache and the
   in-memory surface so the oracle gets cheaper as it serves.

Every :class:`OracleAnswer` names the tier that answered and carries
its relative error bound plus the access-time/power confidence
interval -- a surrogate or analytic answer can never masquerade as
exact.  The escalation policy itself lives in
:class:`~repro.oracle.planner.CostPlanner`.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.realtime import (
    PAPER_MARGIN,
    RealTimeVerdict,
    realtime_verdict,
)
from repro.analysis.sweep import SweepPoint, point_key, sweep_use_case
from repro.core.config import (
    PAPER_CHANNEL_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.keys import canonical_key
from repro.load.model import DEFAULT_BLOCK_BYTES
from repro.load.scaling import DEFAULT_CHUNK_BUDGET
from repro.oracle.planner import (
    TIER_ANALYTIC,
    TIER_EXACT,
    TIER_SURROGATE,
    CostPlanner,
)
from repro.oracle.surrogate import SurrogateSurface
from repro.resilience.checkpoint import SweepCheckpoint
from repro.service.cache import ResultCache, resolve_cache
from repro.telemetry.session import Telemetry
from repro.usecase.levels import H264Level, level_by_name
from repro.workloads.registry import WorkloadLike, resolve_workload
from repro.workloads.spec import BoundWorkload

#: Default relative access-time error budget: the analytic backend's
#: documented tolerance, i.e. "screening accuracy".
DEFAULT_ACCURACY = 0.15

#: Backends whose stored points may seed a surrogate surface -- all
#: bit-identical to ``reference``, so a surface only ever interpolates
#: between exact values.
EXACT_BACKENDS: Tuple[str, ...] = ("reference", "fast", "batch")

#: Telemetry counters the oracle exports (pre-registered at zero so a
#: metrics dump shows them even before the first query).
_COUNTERS = (
    "oracle.queries",
    "oracle.escalations",
    "oracle.tier_hits.surrogate",
    "oracle.tier_hits.analytic",
    "oracle.tier_hits.exact",
)


@dataclass(frozen=True)
class OracleAnswer:
    """One feasibility answer, labelled with its provenance.

    ``tier`` names who answered (``surrogate`` / ``analytic`` /
    ``exact``); ``error_bound`` is that tier's relative access-time
    error (0.0 only for the exact tier) and ``[access_low_ms,
    access_high_ms]`` / ``[power_low_mw, power_high_mw]`` bound the
    true values.  ``verdict_certain`` says whether both interval
    endpoints classify to the same verdict -- when ``False`` the
    verdict is the point estimate's, and a caller who needs certainty
    should re-query with a tighter ``accuracy``.  ``escalations``
    counts the cheaper tiers rejected for this query.  ``point`` is
    the underlying :class:`~repro.analysis.sweep.SweepPoint` for
    simulated tiers (``None`` for surrogate answers).
    """

    level: str
    workload: str
    channels: int
    freq_mhz: float
    accuracy: float
    tier: str
    verdict: RealTimeVerdict
    feasible: bool
    access_time_ms: float
    access_low_ms: float
    access_high_ms: float
    total_power_mw: float
    power_low_mw: float
    power_high_mw: float
    error_bound: float
    verdict_certain: bool
    escalations: int
    point: Optional[SweepPoint] = None
    latency_s: float = 0.0

    def to_json(self) -> Dict[str, object]:
        """JSON-ready projection.

        Deterministic for a given query against given stores: the
        wall-clock ``latency_s`` and the ``point`` payload are
        excluded, so batch output is byte-stable across runs (a
        cache-served re-run answers identically to the run that
        computed the entries).
        """
        return {
            "level": self.level,
            "workload": self.workload,
            "channels": self.channels,
            "freq_mhz": self.freq_mhz,
            "accuracy": self.accuracy,
            "tier": self.tier,
            "verdict": self.verdict.value,
            "feasible": self.feasible,
            "access_time_ms": self.access_time_ms,
            "access_low_ms": self.access_low_ms,
            "access_high_ms": self.access_high_ms,
            "total_power_mw": self.total_power_mw,
            "power_low_mw": self.power_low_mw,
            "power_high_mw": self.power_high_mw,
            "error_bound": self.error_bound,
            "verdict_certain": self.verdict_certain,
            "escalations": self.escalations,
        }

    def describe(self) -> str:
        """One human-readable line."""
        certainty = "" if self.verdict_certain else " (verdict uncertain)"
        return (
            f"level {self.level} on {self.channels}ch @ {self.freq_mhz:g} MHz "
            f"[{self.workload}]: {self.verdict}{certainty} -- access "
            f"{self.access_time_ms:.3f} ms in [{self.access_low_ms:.3f}, "
            f"{self.access_high_ms:.3f}], power {self.total_power_mw:.1f} mW, "
            f"tier={self.tier}, err<={self.error_bound:.1%}"
        )


class FeasibilityOracle:
    """Low-latency feasibility query layer over the stored sweep work.

    ``cache`` (directory path or prepared
    :class:`~repro.service.cache.ResultCache`) and ``checkpoints``
    (paths or :class:`~repro.resilience.checkpoint.SweepCheckpoint`\\ s)
    are the harvest sources for surrogate surfaces *and* -- for the
    cache -- the store exact/analytic answers are folded back into.
    ``scale`` / ``chunk_budget`` / ``block_bytes`` pin the simulation
    context; they are part of every canonical key, so an oracle only
    harvests points computed under the identical context.

    ``exact_backend`` pins the tier-3 backend (must be bit-identical);
    the default prefers ``batch`` when numpy is available, else
    ``fast``.  ``probe_channels`` x ``probe_freqs`` is the grid the
    harvester looks up in the stores (defaults to the paper grid).

    Thread-compatibility mirrors the rest of the package: one oracle
    per thread/process; the underlying cache is multi-process safe.
    """

    def __init__(
        self,
        cache: Optional[Union[str, Path, ResultCache]] = None,
        checkpoints: Sequence[Union[str, Path, SweepCheckpoint]] = (),
        chunk_budget: int = DEFAULT_CHUNK_BUDGET,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        scale: Optional[float] = None,
        exact_backend: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        probe_channels: Sequence[int] = PAPER_CHANNEL_COUNTS,
        probe_freqs: Sequence[float] = PAPER_FREQUENCIES_MHZ,
        margin: float = PAPER_MARGIN,
    ) -> None:
        self.cache = resolve_cache(cache)
        self.checkpoints = tuple(checkpoints)
        self.chunk_budget = chunk_budget
        self.block_bytes = block_bytes
        self.scale = scale
        self.margin = margin
        self.planner = CostPlanner(exact_backend=exact_backend)
        self.telemetry = telemetry
        self.probe_channels = tuple(probe_channels)
        self.probe_freqs = tuple(probe_freqs)
        self._surfaces: Dict[str, SurrogateSurface] = {}
        self._checkpoint_payloads: Optional[Dict[str, Any]] = None
        if telemetry is not None:
            for name in _COUNTERS:
                telemetry.registry.counter(name).add(0)

    # -- harvesting ---------------------------------------------------------

    def _stored_payloads(self) -> Dict[str, Any]:
        """Merged key -> payload map of every attached checkpoint."""
        if self._checkpoint_payloads is None:
            merged: Dict[str, Any] = {}
            for source in self.checkpoints:
                store = (
                    source
                    if isinstance(source, SweepCheckpoint)
                    else SweepCheckpoint(source)
                )
                merged.update(store.load())
            self._checkpoint_payloads = merged
        return self._checkpoint_payloads

    def _lookup(self, key: str) -> Optional[SweepPoint]:
        """One stored exact point by canonical key, if any."""
        if self.cache is not None and self.cache.contains(key):
            hit = self.cache.get(key)
            if isinstance(hit, SweepPoint):
                return hit
        hit = self._stored_payloads().get(key)
        return hit if isinstance(hit, SweepPoint) else None

    def surface_for(
        self, level: H264Level, workload: WorkloadLike = None
    ) -> SurrogateSurface:
        """The (memoized) surrogate surface of one (level, workload).

        Built by *probing*: for every grid point and every exact
        backend, the point's canonical key -- the same
        :func:`~repro.analysis.sweep.point_key` a sweep files it
        under, workload identity included -- is looked up in the
        attached stores.  No directory scanning, so a cache shared
        across workloads can never leak foreign points onto a surface.
        """
        bound = (
            workload
            if isinstance(workload, BoundWorkload)
            else resolve_workload(workload)
        )
        surface_key = canonical_key(
            {
                "kind": "oracle-surface",
                "level": level,
                "workload": bound.identity(),
                "scale": self.scale,
                "chunk_budget": self.chunk_budget,
                "block_bytes": self.block_bytes,
            }
        )
        surface = self._surfaces.get(surface_key)
        if surface is not None:
            return surface
        surface = SurrogateSurface()
        for channels in self.probe_channels:
            for freq in self.probe_freqs:
                base = SystemConfig(channels=channels, freq_mhz=freq)
                for backend in EXACT_BACKENDS:
                    point = self._lookup(
                        point_key(
                            level,
                            base.with_backend(backend),
                            scale=self.scale,
                            chunk_budget=self.chunk_budget,
                            block_bytes=self.block_bytes,
                            workload=bound,
                        )
                    )
                    if point is not None:
                        surface.insert(point)
                        break
        self._surfaces[surface_key] = surface
        return surface

    def warm(self, level: H264Level, workload: WorkloadLike = None) -> int:
        """Build the surface for (level, workload) now; returns the
        number of exact points harvested."""
        return len(self.surface_for(level, workload))

    # -- querying -----------------------------------------------------------

    def query(
        self,
        level: Union[H264Level, str],
        channels: int,
        freq_mhz: float,
        accuracy: float = DEFAULT_ACCURACY,
        workload: WorkloadLike = None,
    ) -> OracleAnswer:
        """Answer one feasibility question.

        ``accuracy`` is the relative access-time error the caller
        tolerates (0.0 demands an exact simulation).  The answer
        always names its tier and error bound; see
        :class:`OracleAnswer`.
        """
        start = time.perf_counter()
        if isinstance(level, str):
            level = level_by_name(level)
        if not math.isfinite(accuracy) or accuracy < 0:
            raise ConfigurationError(
                f"accuracy budget must be finite and >= 0, got {accuracy}"
            )
        bound = (
            workload
            if isinstance(workload, BoundWorkload)
            else resolve_workload(workload)
        )
        # Constructing the config validates channels and frequency
        # against the device envelope before any tier runs.
        config = SystemConfig(channels=channels, freq_mhz=freq_mhz)
        surface = self.surface_for(level, bound)
        answer = self._answer(level, config, accuracy, bound, surface)
        answer = replace(answer, latency_s=time.perf_counter() - start)
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter("oracle.queries").add(1)
            registry.counter(f"oracle.tier_hits.{answer.tier}").add(1)
            registry.counter("oracle.escalations").add(answer.escalations)
            registry.histogram("oracle.latency_seconds").record(
                answer.latency_s
            )
        return answer

    def _answer(
        self,
        level: H264Level,
        config: SystemConfig,
        accuracy: float,
        bound: BoundWorkload,
        surface: SurrogateSurface,
    ) -> OracleAnswer:
        exact_hit = surface.exact(config.channels, config.freq_mhz)
        if exact_hit is not None:
            return self._from_point(
                level, config, accuracy, bound, exact_hit,
                tier=TIER_EXACT, error_bound=0.0, escalations=0,
            )
        estimate = surface.estimate(
            config.channels,
            config.freq_mhz,
            level.frame_period_ms,
            margin=self.margin,
        )
        plan = self.planner.plan(
            accuracy,
            surrogate_bound=(
                estimate.error_bound if estimate is not None else None
            ),
            surrogate_verdict_certain=(
                estimate.verdict_certain if estimate is not None else False
            ),
        )
        if plan.tier == TIER_SURROGATE:
            assert estimate is not None
            return OracleAnswer(
                level=level.name,
                workload=bound.name,
                channels=config.channels,
                freq_mhz=config.freq_mhz,
                accuracy=accuracy,
                tier=TIER_SURROGATE,
                verdict=estimate.verdict,
                feasible=estimate.verdict.feasible,
                access_time_ms=estimate.access_time_ms,
                access_low_ms=estimate.access_low_ms,
                access_high_ms=estimate.access_high_ms,
                total_power_mw=estimate.total_power_mw,
                power_low_mw=estimate.power_low_mw,
                power_high_mw=estimate.power_high_mw,
                error_bound=estimate.error_bound,
                verdict_certain=estimate.verdict_certain,
                escalations=plan.escalations,
            )
        point = self._simulate(level, config.with_backend(plan.backend), bound)
        if plan.tier == TIER_EXACT:
            # Exact work is never wasted: the point now serves future
            # grid-exact queries from the in-memory surface (and, via
            # the shared cache, future processes).
            surface.insert(point)
        return self._from_point(
            level, config, accuracy, bound, point,
            tier=plan.tier, error_bound=plan.error_bound,
            escalations=plan.escalations,
        )

    def _simulate(
        self, level: H264Level, config: SystemConfig, bound: BoundWorkload
    ) -> SweepPoint:
        """Run one point through the real sweep machinery.

        Going through :func:`~repro.analysis.sweep.sweep_use_case`
        (rather than ``simulate_use_case``) keeps the exact tier
        bit-identical to a sweep *by construction* and gives analytic
        and exact answers the cache fold-in/out for free.
        """
        report = sweep_use_case(
            [level],
            [config],
            scale=self.scale,
            chunk_budget=self.chunk_budget,
            block_bytes=self.block_bytes,
            cache=self.cache,
            workload=bound,
            telemetry=self.telemetry,
        )
        return report[0]

    def _from_point(
        self,
        level: H264Level,
        config: SystemConfig,
        accuracy: float,
        bound: BoundWorkload,
        point: SweepPoint,
        tier: str,
        error_bound: float,
        escalations: int,
    ) -> OracleAnswer:
        access = point.access_time_ms
        power = point.total_power_mw
        access_low = access * (1.0 - error_bound)
        access_high = access * (1.0 + error_bound)
        power_low = power * (1.0 - error_bound)
        power_high = power * (1.0 + error_bound)
        if error_bound:
            verdict_certain = realtime_verdict(
                access_low, level.frame_period_ms, margin=self.margin
            ) is realtime_verdict(
                access_high, level.frame_period_ms, margin=self.margin
            )
        else:
            verdict_certain = True
        return OracleAnswer(
            level=level.name,
            workload=bound.name,
            channels=config.channels,
            freq_mhz=config.freq_mhz,
            accuracy=accuracy,
            tier=tier,
            verdict=point.verdict,
            feasible=point.verdict.feasible,
            access_time_ms=access,
            access_low_ms=access_low,
            access_high_ms=access_high,
            total_power_mw=power,
            power_low_mw=power_low,
            power_high_mw=power_high,
            error_bound=error_bound,
            verdict_certain=verdict_certain,
            escalations=escalations,
            point=point,
        )


#: Fields a batch query line may carry.
_BATCH_FIELDS = frozenset({"level", "channels", "freq_mhz", "accuracy", "workload"})
_BATCH_REQUIRED = frozenset({"level", "channels", "freq_mhz"})


def run_batch(oracle: FeasibilityOracle, lines: Iterable[str]) -> List[str]:
    """Answer one JSON query object per input line.

    Each line must be an object with ``level`` (name), ``channels``,
    ``freq_mhz`` and optionally ``accuracy`` / ``workload``; blank
    lines are skipped.  Returns one sorted-key JSON answer string per
    query, in input order -- deterministic, so two runs against the
    same stores produce byte-identical output.  Malformed input raises
    :class:`~repro.errors.ConfigurationError` naming the line.
    """
    answers: List[str] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"batch query line {number} is not valid JSON: {exc}"
            )
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"batch query line {number} must be a JSON object, got "
                f"{type(spec).__name__}"
            )
        unknown = sorted(set(spec) - _BATCH_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"batch query line {number} has unknown field(s) "
                f"{', '.join(unknown)}; allowed: {', '.join(sorted(_BATCH_FIELDS))}"
            )
        missing = sorted(_BATCH_REQUIRED - set(spec))
        if missing:
            raise ConfigurationError(
                f"batch query line {number} is missing required field(s) "
                f"{', '.join(missing)}"
            )
        answer = oracle.query(
            spec["level"],
            spec["channels"],
            spec["freq_mhz"],
            accuracy=spec.get("accuracy", DEFAULT_ACCURACY),
            workload=spec.get("workload"),
        )
        answers.append(json.dumps(answer.to_json(), sort_keys=True))
    return answers
