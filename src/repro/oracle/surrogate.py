"""Surrogate response surfaces over exact sweep points.

A surface holds, per channel count, the exact-tier
:class:`~repro.analysis.sweep.SweepPoint`\\ s already computed for one
(level, workload, scale, budget, block size) context -- harvested from
the result cache and/or sweep checkpoints -- and answers off-grid
frequency queries by interpolation.

The physics makes this rigorous rather than hopeful: at a fixed
channel count the frame's access time is monotonically decreasing in
the interface clock (more cycles per second, same cycle count to first
order), so two bracketing grid points bound the true value.  The
estimate interpolates access time linearly in ``1/f`` (access time is
close to ``cycles / f``, so it is near-linear in the period) and power
linearly in ``f``; the *confidence interval* is simply the bracketing
points' value range, widened to ``[min, max]`` if the data happens to
be locally non-monotone -- the interval never relies on the
monotonicity assumption being true, only the point estimate's
placement does.

Surfaces never extrapolate (a query outside the harvested frequency
range, or at a channel count with fewer than two distinct
frequencies, yields no estimate) and never cross channel counts --
channel scaling re-maps bank bits and is exactly the effect the paper
measures, so guessing across it would be fiction, not interpolation.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.realtime import (
    PAPER_MARGIN,
    RealTimeVerdict,
    realtime_verdict,
)
from repro.analysis.sweep import SweepPoint


@dataclass(frozen=True)
class SurrogateEstimate:
    """One interpolated query answer, with its confidence interval.

    ``error_bound`` is the relative half-width of the access-time
    interval around the estimate (the quantity the planner compares
    against the caller's accuracy budget); it is strictly positive --
    a surrogate answer never claims exactness.  ``verdict_certain``
    is ``True`` only when both interval endpoints classify to the same
    :class:`~repro.analysis.realtime.RealTimeVerdict`.
    """

    channels: int
    freq_mhz: float
    access_time_ms: float
    access_low_ms: float
    access_high_ms: float
    total_power_mw: float
    power_low_mw: float
    power_high_mw: float
    error_bound: float
    verdict: RealTimeVerdict
    verdict_certain: bool
    #: The bracketing grid frequencies the estimate interpolates.
    bracket_mhz: Tuple[float, float]


class SurrogateSurface:
    """Exact sweep points of one (level, workload) context, queryable.

    ``insert`` only ever receives exact-tier points (the oracle
    enforces bit-identical backends at harvest time); ``exact`` serves
    grid hits verbatim and ``estimate`` interpolates between them.
    """

    def __init__(self) -> None:
        self._points: Dict[int, Dict[float, SweepPoint]] = {}
        self._freqs: Dict[int, List[float]] = {}

    def __len__(self) -> int:
        return sum(len(per) for per in self._points.values())

    def channels(self) -> List[int]:
        """Channel counts with at least one harvested point."""
        return sorted(self._points)

    def frequencies(self, channels: int) -> List[float]:
        """Sorted harvested frequencies for one channel count."""
        return list(self._freqs.get(channels, ()))

    def insert(self, point: SweepPoint) -> None:
        """Add (or replace) one exact point on the surface."""
        m = point.config.channels
        f = point.config.freq_mhz
        per = self._points.setdefault(m, {})
        if f not in per:
            insort(self._freqs.setdefault(m, []), f)
        per[f] = point

    def exact(self, channels: int, freq_mhz: float) -> Optional[SweepPoint]:
        """The harvested point at exactly (channels, freq), if any."""
        return self._points.get(channels, {}).get(freq_mhz)

    def estimate(
        self,
        channels: int,
        freq_mhz: float,
        frame_period_ms: float,
        margin: float = PAPER_MARGIN,
    ) -> Optional[SurrogateEstimate]:
        """Interpolated answer at (channels, freq), or ``None``.

        ``None`` means the surface cannot answer: no data at this
        channel count, or ``freq_mhz`` outside the harvested range
        (surfaces never extrapolate).  A grid-exact frequency is
        served via :meth:`exact` by the oracle before estimation is
        attempted, so this method only sees strictly interior queries.
        """
        freqs = self._freqs.get(channels)
        if not freqs or len(freqs) < 2:
            return None
        if not freqs[0] < freq_mhz < freqs[-1]:
            return None
        hi_index = bisect_left(freqs, freq_mhz)
        f_lo, f_hi = freqs[hi_index - 1], freqs[hi_index]
        lo = self._points[channels][f_lo]
        hi = self._points[channels][f_hi]

        # Access time ~ cycles / f: interpolate linearly in the period
        # u = 1/f, which is exact for that first-order law.
        u, u_lo, u_hi = 1.0 / freq_mhz, 1.0 / f_lo, 1.0 / f_hi
        w = (u - u_hi) / (u_lo - u_hi)
        access = hi.access_time_ms + w * (lo.access_time_ms - hi.access_time_ms)
        access_low = min(lo.access_time_ms, hi.access_time_ms)
        access_high = max(lo.access_time_ms, hi.access_time_ms)
        # Linear interpolation always lands inside the bracket, but be
        # explicit: the interval is the contract, the estimate a guess.
        access = min(max(access, access_low), access_high)

        w_f = (freq_mhz - f_lo) / (f_hi - f_lo)
        power = lo.total_power_mw + w_f * (hi.total_power_mw - lo.total_power_mw)
        power_low = min(lo.total_power_mw, hi.total_power_mw)
        power_high = max(lo.total_power_mw, hi.total_power_mw)
        power = min(max(power, power_low), power_high)

        if access > 0:
            error_bound = max(access_high - access, access - access_low) / access
        else:
            error_bound = float("inf")
        verdict = realtime_verdict(access, frame_period_ms, margin=margin)
        verdict_certain = (
            realtime_verdict(access_low, frame_period_ms, margin=margin)
            is realtime_verdict(access_high, frame_period_ms, margin=margin)
        )
        return SurrogateEstimate(
            channels=channels,
            freq_mhz=freq_mhz,
            access_time_ms=access,
            access_low_ms=access_low,
            access_high_ms=access_high,
            total_power_mw=power,
            power_low_mw=power_low,
            power_high_mw=power_high,
            error_bound=error_bound,
            verdict=verdict,
            verdict_certain=verdict_certain,
            bracket_mhz=(f_lo, f_hi),
        )
