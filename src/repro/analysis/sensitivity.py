"""Sensitivity analysis: how robust are the paper's conclusions?

The reproduction calibrates a handful of constants the paper never
publishes (DESIGN.md section 4, EXPERIMENTS.md): the DRAM-interconnect
exposure, the stage-processing block size, the encoder's reference
count and the controller queue depth.  A fair reproduction must show
its headline conclusions do not hinge on one magic value — this module
re-derives the paper's *feasibility boundary pattern* while sweeping
each constant and reports the range over which every conclusion
survives.

The boundary pattern is the conjunction of the claims the paper's
prose states outright:

====================  =============================================
``720p30@1ch``         level 3.1 feasible on a single channel
``720p60@1ch!``        level 3.2 infeasible on one channel
``720p60@2ch``         ... but feasible on two
``1080p30@4ch``        level 4 PASSes (with margin) on four
``1080p60@8ch``        level 4.2 feasible on eight
``1080p60@2ch!``       ... and infeasible on two
``2160p30@8ch``        level 5.2 feasible on eight
``2160p30@4ch!``       ... and infeasible on four
====================  =============================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.realtime import RealTimeVerdict
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.controller.interconnect import InterconnectModel
from repro.controller.queue import CommandQueueModel
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.load.model import DEFAULT_BLOCK_BYTES
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: (claim name, level, channels, must_be_feasible, must_pass_margin)
BOUNDARY_CLAIMS: Tuple[Tuple[str, str, int, bool, bool], ...] = (
    ("720p30@1ch", "3.1", 1, True, False),
    ("720p60@1ch!", "3.2", 1, False, False),
    ("720p60@2ch", "3.2", 2, True, False),
    ("1080p30@4ch", "4", 4, True, True),
    ("1080p60@2ch!", "4.2", 2, False, False),
    ("1080p60@8ch", "4.2", 8, True, False),
    ("2160p30@4ch!", "5.2", 4, False, False),
    ("2160p30@8ch", "5.2", 8, True, False),
)


def check_boundary_pattern(
    base_config: Optional[SystemConfig] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    reference_frames: Optional[int] = None,
    chunk_budget: int = 60_000,
) -> Dict[str, bool]:
    """Evaluate every boundary claim; returns claim -> holds."""
    if base_config is None:
        base_config = SystemConfig(freq_mhz=400.0)
    outcome: Dict[str, bool] = {}
    for name, level_name, channels, want_feasible, want_margin in BOUNDARY_CLAIMS:
        level = level_by_name(level_name)
        if reference_frames is not None:
            level = dataclasses.replace(level, reference_frames=reference_frames)
        use_case = VideoRecordingUseCase(level)
        point = simulate_use_case(
            level,
            base_config.with_channels(channels),
            chunk_budget=chunk_budget,
            block_bytes=block_bytes,
            use_case=use_case,
        )
        if want_margin:
            holds = point.verdict is RealTimeVerdict.PASS
        elif want_feasible:
            holds = point.verdict.feasible
        else:
            holds = not point.verdict.feasible
        outcome[name] = holds
    return outcome


@dataclass(frozen=True)
class SensitivityResult:
    """Boundary-pattern survival across one parameter sweep."""

    parameter: str
    #: Parameter value -> (claim -> holds).
    outcomes: Dict[float, Dict[str, bool]]
    #: The calibrated default value.
    default_value: float

    def holds_at(self, value: float) -> bool:
        """Whether every claim survives at ``value``."""
        return all(self.outcomes[value].values())

    def robust_values(self) -> List[float]:
        """Parameter values at which every claim survives."""
        return [v for v in self.outcomes if self.holds_at(v)]

    def failed_claims_at(self, value: float) -> List[str]:
        """Claims broken at ``value``."""
        return [k for k, ok in self.outcomes[value].items() if not ok]

    def format(self) -> str:
        """ASCII table: one row per value, one column per claim."""
        claims = [c[0] for c in BOUNDARY_CLAIMS]
        rows: List[List[str]] = [[self.parameter] + claims + ["all"]]
        for value in self.outcomes:
            marker = " (default)" if value == self.default_value else ""
            row = [f"{value:g}{marker}"]
            for claim in claims:
                row.append("ok" if self.outcomes[value][claim] else "X")
            row.append("ok" if self.holds_at(value) else "X")
            rows.append(row)
        return format_table(rows)


def sweep_interconnect_overhead(
    values: Sequence[float] = (0.30, 0.40, 0.45, 0.50, 0.60),
    chunk_budget: int = 60_000,
) -> SensitivityResult:
    """Sweep the DRAM-interconnect exposure constant."""
    outcomes = {}
    for value in values:
        config = SystemConfig(
            freq_mhz=400.0,
            interconnect=InterconnectModel(address_cycles_per_access=value),
        )
        outcomes[value] = check_boundary_pattern(config, chunk_budget=chunk_budget)
    return SensitivityResult(
        parameter="interconnect [cyc/access]",
        outcomes=outcomes,
        default_value=InterconnectModel().address_cycles_per_access,
    )


def sweep_block_bytes(
    values: Sequence[int] = (2048, 4096, 8192),
    chunk_budget: int = 60_000,
) -> SensitivityResult:
    """Sweep the stage-processing block size."""
    outcomes = {}
    for value in values:
        outcomes[float(value)] = check_boundary_pattern(
            block_bytes=value, chunk_budget=chunk_budget
        )
    return SensitivityResult(
        parameter="block size [B]",
        outcomes=outcomes,
        default_value=float(DEFAULT_BLOCK_BYTES),
    )


def sweep_reference_frames(
    values: Sequence[int] = (3, 4, 5),
    chunk_budget: int = 60_000,
) -> SensitivityResult:
    """Sweep the encoder's reference-frame count.

    Unlike the timing constants this changes the *workload* itself
    (Table I scales with n_ref), so some boundary movement is
    expected; the result quantifies how much.
    """
    outcomes = {}
    for value in values:
        outcomes[float(value)] = check_boundary_pattern(
            reference_frames=value, chunk_budget=chunk_budget
        )
    return SensitivityResult(
        parameter="reference frames",
        outcomes=outcomes,
        default_value=4.0,
    )


def sweep_queue_depth(
    values: Sequence[int] = (2, 4, 8, 16),
    chunk_budget: int = 60_000,
) -> SensitivityResult:
    """Sweep the controller command-queue depth."""
    outcomes = {}
    for value in values:
        config = SystemConfig(freq_mhz=400.0, queue=CommandQueueModel(depth=value))
        outcomes[float(value)] = check_boundary_pattern(
            config, chunk_budget=chunk_budget
        )
    return SensitivityResult(
        parameter="queue depth",
        outcomes=outcomes,
        default_value=float(CommandQueueModel().depth),
    )
