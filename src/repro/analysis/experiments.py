"""Experiment runners: one per paper artifact.

Every table and figure of the paper's evaluation has a runner here
that regenerates its rows/series from the simulator:

=============  ========================================================
runner          paper artifact
=============  ========================================================
run_table1      Table I  -- per-stage bandwidth requirements
run_table2      Table II -- memory mapping over channels
run_fig3        Fig. 3   -- access time vs clock frequency (720p30)
run_fig4        Fig. 4   -- access time vs frame format (400 MHz)
run_fig5        Fig. 5   -- power vs frame format (400 MHz)
run_xdr_...     Section IV/V -- the Cell BE XDR comparison
=============  ========================================================

Each result object carries the raw numbers plus a ``format()`` method
producing the ASCII rendition the CLI and the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.realtime import RealTimeVerdict
from repro.analysis.sweep import (
    SweepPoint,
    channel_sweep_configs,
    frequency_sweep_configs,
    simulate_use_case,
    sweep_use_case,
)
from repro.analysis.tables import format_table
from repro.core.config import (
    PAPER_CHANNEL_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    SystemConfig,
)
from repro.core.interleave import ChannelInterleaver
from repro.errors import ConfigurationError
from repro.power.xdr import XDR_CELL_BE, XdrReference
from repro.resilience.report import JobFailure
from repro.telemetry.progress import ProgressSink
from repro.telemetry.session import Telemetry
from repro.usecase.bandwidth import BandwidthTable, compute_table1
from repro.usecase.levels import PAPER_LEVELS, H264Level, level_by_name
from repro.workloads.registry import WorkloadLike

#: Cell shown for a sweep point that failed under ``strict=False``.
FAILED_CELL = "ERR"


def _failure_legend(failures: Sequence[JobFailure]) -> str:
    """Annotation block appended to a figure rendition when some sweep
    points failed under graceful degradation."""
    lines = [f"{len(failures)} point(s) failed (ERR cells):"]
    lines += [f"  {failure.describe()}" for failure in failures]
    return "\n".join(lines)

# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def run_table1(levels: Sequence[H264Level] = PAPER_LEVELS) -> BandwidthTable:
    """Regenerate Table I (purely analytic: the Fig. 1 model)."""
    return compute_table1(levels)


def format_table1(table: BandwidthTable) -> str:
    """ASCII rendition of Table I."""
    return format_table(table.as_rows())


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Result:
    """Regenerated Table II for one channel count."""

    channels: int
    rows: Tuple[Tuple[str, str], ...]

    def format(self) -> str:
        """ASCII rendition (address range -> bank cluster)."""
        table = [["Address", "Bank cluster"]] + [list(r) for r in self.rows]
        return format_table(table)


def run_table2(channels: int = 8) -> Table2Result:
    """Regenerate Table II: the address-to-channel interleaving map."""
    interleaver = ChannelInterleaver(channels)
    return Table2Result(channels=channels, rows=tuple(interleaver.table2_rows()))


# ---------------------------------------------------------------------------
# Fig. 3: access time vs clock frequency (720p, one frame, 30 fps line)
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Fig. 3 data: access time [ms] per (frequency, channel count)."""

    level: H264Level
    frequencies_mhz: Tuple[float, ...]
    channel_counts: Tuple[int, ...]
    #: access_ms[freq][channels]
    access_ms: Dict[float, Dict[int, float]]
    verdicts: Dict[float, Dict[int, RealTimeVerdict]]
    #: Sweep points that failed (graceful degradation, ``strict=False``);
    #: their cells render as :data:`FAILED_CELL`.
    failures: Tuple[JobFailure, ...] = ()

    @property
    def realtime_requirement_ms(self) -> float:
        """The red line of Fig. 3."""
        return self.level.frame_period_ms

    def as_records(self) -> List[Dict[str, object]]:
        """Flat per-point records in sweep order: ``freq_mhz``,
        ``channels``, ``access_ms``, ``verdict``.  Failed cells
        (graceful degradation) are omitted.  Shared by the CSV
        exporter and the golden-baseline store
        (:mod:`repro.regression`)."""
        records: List[Dict[str, object]] = []
        for freq in self.frequencies_mhz:
            for channels in self.channel_counts:
                if channels not in self.access_ms.get(freq, {}):
                    continue
                records.append(
                    {
                        "freq_mhz": freq,
                        "channels": channels,
                        "access_ms": self.access_ms[freq][channels],
                        "verdict": str(self.verdicts[freq][channels]),
                    }
                )
        return records

    def format(self) -> str:
        """ASCII rendition: one row per frequency, one column per
        channel count, with the paper's verdict annotations."""
        header = ["Clock [MHz]"] + [f"{m} ch [ms]" for m in self.channel_counts]
        rows: List[List[str]] = [header]
        for f in self.frequencies_mhz:
            row = [f"{f:g}"]
            for m in self.channel_counts:
                if m not in self.access_ms.get(f, {}):
                    row.append(FAILED_CELL)
                    continue
                cell = f"{self.access_ms[f][m]:.1f}"
                verdict = self.verdicts[f][m]
                if verdict is RealTimeVerdict.FAIL:
                    cell += " !"
                elif verdict is RealTimeVerdict.MARGINAL:
                    cell += " ~"
                row.append(cell)
            rows.append(row)
        legend = (
            f"real-time requirement for {self.level.fps} fps: "
            f"{self.realtime_requirement_ms:.1f} ms   (! = fail, ~ = marginal)"
        )
        out = format_table(rows) + "\n" + legend
        if self.failures:
            out += "\n" + _failure_legend(self.failures)
        return out


def run_fig3(
    frequencies_mhz: Sequence[float] = PAPER_FREQUENCIES_MHZ,
    channel_counts: Sequence[int] = PAPER_CHANNEL_COUNTS,
    base_config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
    chunk_budget: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    strict: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    point_timeout: Optional[float] = None,
    durable_checkpoint: bool = False,
    cache: Optional[Union[str, Path]] = None,
    workload: WorkloadLike = None,
) -> Fig3Result:
    """Regenerate Fig. 3: sweep the interface clock for the least
    demanding HD level (3.1: 720p at 30 fps) over 1-8 channels.

    ``workers`` distributes the (frequency, channel-count) points over
    worker processes (0 = one per CPU); results are identical.
    ``backend`` selects the simulation backend for every point (see
    :mod:`repro.backends`).  ``checkpoint`` resumes an interrupted
    sweep from a JSON-lines file (``checkpoint_force`` permits mixing
    backends in one file, ``durable_checkpoint`` fsyncs every append);
    ``strict=False`` renders failed points as ERR cells instead of
    raising; ``point_timeout`` puts every point under watchdog
    supervision (hung points are killed, requeued and eventually
    quarantined as ERR cells -- see
    :func:`repro.analysis.sweep.sweep_use_case`); ``cache`` names a
    persistent content-addressed result store directory, so a warm
    cache regenerates the figure without simulating anything."""
    level = level_by_name("3.1")
    base = base_config if base_config is not None else SystemConfig()
    kwargs = {} if chunk_budget is None else {"chunk_budget": chunk_budget}
    configs = [
        config
        for f in frequencies_mhz
        for config in channel_sweep_configs(base.with_frequency(f), channel_counts)
    ]
    report = sweep_use_case(
        [level],
        configs,
        scale=scale,
        workers=workers,
        checkpoint=checkpoint,
        strict=strict,
        telemetry=telemetry,
        progress=progress,
        backend=backend,
        checkpoint_force=checkpoint_force,
        point_timeout=point_timeout,
        durable_checkpoint=durable_checkpoint,
        cache=cache,
        workload=workload,
        **kwargs,
    )
    access: Dict[float, Dict[int, float]] = {}
    verdicts: Dict[float, Dict[int, RealTimeVerdict]] = {}
    for point in report:
        f = point.config.freq_mhz
        access.setdefault(f, {})[point.config.channels] = point.access_time_ms
        verdicts.setdefault(f, {})[point.config.channels] = point.verdict
    return Fig3Result(
        level=level,
        frequencies_mhz=tuple(frequencies_mhz),
        channel_counts=tuple(channel_counts),
        access_ms=access,
        verdicts=verdicts,
        failures=tuple(report.failures),
    )


# ---------------------------------------------------------------------------
# Fig. 4: access time vs frame format at 400 MHz
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Fig. 4 data: access time [ms] per (level, channel count)."""

    levels: Tuple[H264Level, ...]
    channel_counts: Tuple[int, ...]
    freq_mhz: float
    #: points[level_name][channels]
    points: Dict[str, Dict[int, SweepPoint]]
    #: Sweep points that failed (graceful degradation, ``strict=False``);
    #: their cells render as :data:`FAILED_CELL`.
    failures: Tuple[JobFailure, ...] = ()

    def access_ms(self, level_name: str, channels: int) -> float:
        """Access time of one bar."""
        return self.points[level_name][channels].access_time_ms

    def verdict(self, level_name: str, channels: int) -> RealTimeVerdict:
        """Feasibility of one bar."""
        return self.points[level_name][channels].verdict

    def as_records(self) -> List[Dict[str, object]]:
        """Flat per-point records: ``level``, ``format``, ``fps``,
        ``channels``, ``access_ms``, ``verdict``.  Failed cells are
        omitted.  Shared by the CSV exporter and the golden store."""
        records: List[Dict[str, object]] = []
        for level in self.levels:
            for channels in self.channel_counts:
                point = self.points.get(level.name, {}).get(channels)
                if point is None:
                    continue
                records.append(
                    {
                        "level": level.name,
                        "format": level.frame.name,
                        "fps": level.fps,
                        "channels": channels,
                        "access_ms": point.access_time_ms,
                        "verdict": str(point.verdict),
                    }
                )
        return records

    def format(self) -> str:
        """ASCII rendition: rows = formats, columns = channel counts."""
        header = ["Frame format"] + [f"{m} ch [ms]" for m in self.channel_counts]
        rows: List[List[str]] = [header]
        for level in self.levels:
            row = [level.column_title]
            for m in self.channel_counts:
                point = self.points.get(level.name, {}).get(m)
                if point is None:
                    row.append(FAILED_CELL)
                    continue
                cell = f"{point.access_time_ms:.1f}"
                if point.verdict is RealTimeVerdict.FAIL:
                    cell += " !"
                elif point.verdict is RealTimeVerdict.MARGINAL:
                    cell += " ~"
                row.append(cell)
            rows.append(row)
        legend = (
            f"clock {self.freq_mhz:g} MHz; requirement 33.3 ms @30 fps / "
            "16.7 ms @60 fps   (! = fail, ~ = marginal)"
        )
        out = format_table(rows) + "\n" + legend
        if self.failures:
            out += "\n" + _failure_legend(self.failures)
        return out


def run_fig4(
    levels: Sequence[H264Level] = PAPER_LEVELS,
    channel_counts: Sequence[int] = PAPER_CHANNEL_COUNTS,
    freq_mhz: float = 400.0,
    base_config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
    chunk_budget: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    strict: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    point_timeout: Optional[float] = None,
    durable_checkpoint: bool = False,
    cache: Optional[Union[str, Path]] = None,
    workload: WorkloadLike = None,
) -> Fig4Result:
    """Regenerate Fig. 4: frame-format sweep at a 400 MHz clock.

    ``workers`` distributes the (level, channel-count) points over
    worker processes (0 = one per CPU); results are identical.
    ``backend`` selects the simulation backend for every point.
    ``checkpoint`` resumes an interrupted sweep from a JSON-lines
    file (``checkpoint_force`` permits mixing backends in one file,
    ``durable_checkpoint`` fsyncs every append); ``strict=False``
    renders failed points as ERR cells instead of raising;
    ``point_timeout`` puts every point under watchdog supervision;
    ``cache`` names a persistent content-addressed result store
    directory shared across figures (Fig. 4 and Fig. 5 sweep identical
    points, so either warms the cache for both)."""
    base = (base_config if base_config is not None else SystemConfig()).with_frequency(
        freq_mhz
    )
    kwargs = {} if chunk_budget is None else {"chunk_budget": chunk_budget}
    report = sweep_use_case(
        levels,
        channel_sweep_configs(base, channel_counts),
        scale=scale,
        workers=workers,
        checkpoint=checkpoint,
        strict=strict,
        telemetry=telemetry,
        progress=progress,
        backend=backend,
        checkpoint_force=checkpoint_force,
        point_timeout=point_timeout,
        durable_checkpoint=durable_checkpoint,
        cache=cache,
        workload=workload,
        **kwargs,
    )
    points: Dict[str, Dict[int, SweepPoint]] = {}
    for point in report:
        points.setdefault(point.level.name, {})[point.config.channels] = point
    return Fig4Result(
        levels=tuple(levels),
        channel_counts=tuple(channel_counts),
        freq_mhz=freq_mhz,
        points=points,
        failures=tuple(report.failures),
    )


# ---------------------------------------------------------------------------
# Fig. 5: power vs frame format at 400 MHz
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    """Fig. 5 data: frame-average power per (level, channel count).

    ``reported_power_mw`` follows the paper's convention: zero for
    configurations that miss the real-time requirement.
    """

    fig4: Fig4Result

    @property
    def levels(self) -> Tuple[H264Level, ...]:
        """Levels on the x axis."""
        return self.fig4.levels

    @property
    def channel_counts(self) -> Tuple[int, ...]:
        """Bar groups."""
        return self.fig4.channel_counts

    @property
    def failures(self) -> Tuple[JobFailure, ...]:
        """Failed sweep points (graceful degradation)."""
        return self.fig4.failures

    def point(self, level_name: str, channels: int) -> SweepPoint:
        """One bar's underlying sweep point."""
        return self.fig4.points[level_name][channels]

    def as_records(self) -> List[Dict[str, object]]:
        """Flat per-point records: ``level``, ``channels``,
        ``power_mw`` (the bar height: 0 when real time is missed),
        ``raw_power_mw``, ``interface_mw``, ``verdict``.  Failed cells
        are omitted.  Shared by the CSV exporter and the golden
        store."""
        records: List[Dict[str, object]] = []
        for level in self.levels:
            for channels in self.channel_counts:
                point = self.fig4.points.get(level.name, {}).get(channels)
                if point is None:
                    continue
                records.append(
                    {
                        "level": level.name,
                        "channels": channels,
                        "power_mw": point.reported_power_mw,
                        "raw_power_mw": point.total_power_mw,
                        "interface_mw": point.power.interface_power_w * 1e3,
                        "verdict": str(point.verdict),
                    }
                )
        return records

    def format(self) -> str:
        """ASCII rendition with total and interface power per bar."""
        header = ["Frame format"] + [
            f"{m} ch [mW]" for m in self.channel_counts
        ]
        rows: List[List[str]] = [header]
        for level in self.levels:
            row = [level.column_title]
            for m in self.channel_counts:
                point = self.fig4.points.get(level.name, {}).get(m)
                if point is None:
                    row.append(FAILED_CELL)
                    continue
                if point.verdict is RealTimeVerdict.FAIL:
                    row.append("0 !")
                else:
                    cell = (
                        f"{point.total_power_mw:.0f}"
                        f" (if {point.power.interface_power_w * 1e3:.1f})"
                    )
                    if point.verdict is RealTimeVerdict.MARGINAL:
                        cell += " ~"
                    row.append(cell)
            rows.append(row)
        legend = (
            f"clock {self.fig4.freq_mhz:g} MHz; 0 = misses real time "
            "(paper: zero bars); (if x.x) = equation-(1) interface share; "
            "~ = MARGINAL"
        )
        out = format_table(rows) + "\n" + legend
        if self.failures:
            out += "\n" + _failure_legend(self.failures)
        return out


def run_fig5(
    levels: Sequence[H264Level] = PAPER_LEVELS,
    channel_counts: Sequence[int] = PAPER_CHANNEL_COUNTS,
    freq_mhz: float = 400.0,
    base_config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
    chunk_budget: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    strict: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    point_timeout: Optional[float] = None,
    durable_checkpoint: bool = False,
    cache: Optional[Union[str, Path]] = None,
    workload: WorkloadLike = None,
) -> Fig5Result:
    """Regenerate Fig. 5.  Shares Fig. 4's sweep (the paper derives
    both from the same simulations) -- including its checkpoint file,
    so a resumed Fig. 5 reuses a Fig. 4 run's completed points."""
    return Fig5Result(
        fig4=run_fig4(
            levels=levels,
            channel_counts=channel_counts,
            freq_mhz=freq_mhz,
            base_config=base_config,
            scale=scale,
            chunk_budget=chunk_budget,
            workers=workers,
            checkpoint=checkpoint,
            strict=strict,
            telemetry=telemetry,
            progress=progress,
            backend=backend,
            checkpoint_force=checkpoint_force,
            point_timeout=point_timeout,
            durable_checkpoint=durable_checkpoint,
            cache=cache,
            workload=workload,
        )
    )


# ---------------------------------------------------------------------------
# XDR comparison (Section IV / V)
# ---------------------------------------------------------------------------


@dataclass
class XdrComparisonResult:
    """The 8-channel vs Cell BE XDR comparison."""

    reference: XdrReference
    peak_bandwidth_bytes_per_s: float
    #: level name -> (power_mw, ratio to XDR power), feasible levels only.
    per_level: Dict[str, Tuple[float, float]]

    @property
    def power_ratio_range(self) -> Tuple[float, float]:
        """(min, max) fraction of the XDR power across formats --
        the paper quotes 4 % to 25 %."""
        if not self.per_level:
            raise ConfigurationError("no feasible level to compare")
        ratios = [ratio for _, ratio in self.per_level.values()]
        return min(ratios), max(ratios)

    def format(self) -> str:
        """ASCII rendition of the comparison."""
        rows: List[List[str]] = [["Format", "Power [mW]", "% of XDR 5 W"]]
        for name, (power_mw, ratio) in self.per_level.items():
            rows.append([name, f"{power_mw:.0f}", f"{ratio * 100:.0f} %"])
        if not self.per_level:
            return format_table(rows) + "\nno feasible level to compare"
        lo, hi = self.power_ratio_range
        legend = (
            f"8-channel peak bandwidth "
            f"{self.peak_bandwidth_bytes_per_s / 1e9:.1f} GB/s vs "
            f"{self.reference.name} {self.reference.bandwidth_bytes_per_s / 1e9:.1f} "
            f"GB/s at {self.reference.power_w:g} W; power ratio "
            f"{lo * 100:.0f} %-{hi * 100:.0f} % (paper: 4 %-25 %)"
        )
        return format_table(rows) + "\n" + legend


def run_xdr_comparison(
    fig5: Optional[Fig5Result] = None,
    channels: int = 8,
    freq_mhz: float = 400.0,
    reference: XdrReference = XDR_CELL_BE,
    base_config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
    chunk_budget: Optional[int] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    strict: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    point_timeout: Optional[float] = None,
    durable_checkpoint: bool = False,
    cache: Optional[Union[str, Path]] = None,
    workload: WorkloadLike = None,
) -> XdrComparisonResult:
    """Compare the 8-channel configuration's power against the XDR
    reference across the encoding formats (Section IV).

    Failed sweep points (graceful degradation) are omitted from the
    comparison, exactly as infeasible levels are."""
    if fig5 is None:
        fig5 = run_fig5(
            channel_counts=(channels,),
            freq_mhz=freq_mhz,
            base_config=base_config,
            scale=scale,
            chunk_budget=chunk_budget,
            workers=workers,
            checkpoint=checkpoint,
            strict=strict,
            telemetry=telemetry,
            progress=progress,
            backend=backend,
            checkpoint_force=checkpoint_force,
            point_timeout=point_timeout,
            durable_checkpoint=durable_checkpoint,
            cache=cache,
            workload=workload,
        )
    config = SystemConfig(channels=channels, freq_mhz=freq_mhz)
    per_level: Dict[str, Tuple[float, float]] = {}
    for level in fig5.levels:
        point = fig5.fig4.points.get(level.name, {}).get(channels)
        if point is None or point.verdict is RealTimeVerdict.FAIL:
            continue
        power_w = point.power.total_power_w
        per_level[level.column_title] = (
            power_w * 1e3,
            reference.power_ratio(power_w),
        )
    return XdrComparisonResult(
        reference=reference,
        peak_bandwidth_bytes_per_s=config.peak_bandwidth_bytes_per_s,
        per_level=per_level,
    )
