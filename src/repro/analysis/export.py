"""CSV export of experiment results.

Every figure runner's data can be written as a flat CSV so downstream
tooling (spreadsheets, plotting scripts) can regenerate the paper's
plots without importing this package.  Columns are stable and
documented per artifact.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    Fig5Result,
    XdrComparisonResult,
)
from repro.errors import ConfigurationError
from repro.usecase.bandwidth import BandwidthTable

PathLike = Union[str, Path]


def _write_rows(path: PathLike, header: List[str], rows: List[List]) -> int:
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return len(rows)


def export_table1(table: BandwidthTable, path: PathLike) -> int:
    """Table I as CSV: stage, then one Mb/frame column per level, with
    the totals appended as extra rows.  Returns the data-row count."""
    rows = table.as_rows()
    return _write_rows(path, rows[0], rows[1:])


def export_fig3(result: Fig3Result, path: PathLike) -> int:
    """Fig. 3 as CSV: freq_mhz, channels, access_ms, verdict."""
    rows = [
        [r["freq_mhz"], r["channels"], round(r["access_ms"], 4), r["verdict"]]
        for r in result.as_records()
    ]
    return _write_rows(path, ["freq_mhz", "channels", "access_ms", "verdict"], rows)


def export_fig4(result: Fig4Result, path: PathLike) -> int:
    """Fig. 4 as CSV: level, format, fps, channels, access_ms, verdict."""
    rows = [
        [
            r["level"],
            r["format"],
            r["fps"],
            r["channels"],
            round(r["access_ms"], 4),
            r["verdict"],
        ]
        for r in result.as_records()
    ]
    return _write_rows(
        path,
        ["level", "format", "fps", "channels", "access_ms", "verdict"],
        rows,
    )


def export_fig5(result: Fig5Result, path: PathLike) -> int:
    """Fig. 5 as CSV: level, channels, power_mw (0 when infeasible, the
    paper's bar convention), raw_power_mw, interface_mw, verdict."""
    rows = [
        [
            r["level"],
            r["channels"],
            round(r["power_mw"], 3),
            round(r["raw_power_mw"], 3),
            round(r["interface_mw"], 4),
            r["verdict"],
        ]
        for r in result.as_records()
    ]
    return _write_rows(
        path,
        ["level", "channels", "power_mw", "raw_power_mw", "interface_mw", "verdict"],
        rows,
    )


def export_xdr(result: XdrComparisonResult, path: PathLike) -> int:
    """XDR comparison as CSV: format, power_mw, ratio_to_xdr."""
    rows = [
        [name, round(power_mw, 2), round(ratio, 5)]
        for name, (power_mw, ratio) in result.per_level.items()
    ]
    if not rows:
        raise ConfigurationError("no feasible levels to export")
    return _write_rows(path, ["format", "power_mw", "ratio_to_xdr"], rows)
