"""Analysis harness: experiment runners for every paper table/figure.

- :mod:`repro.analysis.realtime` -- real-time requirement verdicts,
- :mod:`repro.analysis.tables` -- plain-text table/series formatting,
- :mod:`repro.analysis.sweep` -- configuration sweep machinery,
- :mod:`repro.analysis.experiments` -- Table I/II, Fig. 3/4/5 and XDR
  experiment runners.
"""

from repro.analysis.realtime import RealTimeVerdict, realtime_verdict
from repro.analysis.tables import format_table, format_kv
from repro.analysis.sweep import SweepPoint, simulate_use_case, sweep_use_case
from repro.analysis.breakdown import StageBreakdown, StageCost, stage_breakdown
from repro.analysis.explorer import (
    EnergyStrategyComparison,
    compare_energy_strategies,
    conclusions_summary,
    find_minimum_power_configuration,
    minimum_channels,
)
from repro.analysis.export import (
    export_fig3,
    export_fig4,
    export_fig5,
    export_table1,
    export_xdr,
)
from repro.analysis.charts import fig3_chart, fig4_chart, fig5_chart, hbar_chart
from repro.analysis.steadystate import GopAnalysis, analyze_gop
from repro.analysis.reportgen import AnchorCheck, generate_report, write_report
from repro.analysis.validate import (
    ValidationCheck,
    ValidationSummary,
    validate_configuration,
)
from repro.analysis.sensitivity import (
    SensitivityResult,
    check_boundary_pattern,
    sweep_block_bytes,
    sweep_interconnect_overhead,
    sweep_queue_depth,
    sweep_reference_frames,
)
from repro.analysis.experiments import (
    run_table1,
    run_table2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_xdr_comparison,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    XdrComparisonResult,
)

__all__ = [
    "RealTimeVerdict",
    "realtime_verdict",
    "StageBreakdown",
    "StageCost",
    "stage_breakdown",
    "EnergyStrategyComparison",
    "compare_energy_strategies",
    "conclusions_summary",
    "find_minimum_power_configuration",
    "minimum_channels",
    "export_fig3",
    "export_fig4",
    "export_fig5",
    "export_table1",
    "export_xdr",
    "fig3_chart",
    "fig4_chart",
    "fig5_chart",
    "hbar_chart",
    "GopAnalysis",
    "analyze_gop",
    "AnchorCheck",
    "generate_report",
    "write_report",
    "ValidationCheck",
    "ValidationSummary",
    "validate_configuration",
    "SensitivityResult",
    "check_boundary_pattern",
    "sweep_block_bytes",
    "sweep_interconnect_overhead",
    "sweep_queue_depth",
    "sweep_reference_frames",
    "format_table",
    "format_kv",
    "SweepPoint",
    "simulate_use_case",
    "sweep_use_case",
    "run_table1",
    "run_table2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_xdr_comparison",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "XdrComparisonResult",
]
