"""Terminal chart rendering for the paper's figures.

The tables are the ground truth; these charts make the *shapes* of
Figs. 3-5 visible in a terminal without any plotting dependency:
horizontal bar charts with a reference line (the real-time
requirement) and grouped bars per frame format (the Fig. 4/5 layout).
Pure string manipulation, fully unit-tested.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Characters used for bars and markers.
BAR_CHAR = "#"
ZERO_MARK = "(zero: misses real time)"
LINE_CHAR = "|"


def hbar_chart(
    entries: Sequence[Tuple[str, float]],
    width: int = 50,
    reference: Optional[Tuple[str, float]] = None,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars.

    ``entries`` are (label, value) pairs; a ``reference`` (label,
    value) draws a vertical marker at that value in every row -- used
    for the 33 ms / 16.7 ms real-time lines.  Zero-valued bars render
    the Fig. 5 zero-bar annotation instead of an empty bar.
    """
    if not entries:
        raise ConfigurationError("chart needs at least one entry")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    values = [v for _, v in entries]
    if any(v < 0 for v in values):
        raise ConfigurationError("bar values must be non-negative")
    top = max(values + ([reference[1]] if reference else []))
    if top <= 0:
        top = 1.0
    label_w = max(len(label) for label, _ in entries)
    scale = (width - 1) / top

    ref_col = None
    lines: List[str] = []
    if reference is not None:
        ref_col = min(width - 1, int(round(reference[1] * scale)))

    for label, value in entries:
        if value == 0:
            bar = ZERO_MARK
        else:
            n = max(1, int(round(value * scale)))
            cells = [BAR_CHAR] * n + [" "] * (width - n)
            if ref_col is not None and ref_col < len(cells):
                cells[ref_col] = LINE_CHAR
            bar = "".join(cells).rstrip()
        lines.append(
            f"{label.ljust(label_w)}  {value:8.1f}{unit}  {bar}"
        )
    if reference is not None:
        # The caret must sit under the ``|`` marker, so the footer
        # prefix mirrors the bar rows' full prefix -- label, gap,
        # 8-column value, *unit*, gap -- before the ref_col offset.
        prefix_w = label_w + 2 + 8 + len(unit) + 2
        lines.append(
            " " * (prefix_w + ref_col)
            + f"^ {reference[0]} = {reference[1]:g}{unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 50,
    reference_per_group: Optional[Mapping[str, float]] = None,
    unit: str = "",
) -> str:
    """Render groups of bars (the Fig. 4/5 layout).

    ``groups`` maps a group title (frame format) to its (series label
    -> value) bars; ``reference_per_group`` optionally supplies each
    group's real-time line.
    """
    if not groups:
        raise ConfigurationError("need at least one group")
    sections: List[str] = []
    for title, bars in groups.items():
        if not bars:
            raise ConfigurationError(f"group {title!r} has no bars")
        reference = None
        if reference_per_group and title in reference_per_group:
            reference = ("real-time", reference_per_group[title])
        sections.append(title)
        sections.append(
            hbar_chart(list(bars.items()), width=width, reference=reference,
                       unit=unit)
        )
        sections.append("")
    return "\n".join(sections).rstrip()


def fig3_chart(fig3, width: int = 50) -> str:
    """Fig. 3 as grouped bars: one group per clock frequency."""
    groups: Dict[str, Dict[str, float]] = {}
    refs: Dict[str, float] = {}
    for freq in fig3.frequencies_mhz:
        title = f"{freq:g} MHz"
        groups[title] = {
            f"{m} ch": fig3.access_ms[freq][m] for m in fig3.channel_counts
        }
        refs[title] = fig3.realtime_requirement_ms
    return grouped_bars(groups, width=width, reference_per_group=refs, unit=" ms")


def fig4_chart(fig4, width: int = 50) -> str:
    """Fig. 4 as grouped bars: one group per frame format."""
    groups: Dict[str, Dict[str, float]] = {}
    refs: Dict[str, float] = {}
    for level in fig4.levels:
        title = level.column_title
        groups[title] = {
            f"{m} ch": fig4.points[level.name][m].access_time_ms
            for m in fig4.channel_counts
        }
        refs[title] = level.frame_period_ms
    return grouped_bars(groups, width=width, reference_per_group=refs, unit=" ms")


def fig5_chart(fig5, width: int = 50) -> str:
    """Fig. 5 as grouped bars, with the zero-bar convention."""
    groups: Dict[str, Dict[str, float]] = {}
    for level in fig5.levels:
        groups[level.column_title] = {
            f"{m} ch": fig5.point(level.name, m).reported_power_mw
            for m in fig5.channel_counts
        }
    return grouped_bars(groups, width=width, unit=" mW")
