"""Steady-state GOP analysis: per-frame variation over a recording.

The paper sizes the memory for the steady-state inter-coded (P) frame
— correctly, since P frames dominate both the schedule and the memory
load.  A real H.264 stream, though, is a **group of pictures**: every
``gop_length`` frames an intra-coded (I) frame resets the prediction
chain, and I frames read *no* reference frames, so their memory load
is far lighter.  This module quantifies the resulting per-frame
profile:

- worst-frame access time (what real-time sizing must cover — and it
  is the P frame, confirming the paper's methodology),
- the I-frame "breather" and the headroom it returns,
- sustained average power over a whole GOP (slightly below the
  paper's per-P-frame Fig. 5 number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.realtime import RealTimeVerdict, realtime_verdict
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, choose_scale
from repro.power.report import compute_frame_power
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import WorkloadLike, resolve_workload


@dataclass(frozen=True)
class GopAnalysis:
    """Per-frame behaviour of one GOP on one configuration."""

    level: H264Level
    config: SystemConfig
    gop_length: int
    #: Access time of an I frame / a P frame, ms.
    i_frame_ms: float
    p_frame_ms: float
    #: Frame-average power of each frame kind, mW.
    i_frame_power_mw: float
    p_frame_power_mw: float

    @property
    def frame_pattern_ms(self) -> List[float]:
        """Per-frame access times over one GOP (I then P...)."""
        return [self.i_frame_ms] + [self.p_frame_ms] * (self.gop_length - 1)

    @property
    def worst_frame_ms(self) -> float:
        """The frame real-time sizing must cover."""
        return max(self.i_frame_ms, self.p_frame_ms)

    @property
    def worst_frame_verdict(self) -> RealTimeVerdict:
        """Feasibility of the worst frame."""
        return realtime_verdict(self.worst_frame_ms, self.level.frame_period_ms)

    @property
    def i_frame_headroom(self) -> float:
        """Fraction of the P-frame time the I frame gives back."""
        if self.p_frame_ms <= 0:
            return 0.0
        return 1.0 - self.i_frame_ms / self.p_frame_ms

    @property
    def sustained_power_mw(self) -> float:
        """GOP-average power: one I frame, gop_length-1 P frames."""
        return (
            self.i_frame_power_mw + (self.gop_length - 1) * self.p_frame_power_mw
        ) / self.gop_length

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.level.column_title} on {self.config.channels}ch: "
            f"I {self.i_frame_ms:.1f} ms / P {self.p_frame_ms:.1f} ms "
            f"(headroom {self.i_frame_headroom * 100:.0f} %), GOP power "
            f"{self.sustained_power_mw:.0f} mW, worst-frame "
            f"{self.worst_frame_verdict}"
        )


def analyze_gop(
    level: H264Level,
    config: SystemConfig,
    gop_length: Optional[int] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workload: WorkloadLike = None,
) -> GopAnalysis:
    """Simulate one I frame and one P frame of ``workload`` at
    ``level`` on ``config`` and assemble the GOP profile.

    ``workload`` selects the declarative pipeline (``None`` = the
    paper's ``h264_camcorder``).  The spec's
    :class:`~repro.workloads.spec.GopSpec` supplies the default GOP
    length and names the parameter that flips the intra-coded variant;
    a workload with no ``intra_param`` (e.g. ``vdcm_display``) has no
    I/P distinction, so both frame kinds simulate identically and the
    profile is flat.
    """
    bound = resolve_workload(workload)
    if gop_length is None:
        gop_length = max(2, bound.spec.gop.length)
    if gop_length < 2:
        raise ConfigurationError(f"gop_length must be >= 2, got {gop_length}")

    results = {}
    for kind, intra in (("I", True), ("P", False)):
        use_case = bound.intra_variant(intra).instantiate(level)
        load = VideoRecordingLoadModel(use_case)
        scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
        result = MultiChannelMemorySystem(config).run(
            load.generate_frame(scale=scale), scale=scale
        )
        power = compute_frame_power(config, result, level.frame_period_ms)
        results[kind] = (result.access_time_ms, power.total_power_mw)

    return GopAnalysis(
        level=level,
        config=config,
        gop_length=gop_length,
        i_frame_ms=results["I"][0],
        p_frame_ms=results["P"][0],
        i_frame_power_mw=results["I"][1],
        p_frame_power_mw=results["P"][1],
    )
