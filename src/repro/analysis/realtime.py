"""Real-time requirement verdicts.

The paper's feasibility language has three levels:

- a configuration **fails** when the frame's memory access time
  exceeds the frame period outright (Fig. 3: 200 and 266 MHz
  single-channel are "clearly over the real-time requirement");
- it is **marginal** when it meets the raw requirement but cannot
  leave the 15 % data-processing margin the paper demands ("the memory
  access time cannot in reality be driven too close to real-time
  requirements ... some margin is needed also for data processing";
  Fig. 3 marks 333 MHz single-channel MARGINAL);
- it **passes** when it meets the requirement with the margin intact.

Fig. 5 draws failing configurations as zero-height bars and annotates
marginal ones.
"""

from __future__ import annotations

import enum
import math
import sys

from repro.errors import ConfigurationError

#: The paper's data-processing margin: 15 % of the frame period.
PAPER_MARGIN = 0.15

#: Relative width of the boundary snap: an access time within a few
#: ulps of a verdict threshold classifies as exactly *at* it.  Backends
#: that agree to within float rounding noise (the fast/batch engines
#: reassociate sums the reference engine accumulates serially) must
#: agree on the verdict too -- without the snap, an access time one ulp
#: past the frame period flips feasible into FAIL.
BOUNDARY_REL_TOL = 4.0 * sys.float_info.epsilon


def _beyond(value: float, threshold: float) -> bool:
    """Strictly past ``threshold``, outside the boundary snap."""
    return value > threshold and not math.isclose(
        value, threshold, rel_tol=BOUNDARY_REL_TOL
    )


class RealTimeVerdict(enum.Enum):
    """Feasibility of a configuration against a frame-rate target."""

    PASS = "pass"
    MARGINAL = "marginal"
    FAIL = "fail"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value.upper()

    @property
    def feasible(self) -> bool:
        """Whether the raw real-time requirement is met at all."""
        return self is not RealTimeVerdict.FAIL


def realtime_verdict(
    access_time_ms: float,
    frame_period_ms: float,
    margin: float = PAPER_MARGIN,
) -> RealTimeVerdict:
    """Classify an access time against a frame period.

    >>> realtime_verdict(20.0, 33.3)
    <RealTimeVerdict.PASS: 'pass'>
    >>> realtime_verdict(30.0, 33.3)
    <RealTimeVerdict.MARGINAL: 'marginal'>
    >>> realtime_verdict(40.0, 33.3)
    <RealTimeVerdict.FAIL: 'fail'>
    """
    # Finiteness first: a NaN access time compares False against every
    # threshold below, which would fall through to PASS -- the one
    # verdict a corrupted measurement must never earn.
    if not math.isfinite(access_time_ms):
        raise ConfigurationError(
            f"access time must be finite, got {access_time_ms}"
        )
    if access_time_ms < 0:
        raise ConfigurationError(
            f"access time must be >= 0, got {access_time_ms}"
        )
    if not math.isfinite(frame_period_ms):
        raise ConfigurationError(
            f"frame period must be finite, got {frame_period_ms}"
        )
    if frame_period_ms <= 0:
        raise ConfigurationError(
            f"frame period must be positive, got {frame_period_ms}"
        )
    if not 0.0 <= margin < 1.0:
        raise ConfigurationError(f"margin must be in [0, 1), got {margin}")
    # Boundary classification uses the snapped comparison: an access
    # time exactly at (or within BOUNDARY_REL_TOL of) a threshold gets
    # the verdict of the threshold's feasible side, deterministically,
    # on every backend.  In particular ``access == frame_period`` is
    # always feasible, and with ``margin=0`` it is a PASS.
    if _beyond(access_time_ms, frame_period_ms):
        return RealTimeVerdict.FAIL
    if _beyond(access_time_ms, frame_period_ms * (1.0 - margin)):
        return RealTimeVerdict.MARGINAL
    return RealTimeVerdict.PASS
