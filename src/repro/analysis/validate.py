"""One-call validation harness: run every cross-check at once.

The repository has three independent correctness oracles for the
timing engine — the protocol checker, the static locality analyzer and
the closed-form analytic model — plus byte-conservation between the
use case and the generated traffic.  This module runs all of them for
a given (workload, configuration) pair and returns a single summary, so
users extending the models (new devices, new policies, new workloads)
can re-verify the whole stack with one call:

    from repro.analysis.validate import validate_configuration
    summary = validate_configuration(level_by_name("4"), SystemConfig(channels=4))
    assert summary.all_passed, summary.failures()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.controller.request import MasterTransaction
from repro.core.analytic import AnalyticModel
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.locality import predict_locality
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase


@dataclass(frozen=True)
class ValidationCheck:
    """One cross-check's outcome."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ValidationSummary:
    """All cross-checks for one (workload, configuration) pair."""

    config_description: str
    checks: Tuple[ValidationCheck, ...]

    @property
    def all_passed(self) -> bool:
        """Whether every oracle agreed."""
        return all(c.passed for c in self.checks)

    def failures(self) -> List[str]:
        """Human-readable failures."""
        return [f"{c.name}: {c.detail}" for c in self.checks if not c.passed]

    def format(self) -> str:
        """One line per check."""
        lines = [self.config_description]
        for c in self.checks:
            lines.append(f"  [{'ok' if c.passed else 'FAIL'}] {c.name}: {c.detail}")
        return "\n".join(lines)


def check_traffic_oracles(
    transactions: Sequence[MasterTransaction],
    config: SystemConfig,
    scale: float = 1.0,
    analytic_tolerance: Optional[float] = 0.15,
    include_locality: bool = True,
) -> List[ValidationCheck]:
    """Run the traffic-independent oracles on an arbitrary stream.

    The reusable core of :func:`validate_configuration`, shared with
    the metamorphic invariant checks of
    :mod:`repro.regression.invariants`, which fuzz streams that have no
    use-case level attached:

    1. **protocol audit** — every channel's command stream honours the
       device protocol;
    2. **locality agreement** — the engine's activate count brackets
       the static prediction (equal up to refresh-induced re-opens);
    3. **analytic agreement** — the closed-form access time tracks the
       simulation within ``analytic_tolerance`` (skipped when the
       tolerance is ``None``: the closed form only documents fidelity
       for streaming workloads, so callers feeding it worst-case random
       traffic opt out explicitly rather than assert a bound the model
       never promised).

    ``include_locality=False`` skips check 2's activate-count oracle:
    the static locality analyzer assumes the open page policy (it
    predicts row *re-opens*, and under closed page every access
    re-opens its row by construction), so closed-page callers must opt
    out.
    """
    checks: List[ValidationCheck] = []

    system = MultiChannelMemorySystem(config)
    logs: List[list] = []
    result = system.run(transactions, scale=scale, command_logs=logs)
    problems = system.audit(logs)
    checks.append(
        ValidationCheck(
            "protocol audit",
            not problems,
            f"{sum(len(l) for l in logs)} commands, "
            f"{len(problems)} violations",
        )
    )

    if include_locality:
        pred = predict_locality(
            transactions,
            config.channels,
            config.device.geometry,
            config.multiplexing,
        )
        counters = result.merged_counters()
        slack = counters.refreshes * config.device.geometry.banks * 2
        locality_ok = (
            pred.total_activates
            <= counters.activates
            <= pred.total_activates + slack
        )
        checks.append(
            ValidationCheck(
                "locality agreement",
                locality_ok,
                f"predicted {pred.total_activates} activates, engine "
                f"{counters.activates} (refresh slack {slack})",
            )
        )

    if analytic_tolerance is not None:
        if analytic_tolerance <= 0:
            raise ConfigurationError("analytic_tolerance must be positive")
        summary = VideoRecordingLoadModel.summarize(list(transactions))
        estimate = AnalyticModel(config).estimate(
            summary.total_bytes,
            rw_switches=summary.rw_switches,
            read_fraction=summary.read_fraction,
        )
        rel = abs(estimate.access_time_ns - result.sample_access_time_ns) / (
            result.sample_access_time_ns
        )
        checks.append(
            ValidationCheck(
                "analytic agreement",
                rel < analytic_tolerance,
                f"analytic {estimate.access_time_ns / 1e6:.3f} ms vs simulated "
                f"{result.sample_access_time_ns / 1e6:.3f} ms "
                f"({rel * 100:.1f} % off)",
            )
        )

    return checks


def validate_configuration(
    level: H264Level,
    config: SystemConfig,
    chunk_budget: int = 60_000,
    analytic_tolerance: float = 0.15,
) -> ValidationSummary:
    """Run every oracle against one use-case simulation.

    Checks:

    1. **byte conservation** — the generated traffic carries the
       Table I per-frame bytes (within granule rounding);
    2. **protocol audit** — every channel's command stream honours
       the device protocol;
    3. **locality agreement** — the engine's activate count brackets
       the static prediction (equal up to refresh-induced re-opens);
    4. **analytic agreement** — the closed-form access time tracks the
       simulation within ``analytic_tolerance``.
    """
    if analytic_tolerance <= 0:
        raise ConfigurationError("analytic_tolerance must be positive")
    use_case = VideoRecordingUseCase(level)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
    txns = load.generate_frame(scale=scale)
    summary = load.summarize(txns)

    checks: List[ValidationCheck] = []

    # 1. byte conservation
    expected = use_case.total_bytes_per_frame() * scale
    delta = abs(summary.total_bytes - expected) / expected
    checks.append(
        ValidationCheck(
            "byte conservation",
            delta < 0.005,
            f"traffic {summary.total_bytes} B vs model {expected:.0f} B "
            f"({delta * 100:.2f} % off)",
        )
    )

    # 2-4. protocol audit, locality agreement, analytic agreement
    checks.extend(
        check_traffic_oracles(
            txns, config, scale=scale, analytic_tolerance=analytic_tolerance
        )
    )

    return ValidationSummary(
        config_description=f"{level.column_title} on {config.describe()}",
        checks=tuple(checks),
    )
