"""Per-stage breakdown of the use case's memory cost.

Table I breaks the *traffic* down by stage; this module breaks the
*simulated access time and energy* down the same way, answering "which
stage actually consumes the memory system" for a given configuration.
Each stage's transactions are replayed in isolation on a fresh system,
so the attribution is exact per stage at the cost of slightly
pessimistic totals (each stage starts with cold row buffers); the
residual versus the combined run is reported so the approximation is
visible rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.dram.power import PowerModel
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, choose_scale
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import WorkloadLike, resolve_workload


@dataclass(frozen=True)
class StageCost:
    """Simulated cost of one pipeline stage's memory traffic."""

    stage: str
    category: str
    bytes_moved: float
    access_time_ms: float
    energy_mj: float

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Bandwidth the stage's stream achieved, GB/s."""
        if self.access_time_ms <= 0:
            return 0.0
        return self.bytes_moved / (self.access_time_ms * 1e-3) / 1e9


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage costs plus the combined-run reference."""

    level: H264Level
    config: SystemConfig
    stages: Tuple[StageCost, ...]
    #: Access time of the whole frame simulated in one piece, ms.
    combined_access_ms: float

    @property
    def stage_sum_ms(self) -> float:
        """Sum of isolated stage times (>= combined: cold buffers)."""
        return sum(s.access_time_ms for s in self.stages)

    @property
    def isolation_overhead(self) -> float:
        """Relative pessimism of the isolated attribution."""
        if self.combined_access_ms <= 0:
            return 0.0
        return self.stage_sum_ms / self.combined_access_ms - 1.0

    def dominant_stage(self) -> StageCost:
        """The stage consuming the most access time."""
        return max(self.stages, key=lambda s: s.access_time_ms)

    def format(self) -> str:
        """ASCII table of the breakdown."""
        rows: List[List[str]] = [
            ["Stage", "MB", "Time [ms]", "Share", "Energy [mJ]"]
        ]
        for s in self.stages:
            rows.append(
                [
                    s.stage,
                    f"{s.bytes_moved / 1e6:.1f}",
                    f"{s.access_time_ms:.2f}",
                    f"{s.access_time_ms / self.stage_sum_ms * 100:.1f} %",
                    f"{s.energy_mj:.2f}",
                ]
            )
        rows.append(
            [
                "combined frame",
                f"{sum(s.bytes_moved for s in self.stages) / 1e6:.1f}",
                f"{self.combined_access_ms:.2f}",
                "",
                "",
            ]
        )
        return format_table(rows)


def stage_breakdown(
    level: H264Level,
    config: SystemConfig,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workload: WorkloadLike = None,
) -> StageBreakdown:
    """Attribute access time and energy to each pipeline stage.

    ``workload`` selects the declarative pipeline to break down
    (``None`` = the paper's ``h264_camcorder``); any registered zoo
    spec's stages are attributed the same way.
    """
    use_case = resolve_workload(workload).instantiate(level)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
    model = PowerModel(config.device, config.freq_mhz)

    # Combined reference run.
    combined = MultiChannelMemorySystem(config).run(
        load.generate_frame(scale=scale), scale=scale
    )

    # Isolated per-stage runs (the cursors reset per generate call, so
    # regenerate the frame and slice by stage via a fresh load model).
    stage_costs: List[StageCost] = []
    for stage in use_case.stages():
        stage_load = VideoRecordingLoadModel(use_case, block_bytes=load.block_bytes)
        txns = list(stage_load._stage_transactions(stage, scale))
        if not txns:
            continue
        system = MultiChannelMemorySystem(config)
        result = system.run(txns, scale=scale)
        energy_j = sum(
            model.energy(ch.counters, ch.states).total_j for ch in result.channels
        ) / scale
        stage_costs.append(
            StageCost(
                stage=stage.name,
                category=stage.category,
                bytes_moved=result.total_bytes,
                access_time_ms=result.access_time_ms,
                energy_mj=energy_j * 1e3,
            )
        )
    if not stage_costs:
        raise ConfigurationError("use case produced no traffic")
    return StageBreakdown(
        level=level,
        config=config,
        stages=tuple(stage_costs),
        combined_access_ms=combined.access_time_ms,
    )
