"""Configuration-sweep machinery shared by the experiments.

The central primitive is :func:`simulate_use_case`: build the load
model for an H.264 level, pick a simulation scale, run the
multi-channel system and assemble the frame-power report.  The Fig. 3,
4 and 5 runners are thin sweeps over it.

Sweep points are embarrassingly parallel -- every (configuration,
level) pair is an independent simulation -- so :func:`sweep_use_case`
accepts a ``workers`` count and fans whole points out across worker
processes via :mod:`repro.parallel`.  Results are returned in the same
order and with the same bit-identical values as a sequential sweep.

Fault tolerance (see :mod:`repro.resilience`):

- ``checkpoint=`` names a JSON-lines file; completed points are
  appended as they finish and skipped on re-run, so an interrupted
  sweep resumes with only the missing work -- bit-identically, because
  the checkpoint stores the full pickled points.
- ``strict=True`` (the default) keeps fail-fast semantics, but wraps
  worker exceptions in :class:`~repro.errors.WorkerError` carrying the
  sweep coordinates and worker-side traceback.  ``strict=False``
  degrades gracefully: every healthy point completes and the returned
  :class:`~repro.resilience.report.SweepReport` carries the failures
  alongside the results.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.realtime import RealTimeVerdict, realtime_verdict
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.system import MultiChannelMemorySystem
from repro.errors import CheckpointError, ConfigurationError, WorkerError
from repro.load.model import DEFAULT_BLOCK_BYTES, VideoRecordingLoadModel
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, choose_scale
from repro.parallel import parallel_map, resolve_workers
from repro.power.report import FramePowerReport, compute_frame_power
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import maybe_inject
from repro.resilience.report import JobFailure, SweepReport
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import Watchdog
from repro.service.cache import CacheWarning, ResultCache, resolve_cache
from repro.telemetry.profile import NULL_PROFILER
from repro.telemetry.progress import ProgressSink, SweepProgress
from repro.telemetry.session import Telemetry
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import WorkloadLike, resolve_workload
from repro.workloads.spec import BoundWorkload


@dataclass(frozen=True)
class SweepPoint:
    """One simulated (configuration, level) point of a sweep."""

    config: SystemConfig
    level: H264Level
    result: SimulationResult
    power: FramePowerReport
    verdict: RealTimeVerdict

    @property
    def access_time_ms(self) -> float:
        """Full-frame access time, ms."""
        return self.result.access_time_ms

    @property
    def total_power_mw(self) -> float:
        """Frame-average power, mW."""
        return self.power.total_power_mw

    @property
    def reported_power_mw(self) -> float:
        """The Fig. 5 bar height: zero when real time is missed."""
        return 0.0 if self.verdict is RealTimeVerdict.FAIL else self.total_power_mw


def simulate_use_case(
    level: H264Level,
    config: SystemConfig,
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    use_case: Optional[VideoRecordingUseCase] = None,
    telemetry: Optional[Telemetry] = None,
    workload: WorkloadLike = None,
) -> SweepPoint:
    """Simulate one frame of ``workload`` at ``level`` on ``config``.

    ``scale`` overrides the automatic fraction selection (pass 1.0 for
    an exact full-frame run).

    ``workload`` selects the declarative traffic model (a registered
    name, a :class:`~repro.workloads.spec.WorkloadSpec` or a
    :class:`~repro.workloads.spec.BoundWorkload`); ``None`` resolves to
    the default ``h264_camcorder`` spec, which is bit-identical to the
    legacy :class:`~repro.usecase.pipeline.VideoRecordingUseCase`.  An
    explicit ``use_case`` instance (the legacy hook) wins over
    ``workload``.

    A live ``telemetry`` session attributes wall-clock to the pipeline
    phases (``load.build``, ``load.scale``, ``load.generate``, the
    system's ``system.interleave`` / ``system.engine`` /
    ``system.pool`` and ``power.integrate``) and collects the
    ``engine.*`` statistics; the returned point is bit-identical with
    telemetry on, off or absent.
    """
    profiler = telemetry.profiler if telemetry is not None else NULL_PROFILER
    with profiler.phase("load.build"):
        if use_case is None:
            use_case = resolve_workload(workload).instantiate(level)
        load = VideoRecordingLoadModel(use_case, block_bytes=block_bytes)
    with profiler.phase("load.scale"):
        if scale is None:
            scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
    with profiler.phase("load.generate"):
        transactions = load.generate_frame(scale=scale)
    system = MultiChannelMemorySystem(config)
    result = system.run(transactions, scale=scale, telemetry=telemetry)
    with profiler.phase("power.integrate"):
        power = compute_frame_power(config, result, level.frame_period_ms)
        verdict = realtime_verdict(result.access_time_ms, level.frame_period_ms)
    if telemetry is not None:
        telemetry.registry.counter("sim.points").add(1)
    return SweepPoint(
        config=config, level=level, result=result, power=power, verdict=verdict
    )


#: One sweep job:
#: (index, level, config, scale, chunk_budget, block_bytes, workload).
SweepJob = Tuple[
    int, H264Level, SystemConfig, Optional[float], int, int, BoundWorkload
]


def _sweep_point_job(
    job: SweepJob, telemetry: Optional[Telemetry] = None
) -> SweepPoint:
    """Simulate one sweep point (pool worker entry point).

    Module-level so it pickles by reference; every argument and the
    returned :class:`SweepPoint` are plain dataclasses/enums, so the
    round trip through the pool is lossless.  The leading index exists
    for checkpoint bookkeeping and as the fault-injection hook the
    resilience tests target.

    ``telemetry`` is only threaded in for in-process sweeps: a pool
    worker's registry/profiler mutations would die with the worker, so
    pooled sweeps collect sweep-level metrics in the parent instead.
    """
    index, level, config, scale, chunk_budget, block_bytes, workload = job
    maybe_inject("sweep", index)
    return simulate_use_case(
        level,
        config,
        scale=scale,
        chunk_budget=chunk_budget,
        block_bytes=block_bytes,
        telemetry=telemetry,
        workload=workload,
    )


def _job_coords(job: SweepJob) -> Dict[str, object]:
    """Human-readable sweep coordinates of one job (for failure
    records and checkpoint lines)."""
    index, level, config, scale, chunk_budget, block_bytes, workload = job
    return {
        "index": index,
        "level": level.name,
        "channels": config.channels,
        "freq_mhz": config.freq_mhz,
        "backend": config.backend,
        "workload": workload.name,
    }


def _job_description(job: SweepJob) -> Dict[str, object]:
    """Canonical-key material of one job: everything that determines
    its result, nothing that does not.

    The grid ``index`` is deliberately excluded -- a point's result is
    a pure function of (level, config, scale, budget, block size), so
    the same configuration must share stored work no matter where it
    sits in which grid (the Fig. 3 and Fig. 4/5 runners, the explorer
    and ad-hoc service sweeps all hit the same entries).  The
    simulation ``backend`` is surfaced explicitly alongside the config
    (which also carries it) so the key contract -- "changing the
    backend misses" -- is visible in the payload, and the engine
    version rides in via :func:`repro.keys.canonical_key`.

    The ``workload`` identity -- registry name, fully resolved
    parameters and a digest of the spec's semantic structure
    (:meth:`~repro.workloads.spec.BoundWorkload.identity`) -- is part
    of the key, so the result cache and checkpoints can never alias
    points generated by different workloads (or by two registrations
    of the same name with different structure).
    """
    index, level, config, scale, chunk_budget, block_bytes, workload = job
    return point_description(
        level,
        config,
        scale=scale,
        chunk_budget=chunk_budget,
        block_bytes=block_bytes,
        workload=workload,
    )


def point_description(
    level: H264Level,
    config: SystemConfig,
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    workload: WorkloadLike = None,
) -> Dict[str, object]:
    """Canonical-key material of one sweep point (see
    :func:`_job_description` for the field-by-field rationale).

    Public so other layers -- the feasibility oracle probing the
    result cache, external tooling addressing entries -- can construct
    the *identical* description a sweep would, without fabricating a
    :data:`SweepJob`."""
    bound = (
        workload
        if isinstance(workload, BoundWorkload)
        else resolve_workload(workload)
    )
    return {
        "kind": "sweep-point",
        "level": level,
        "config": config,
        "backend": config.backend,
        "scale": scale,
        "chunk_budget": chunk_budget,
        "block_bytes": block_bytes,
        "workload": bound.identity(),
    }


def point_key(
    level: H264Level,
    config: SystemConfig,
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    workload: WorkloadLike = None,
) -> str:
    """Canonical content key of one sweep point -- exactly the key
    :func:`sweep_use_case` files the point under in the result cache
    and checkpoint stores."""
    return SweepCheckpoint.key_for(
        point_description(
            level,
            config,
            scale=scale,
            chunk_budget=chunk_budget,
            block_bytes=block_bytes,
            workload=workload,
        )
    )


def job_keys(jobs: Sequence[SweepJob]) -> List[str]:
    """Canonical content keys of ``jobs``, shared by the checkpoint
    store and the result cache (see :mod:`repro.keys`)."""
    return [SweepCheckpoint.key_for(_job_description(job)) for job in jobs]


def _refuse_backend_mixing(
    store: SweepCheckpoint,
    configs: Sequence[SystemConfig],
    checkpoint_force: bool,
) -> None:
    """Refuse resuming a checkpoint recorded under foreign backends."""
    sweep_backends = {config.backend for config in configs}
    foreign = store.recorded_backends() - sweep_backends
    if foreign and not checkpoint_force:
        raise CheckpointError(
            f"checkpoint {store.path} holds points recorded under "
            f"backend(s) {', '.join(sorted(foreign))}, but this sweep "
            f"uses {', '.join(sorted(sweep_backends))}; mixing backends "
            "in one checkpoint blends fidelities -- use a separate "
            "checkpoint file, or pass --force / checkpoint_force=True "
            "to proceed"
        )


def _fold_reuse(
    jobs: Sequence[SweepJob],
    keys: Sequence[str],
    store: Optional[SweepCheckpoint],
    cache: Optional["ResultCache"],
) -> Tuple[List[Optional[SweepPoint]], int, int, List[JobFailure], List[int]]:
    """Resolve every form of stored work before dispatching anything.

    Returns ``(results, resumed, cached, resumed_failures,
    pending_positions)``: checkpointed points and quarantined failures
    are restored first (and successes copied into the cache when one
    is attached, so a campaign checkpoint enriches the global store),
    then the cache is consulted for the remainder.  Cache hits are
    folded back into the checkpoint, keeping it a complete record of
    the campaign.  Only positions neither store could serve are left
    pending.
    """
    results: List[Optional[SweepPoint]] = [None] * len(jobs)
    resumed = 0
    cached = 0
    resumed_failures: List[JobFailure] = []
    covered = set()
    if store is not None:
        done = store.load()
        for position, key in enumerate(keys):
            if key not in done:
                continue
            covered.add(position)
            resumed += 1
            payload = done[key]
            if isinstance(payload, JobFailure):
                # A quarantined point from the previous run: yield the
                # recorded failure instead of re-hanging on it.
                resumed_failures.append(
                    replace(
                        payload,
                        index=position,
                        coords=_job_coords(jobs[position]),
                    )
                )
            else:
                results[position] = payload
                if cache is not None and not cache.contains(key):
                    cache.put(key, payload, _job_coords(jobs[position]))
    if cache is not None:
        for position, key in enumerate(keys):
            if position in covered:
                continue
            hit = cache.get(key)
            if hit is None:
                continue
            if not isinstance(hit, SweepPoint):
                warnings.warn(
                    CacheWarning(
                        f"cache entry {key[:12]}... holds a "
                        f"{type(hit).__name__}, not a sweep point; "
                        "recomputing"
                    ),
                    stacklevel=3,
                )
                continue
            covered.add(position)
            cached += 1
            results[position] = hit
            if store is not None:
                store.record(key, _job_coords(jobs[position]), hit)
    pending_positions = [
        position for position in range(len(jobs)) if position not in covered
    ]
    return results, resumed, cached, resumed_failures, pending_positions


def sweep_use_case(
    levels: Sequence[H264Level],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path, SweepCheckpoint]] = None,
    strict: bool = True,
    retry: Optional[RetryPolicy] = None,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    point_timeout: Optional[float] = None,
    durable_checkpoint: bool = False,
    cache: Optional[Union[str, Path, ResultCache]] = None,
    workload: WorkloadLike = None,
) -> SweepReport:
    """Cartesian sweep of levels x configurations.

    ``workload`` selects the declarative traffic model every point
    simulates (registered name, spec or bound workload; ``None`` = the
    default ``h264_camcorder``).  The workload identity is part of
    every point's canonical key, so checkpoints and the result cache
    never mix points across workloads.

    ``workers`` fans the (level, config) points out across worker
    processes (``None``/1 = in-process, 0 = one per CPU); the returned
    report is in levels-major order and bit-identical either way.

    ``backend`` overrides the simulation backend of every swept
    configuration (``None`` keeps each config's own); the selection
    travels inside the (picklable) configs, so pool workers honour it
    without extra plumbing.

    ``checkpoint`` names a JSON-lines file (or passes a prepared
    :class:`~repro.resilience.checkpoint.SweepCheckpoint`): completed
    points are recorded as they finish, and points already present are
    skipped -- an interrupted sweep re-run with the same arguments
    recomputes only the missing work.  Points are keyed by the full
    job description *including the backend*, and a checkpoint holding
    points recorded under a different backend is refused with
    :class:`~repro.errors.CheckpointError` -- silently blending e.g.
    analytic estimates into a reference sweep would corrupt the
    figures; pass ``checkpoint_force=True`` (CLI ``--force``) to mix
    deliberately.  ``durable_checkpoint=True`` fsyncs every checkpoint
    append (machine-crash durability; CLI ``--durable-checkpoint``).
    ``strict=False`` captures per-point failures in the report instead
    of raising; ``retry`` overrides the backoff schedule for transient
    pool failures.

    ``point_timeout`` puts every point under watchdog supervision
    (CLI ``--point-timeout``): a point still running after that many
    wall-clock seconds has its worker killed and is requeued, and a
    point that hangs (or takes its worker down) on every permitted
    attempt is quarantined -- an ERR cell in the figures under
    ``strict=False``, a :class:`~repro.errors.WorkerError` naming the
    point under ``strict=True``.  Quarantined failures are recorded
    into the checkpoint, so a ``--resume`` yields the failure
    immediately instead of re-hanging on the same point.  Supervision
    counters (``sweep.timeouts``, ``sweep.watchdog_kills``,
    ``sweep.quarantined``) land in ``telemetry`` when given.

    ``cache`` names a persistent content-addressed result store
    directory (or passes a prepared
    :class:`~repro.service.cache.ResultCache`; CLI ``--cache-dir``):
    before anything is dispatched, every point's canonical key --
    :func:`repro.keys.canonical_key` over the full job description
    including the backend and engine version, the same key the
    checkpoint uses -- is looked up there, and hits are served without
    simulating.  Computed points are written back atomically, so a
    warm cache replays a whole grid as pure lookups; failed or
    quarantined points are never cached.  Corrupt or torn entries
    degrade to a recompute with a
    :class:`~repro.service.cache.CacheWarning` -- a damaged cache can
    cost time, never correctness.  ``cache.hits`` / ``cache.misses`` /
    ``cache.corrupt`` / ``cache.evictions`` counters land in
    ``telemetry`` when given.

    ``progress`` receives a heartbeat per completed point (and a final
    summary) as :class:`~repro.telemetry.ProgressEvent`\\ s with
    done/total counts and an ETA, so long campaigns are observable.
    ``telemetry`` collects sweep-level metrics (``sweep.points_*``,
    the ``sweep.run`` timer, a per-point runtime histogram); for
    in-process sweeps it also reaches the per-point phase profile --
    pool workers cannot mutate the parent's registry, so pooled sweeps
    profile only the dispatch.

    The report is a drop-in :class:`~collections.abc.Sequence` of the
    successful :class:`SweepPoint`\\ s, so callers that treat the
    result as a list keep working.
    """
    if not levels or not configs:
        raise ConfigurationError("sweep needs at least one level and one config")
    if backend is not None:
        configs = [config.with_backend(backend) for config in configs]
    bound = resolve_workload(workload)
    jobs: List[SweepJob] = [
        (index, level, config, scale, chunk_budget, block_bytes, bound)
        for index, (level, config) in enumerate(
            (level, config) for level in levels for config in configs
        )
    ]

    if isinstance(checkpoint, SweepCheckpoint):
        store: Optional[SweepCheckpoint] = checkpoint
        if durable_checkpoint:
            store.fsync = True
    elif checkpoint is not None:
        store = SweepCheckpoint(checkpoint, fsync=durable_checkpoint)
    else:
        store = None
    cache_store = resolve_cache(cache)
    if store is not None:
        _refuse_backend_mixing(store, configs, checkpoint_force)
    if store is not None or cache_store is not None:
        keys = job_keys(jobs)
    else:
        keys = []
    cache_before = cache_store.stats() if cache_store is not None else {}
    results, resumed, cache_hits, resumed_failures, pending_positions = (
        _fold_reuse(jobs, keys, store, cache_store)
    )
    pending_jobs = [jobs[position] for position in pending_positions]

    if telemetry is not None:
        registry = telemetry.registry
        registry.counter("sweep.points_total").add(len(jobs))
        for name in sorted({config.backend for config in configs}):
            registry.counter(f"sweep.backend.{name}").add(1)
        registry.counter("sweep.points_resumed").add(resumed)
        # Pre-register at zero so a fully resumed sweep still exports
        # the counter (a resumed campaign computed nothing, visibly).
        registry.counter("sweep.points_completed").add(0)
        if cache_store is not None:
            registry.counter("sweep.points_cached").add(cache_hits)
            # Pre-register so a fully cold (or fully warm) run still
            # exports every cache counter.
            for name in (
                "cache.hits", "cache.misses", "cache.corrupt",
                "cache.evictions",
            ):
                registry.counter(name).add(0)
    tracker = (
        SweepProgress(progress, total=len(jobs), resumed=resumed)
        if progress is not None
        else None
    )

    on_result = None
    if (
        store is not None
        or cache_store is not None
        or tracker is not None
        or telemetry is not None
    ):
        point_timer = time.monotonic
        # Placeholder: re-stamped at dispatch so the first interval
        # sample measures point throughput, not setup done between
        # closure creation and the parallel_map call.
        last_done = [point_timer()]

        def on_result(local_index: int, point: SweepPoint) -> None:
            position = pending_positions[local_index]
            if store is not None:
                store.record(keys[position], _job_coords(jobs[position]), point)
            if cache_store is not None:
                cache_store.put(
                    keys[position], point, _job_coords(jobs[position])
                )
            if telemetry is not None:
                # Wall-clock between successive completions; under a
                # pool this is the effective per-point throughput, not
                # one point's runtime.
                now = point_timer()
                telemetry.registry.counter("sweep.points_completed").add(1)
                telemetry.registry.histogram(
                    "sweep.point_interval_seconds"
                ).record(now - last_done[0])
                last_done[0] = now
            if tracker is not None:
                tracker.point_done(_job_coords(jobs[position]))

    on_failure = None
    if store is not None:

        def on_failure(local_index: int, failure: JobFailure) -> None:
            if not failure.quarantined:
                # Deterministic errors are recomputed on resume (the
                # bug might be fixed by then); only quarantines -- the
                # points that would re-hang -- are persisted.
                return
            position = pending_positions[local_index]
            store.record(
                keys[position],
                _job_coords(jobs[position]),
                replace(
                    failure,
                    index=position,
                    coords=_job_coords(jobs[position]),
                ),
            )

    watchdog = Watchdog(point_timeout) if point_timeout is not None else None
    if telemetry is not None and watchdog is not None:
        # Pre-register at zero so a clean supervised sweep still
        # exports the supervision counters.
        for name in ("sweep.timeouts", "sweep.watchdog_kills", "sweep.quarantined"):
            telemetry.registry.counter(name).add(0)

    # Per-point telemetry (phase profile, engine counters) only works
    # in-process: a pool worker's mutations die with the worker.
    # Supervision forces pooled execution even for one worker, so a
    # supervised sweep never binds the telemetry session into the job.
    point_fn = _sweep_point_job
    if (
        telemetry is not None
        and point_timeout is None
        and resolve_workers(workers, max(1, len(pending_jobs))) <= 1
    ):
        point_fn = partial(_sweep_point_job, telemetry=telemetry)

    sweep_timer = (
        telemetry.registry.timer("sweep.run") if telemetry is not None else None
    )
    start = time.perf_counter()
    if on_result is not None:
        # Baseline for the first ``sweep.point_interval_seconds``
        # sample is dispatch start: stamping any earlier bills the
        # checkpoint resume scan and other setup to the first point.
        last_done[0] = point_timer()
    outcomes = parallel_map(
        point_fn,
        pending_jobs,
        workers=workers,
        retry=retry,
        capture_failures=True,
        on_result=on_result,
        on_failure=on_failure,
        watchdog=watchdog,
    )
    if sweep_timer is not None:
        sweep_timer.record(time.perf_counter() - start)
    if telemetry is not None and watchdog is not None:
        telemetry.registry.counter("sweep.timeouts").add(watchdog.timeouts)
        telemetry.registry.counter("sweep.watchdog_kills").add(watchdog.kills)
        telemetry.registry.counter("sweep.quarantined").add(watchdog.quarantined)
    if telemetry is not None and cache_store is not None:
        # Delta against the pre-sweep snapshot, so a shared ResultCache
        # instance attributes each sweep only its own traffic.
        cache_after = cache_store.stats()
        for name in ("hits", "misses", "corrupt", "evictions"):
            telemetry.registry.counter(f"cache.{name}").add(
                cache_after[name] - cache_before.get(name, 0)
            )

    failures: List[JobFailure] = list(resumed_failures)
    for local_index, outcome in enumerate(outcomes):
        position = pending_positions[local_index]
        if isinstance(outcome, JobFailure):
            failures.append(
                replace(
                    outcome,
                    index=position,
                    coords=_job_coords(jobs[position]),
                )
            )
        else:
            results[position] = outcome
    failures.sort(key=lambda failure: failure.index)

    if telemetry is not None:
        telemetry.registry.counter("sweep.points_failed").add(len(failures))
    if tracker is not None:
        tracker.finish(failed=len(failures))

    if strict and failures:
        first = failures[0]
        raise WorkerError(
            f"sweep point {dict(first.coords)} failed: "
            f"{first.error_type}: {first.message}",
            coords=first.coords,
            traceback=first.traceback,
        )
    return SweepReport(
        points=[point for point in results if point is not None],
        failures=failures,
        total=len(jobs),
        resumed=resumed,
        cached=cache_hits,
    )


def channel_sweep_configs(
    base: SystemConfig, channel_counts: Iterable[int]
) -> List[SystemConfig]:
    """Clone ``base`` across channel counts."""
    return [base.with_channels(m) for m in channel_counts]


def frequency_sweep_configs(
    base: SystemConfig, frequencies_mhz: Iterable[float]
) -> List[SystemConfig]:
    """Clone ``base`` across interface clocks."""
    return [base.with_frequency(f) for f in frequencies_mhz]
