"""Configuration-sweep machinery shared by the experiments.

The central primitive is :func:`simulate_use_case`: build the load
model for an H.264 level, pick a simulation scale, run the
multi-channel system and assemble the frame-power report.  The Fig. 3,
4 and 5 runners are thin sweeps over it.

Sweep points are embarrassingly parallel -- every (configuration,
level) pair is an independent simulation -- so :func:`sweep_use_case`
accepts a ``workers`` count and fans whole points out across worker
processes via :mod:`repro.parallel`.  Results are returned in the same
order and with the same bit-identical values as a sequential sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.realtime import RealTimeVerdict, realtime_verdict
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.model import DEFAULT_BLOCK_BYTES, VideoRecordingLoadModel
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, choose_scale
from repro.parallel import parallel_map
from repro.power.report import FramePowerReport, compute_frame_power
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase


@dataclass(frozen=True)
class SweepPoint:
    """One simulated (configuration, level) point of a sweep."""

    config: SystemConfig
    level: H264Level
    result: SimulationResult
    power: FramePowerReport
    verdict: RealTimeVerdict

    @property
    def access_time_ms(self) -> float:
        """Full-frame access time, ms."""
        return self.result.access_time_ms

    @property
    def total_power_mw(self) -> float:
        """Frame-average power, mW."""
        return self.power.total_power_mw

    @property
    def reported_power_mw(self) -> float:
        """The Fig. 5 bar height: zero when real time is missed."""
        return 0.0 if self.verdict is RealTimeVerdict.FAIL else self.total_power_mw


def simulate_use_case(
    level: H264Level,
    config: SystemConfig,
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    use_case: Optional[VideoRecordingUseCase] = None,
) -> SweepPoint:
    """Simulate one frame of ``level``'s recording on ``config``.

    ``scale`` overrides the automatic fraction selection (pass 1.0 for
    an exact full-frame run).
    """
    if use_case is None:
        use_case = VideoRecordingUseCase(level)
    load = VideoRecordingLoadModel(use_case, block_bytes=block_bytes)
    if scale is None:
        scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
    transactions = load.generate_frame(scale=scale)
    system = MultiChannelMemorySystem(config)
    result = system.run(transactions, scale=scale)
    power = compute_frame_power(config, result, level.frame_period_ms)
    verdict = realtime_verdict(result.access_time_ms, level.frame_period_ms)
    return SweepPoint(
        config=config, level=level, result=result, power=power, verdict=verdict
    )


def _sweep_point_job(
    job: Tuple[H264Level, SystemConfig, Optional[float], int, int]
) -> SweepPoint:
    """Simulate one sweep point (pool worker entry point).

    Module-level so it pickles by reference; every argument and the
    returned :class:`SweepPoint` are plain dataclasses/enums, so the
    round trip through the pool is lossless.
    """
    level, config, scale, chunk_budget, block_bytes = job
    return simulate_use_case(
        level,
        config,
        scale=scale,
        chunk_budget=chunk_budget,
        block_bytes=block_bytes,
    )


def sweep_use_case(
    levels: Sequence[H264Level],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Cartesian sweep of levels x configurations.

    ``workers`` fans the (level, config) points out across worker
    processes (``None``/1 = in-process, 0 = one per CPU); the returned
    list is in levels-major order and bit-identical either way.
    """
    if not levels or not configs:
        raise ConfigurationError("sweep needs at least one level and one config")
    jobs = [
        (level, config, scale, chunk_budget, block_bytes)
        for level in levels
        for config in configs
    ]
    return parallel_map(_sweep_point_job, jobs, workers=workers)


def channel_sweep_configs(
    base: SystemConfig, channel_counts: Iterable[int]
) -> List[SystemConfig]:
    """Clone ``base`` across channel counts."""
    return [base.with_channels(m) for m in channel_counts]


def frequency_sweep_configs(
    base: SystemConfig, frequencies_mhz: Iterable[float]
) -> List[SystemConfig]:
    """Clone ``base`` across interface clocks."""
    return [base.with_frequency(f) for f in frequencies_mhz]
