"""Design-space exploration utilities.

The paper's conclusions summarise its sweep as a lookup — level 3.1
works on one channel, 3.2 needs several, 4 needs four, 4.2/5.2 need
eight — and call for "novel policies" to keep power manageable as
loads grow.  This module packages those questions as first-class
queries over the simulator:

- :func:`minimum_channels` — the smallest channel count that meets a
  level's real-time requirement (the conclusions' summary table);
- :func:`find_minimum_power_configuration` — the cheapest feasible
  (channels, clock) design point for a level;
- :func:`compare_energy_strategies` — *race-to-idle* (run the memory
  flat out, then power down for the rest of the frame) versus
  *just-in-time* (pace the traffic across the frame), the canonical
  DVFS-era policy question raised by Section V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.realtime import PAPER_MARGIN, RealTimeVerdict
from repro.analysis.sweep import SweepPoint, simulate_use_case, sweep_use_case
from repro.backends.registry import default_backend_name
from repro.core.config import (
    PAPER_CHANNEL_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    SystemConfig,
)
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.load.pacing import pace_transactions
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, choose_scale
from repro.oracle.planner import screen_survivors
from repro.parallel import resolve_workers
from repro.power.report import compute_frame_power
from repro.telemetry.session import Telemetry
from repro.usecase.levels import H264Level
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import WorkloadLike, resolve_workload


def minimum_channels(
    level: H264Level,
    freq_mhz: float = 400.0,
    channel_counts: Sequence[int] = PAPER_CHANNEL_COUNTS,
    require_margin: bool = False,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workers: Optional[int] = None,
    strict: bool = True,
    backend: Optional[str] = None,
    point_timeout: Optional[float] = None,
    cache: Optional[object] = None,
    workload: WorkloadLike = None,
    telemetry: Optional[Telemetry] = None,
) -> Optional[int]:
    """Smallest channel count meeting the level's real-time target.

    ``require_margin`` demands a full PASS (15 % headroom); otherwise
    MARGINAL counts as feasible, matching the paper's Fig. 4 reading.
    Returns ``None`` when no evaluated count suffices.

    ``workers`` > 1 simulates all evaluated channel counts
    concurrently and then scans for the smallest feasible one; the
    sequential default stops at the first success.  Both return the
    same answer -- every point is an independent simulation.
    ``backend`` selects the simulation backend for every point.

    ``strict=False`` degrades gracefully: a channel count whose
    simulation failed is skipped (treated as not demonstrably
    feasible) instead of aborting the exploration.  ``point_timeout``
    puts every evaluated point under watchdog supervision (and forces
    the sweep path -- an in-process point cannot be preempted).
    ``cache`` names a persistent content-addressed result store
    directory (or passes a prepared
    :class:`~repro.service.cache.ResultCache`) and likewise forces the
    sweep path so every evaluated point is served from -- and written
    back to -- the store.
    """
    counts = sorted(channel_counts)

    def config_for(m: int) -> SystemConfig:
        config = SystemConfig(channels=m, freq_mhz=freq_mhz)
        return config if backend is None else config.with_backend(backend)

    if (
        not strict
        or point_timeout is not None
        or cache is not None
        or resolve_workers(workers, len(counts)) > 1
    ):
        points = sweep_use_case(
            [level],
            [config_for(m) for m in counts],
            chunk_budget=chunk_budget,
            workers=workers,
            strict=strict,
            point_timeout=point_timeout,
            cache=cache,
            workload=workload,
            telemetry=telemetry,
        )
    else:
        points = (
            simulate_use_case(
                level,
                config_for(m),
                chunk_budget=chunk_budget,
                workload=workload,
                telemetry=telemetry,
            )
            for m in counts
        )
    for point in points:
        if require_margin:
            if point.verdict is RealTimeVerdict.PASS:
                return point.config.channels
        elif point.verdict.feasible:
            return point.config.channels
    return None


def find_minimum_power_configuration(
    level: H264Level,
    channel_counts: Sequence[int] = PAPER_CHANNEL_COUNTS,
    frequencies_mhz: Sequence[float] = PAPER_FREQUENCIES_MHZ,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workers: Optional[int] = None,
    strict: bool = True,
    backend: Optional[str] = None,
    prescreen_backend: Optional[str] = None,
    prescreen_slack: float = 0.25,
    point_timeout: Optional[float] = None,
    cache: Optional[object] = None,
    workload: WorkloadLike = None,
    telemetry: Optional[Telemetry] = None,
) -> Optional[SweepPoint]:
    """Cheapest (by average power) PASS configuration for ``level``.

    Returns ``None`` when nothing in the evaluated grid passes with
    the processing margin intact.  The (channels, clock) grid is
    exhaustive either way, so ``workers`` > 1 fans it out across
    processes without changing the answer.  ``strict=False`` skips
    failed grid points instead of aborting, answering over the
    surviving portion of the grid.

    ``backend`` selects the simulation backend scoring the grid.
    ``prescreen_backend`` enables two-phase exploration -- the
    "screen with analytic, confirm with reference" recipe
    (docs/cookbook.md): the whole grid is first swept under the
    (cheap) pre-screen backend, configurations whose screened access
    time misses the real-time requirement by more than
    ``prescreen_slack`` (a fractional safety margin absorbing the
    screen's tolerance) are discarded, and only the survivors are
    re-simulated under ``backend`` for the authoritative answer.  The
    discard policy itself --
    :func:`repro.oracle.planner.screen_survivors` -- is shared with
    the feasibility oracle's cost planner, so there is one escalation
    policy in the codebase; it validates the frame period and the
    slack loudly (a degenerate limit would silently turn the screen
    into "discard everything").  If the screen eliminates everything,
    the full grid is refined anyway rather than trusting a
    low-fidelity "infeasible", and the fallback is announced via the
    ``explorer.prescreen_empty`` telemetry counter (alongside
    ``explorer.prescreen_points`` / ``explorer.prescreen_survivors``)
    instead of double-simulating silently.

    ``cache`` names a persistent content-addressed result store
    directory shared by both phases; keys include the backend, so the
    pre-screen and the refinement populate disjoint entries and a
    repeated exploration replays both from disk.
    """
    configs = [
        SystemConfig(channels=channels, freq_mhz=freq)
        for freq in frequencies_mhz
        for channels in channel_counts
    ]
    if backend is not None:
        configs = [config.with_backend(backend) for config in configs]
    registry = telemetry.registry if telemetry is not None else None
    if prescreen_backend is not None:
        screened = sweep_use_case(
            [level],
            configs,
            chunk_budget=chunk_budget,
            workers=workers,
            strict=strict,
            backend=prescreen_backend,
            point_timeout=point_timeout,
            cache=cache,
            workload=workload,
            telemetry=telemetry,
        )
        survivors = [
            point.config.with_backend(
                backend if backend is not None else default_backend_name()
            )
            for point in screen_survivors(
                screened, level.frame_period_ms, prescreen_slack
            )
        ]
        if registry is not None:
            registry.counter("explorer.prescreen_points").add(len(screened))
            registry.counter("explorer.prescreen_survivors").add(len(survivors))
            # Pre-register at zero so the fallback counter exports
            # (visibly zero) on every pre-screened exploration.
            registry.counter("explorer.prescreen_empty").add(0)
        if survivors:
            configs = survivors
        elif registry is not None:
            registry.counter("explorer.prescreen_empty").add(1)
    points = sweep_use_case(
        [level], configs, chunk_budget=chunk_budget, workers=workers,
        strict=strict, point_timeout=point_timeout, cache=cache,
        workload=workload, telemetry=telemetry,
    )
    best: Optional[SweepPoint] = None
    for point in points:
        if point.verdict is not RealTimeVerdict.PASS:
            continue
        if best is None or point.power.total_power_w < best.power.total_power_w:
            best = point
    return best


@dataclass(frozen=True)
class EnergyStrategyComparison:
    """Race-to-idle vs just-in-time energy for one configuration."""

    level: H264Level
    config: SystemConfig
    #: Backlogged run: finish fast, power down for the frame remainder.
    race_to_idle_energy_j: float
    race_to_idle_access_ms: float
    #: Paced run: injection spread over the frame's usable window.
    just_in_time_energy_j: float
    just_in_time_access_ms: float

    @property
    def energy_ratio(self) -> float:
        """just-in-time / race-to-idle energy (1.0 = tie)."""
        return self.just_in_time_energy_j / self.race_to_idle_energy_j

    def summary(self) -> str:
        """One-line human-readable comparison."""
        return (
            f"{self.level.column_title} on {self.config.channels}ch @ "
            f"{self.config.freq_mhz:g} MHz: race-to-idle "
            f"{self.race_to_idle_energy_j * 1e3:.2f} mJ/frame vs just-in-time "
            f"{self.just_in_time_energy_j * 1e3:.2f} mJ/frame "
            f"(ratio {self.energy_ratio:.3f})"
        )


def compare_energy_strategies(
    level: H264Level,
    config: SystemConfig,
    duty: float = 1.0 - PAPER_MARGIN,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workload: WorkloadLike = None,
) -> EnergyStrategyComparison:
    """Compare race-to-idle and just-in-time scheduling energies.

    Both runs move the identical frame traffic on the identical
    configuration; only arrival times differ.  With the paper's
    near-free power-down (immediate entry, tXP exit) the two should be
    close — quantifying *how* close is the point: it shows the paper's
    aggressive power-down assumption already captures most of what a
    DVFS-style pacing policy could save at fixed voltage/frequency.
    """
    use_case = resolve_workload(workload).instantiate(level)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), chunk_budget)
    txns = load.generate_frame(scale=scale)
    system = MultiChannelMemorySystem(config)

    backlogged = system.run(txns, scale=scale)
    race = compute_frame_power(config, backlogged, level.frame_period_ms)
    if not race.meets_realtime:
        raise ConfigurationError(
            f"{config.describe()} cannot sustain {level.column_title}; "
            "strategy comparison needs a feasible configuration"
        )

    paced_txns = pace_transactions(
        txns, frame_period_ms=level.frame_period_ms * scale, duty=duty
    )
    paced = system.run(paced_txns, scale=scale)
    jit = compute_frame_power(config, paced, level.frame_period_ms)

    return EnergyStrategyComparison(
        level=level,
        config=config,
        race_to_idle_energy_j=race.energy_per_frame_j,
        race_to_idle_access_ms=race.access_time_ms,
        just_in_time_energy_j=jit.energy_per_frame_j,
        just_in_time_access_ms=jit.access_time_ms,
    )


def conclusions_summary(
    frequencies_mhz: float = 400.0,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    workload: WorkloadLike = None,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, Optional[int]]:
    """The paper's Section V summary as data: minimum channels per
    level at 400 MHz."""
    from repro.usecase.levels import PAPER_LEVELS

    return {
        level.name: minimum_channels(
            level,
            freq_mhz=frequencies_mhz,
            chunk_budget=chunk_budget,
            workers=workers,
            backend=backend,
            workload=workload,
            telemetry=telemetry,
        )
        for level in PAPER_LEVELS
    }
