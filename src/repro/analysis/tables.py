"""Plain-text table and key/value formatting for experiment reports.

The benchmarks and the CLI print the regenerated paper artifacts as
aligned ASCII tables; no plotting dependency is required to inspect
any result.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError


def format_table(
    rows: Sequence[Sequence[str]],
    header_rule: bool = True,
    min_width: int = 0,
) -> str:
    """Render rows of strings as an aligned ASCII table.

    The first row is treated as the header when ``header_rule`` is
    set; all rows must have the same number of columns.
    """
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    width = len(rows[0])
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ConfigurationError(
                f"row {i} has {len(row)} columns, expected {width}"
            )
    cols = [max(max(len(str(r[c])) for r in rows), min_width) for c in range(width)]

    def _fmt(row: Sequence[str]) -> str:
        cells = []
        for c, value in enumerate(row):
            text = str(value)
            # Left-align the first (label) column, right-align numbers.
            if c == 0:
                cells.append(text.ljust(cols[c]))
            else:
                cells.append(text.rjust(cols[c]))
        return "  ".join(cells).rstrip()

    lines = [_fmt(rows[0])]
    if header_rule and len(rows) > 1:
        lines.append("  ".join("-" * w for w in cols))
    lines.extend(_fmt(row) for row in rows[1:])
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, object], title: str = "") -> str:
    """Render a mapping as aligned ``key: value`` lines."""
    if not pairs:
        raise ConfigurationError("cannot format an empty mapping")
    width = max(len(str(k)) for k in pairs)
    lines = [f"{title}" ] if title else []
    lines.extend(f"{str(k).ljust(width)} : {v}" for k, v in pairs.items())
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    rows: List[List[str]] = [[x_label] + list(series.keys())]
    for i, x in enumerate(x_values):
        rows.append([str(x)] + [str(series[name][i]) for name in series])
    return format_table(rows)
