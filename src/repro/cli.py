"""Command-line interface: regenerate any paper artifact.

Usage::

    repro-sim table1
    repro-sim table2 --channels 8
    repro-sim fig3  [--scale 0.125] [--csv DIR]
    repro-sim fig4  [--freq 400]
    repro-sim fig5
    repro-sim xdr
    repro-sim breakdown [--level 4 --channels 4]
    repro-sim explore   [--level 4.2]
    repro-sim profile fig3 [--freq 400]
    repro-sim verify-paper [--update] [--goldens DIR]
    repro-sim fuzz [--cases 100 --seed 0]
    repro-sim chaos [--seeds 1,5,17]
    repro-sim sweep [--levels 3.1,4 --channels 1,2,4,8 --freqs 200,400]
    repro-sim query [--level 4 --channels 4 --freq 400] [--json]
    repro-sim query --batch < queries.jsonl
    repro-sim workloads
    repro-sim all

Every subcommand prints the regenerated table/figure as ASCII; pass
``--csv DIR`` to also write the raw data as CSV files.  See
EXPERIMENTS.md for how the output maps onto the paper's artifacts.

``--workers N`` runs the sweeps behind fig3/fig4/fig5/xdr/explore on N
worker processes (0 = one per CPU); the artifacts are bit-identical to
the sequential default.

``--backend NAME`` selects the simulation backend for every simulated
point (see :mod:`repro.backends` and docs/architecture.md, Backends):
``reference`` (default, exact), ``fast`` (bit-identical run-length
batching, several times faster), ``batch`` (bit-identical vectorized
decode + cross-point caching, an order of magnitude faster; needs the
numpy extra) or ``analytic`` (closed-form screening).  ``explore
--prescreen analytic`` screens the design grid closed-form and refines
only plausible points under ``--backend``.

``--workload NAME`` selects the workload spec every simulated point
models (see :mod:`repro.workloads` and docs/architecture.md,
Workloads): ``h264_camcorder`` (default, the paper's Fig. 1 pipeline),
``vvc_encoder``, ``h264_lossy_ec`` or ``vdcm_display``.  Repeatable
``--workload-param NAME=VALUE`` overrides spec parameters (validated
against the spec's schema).  ``workloads`` lists every registered spec
with its parameters and stages.  Table I/II and ``verify-paper`` are
paper artifacts and always use the camcorder.

Fault tolerance (see :mod:`repro.resilience`):

- ``--checkpoint FILE`` records every completed sweep point to FILE as
  it finishes; add ``--resume`` to skip the points already recorded
  there, so an interrupted run recomputes only the missing work.
  Without ``--resume`` an existing checkpoint is truncated first.
  ``--durable-checkpoint`` additionally fsyncs every append (machine-
  crash durability, at a per-point latency cost).
- ``--point-timeout SECONDS`` puts every sweep point under watchdog
  supervision: a point still running after the deadline has its worker
  killed and is requeued; a point that hangs on every permitted
  attempt is quarantined -- an ERR cell under ``--no-strict``, an
  error naming the point otherwise -- and recorded in the checkpoint
  so ``--resume`` does not re-hang.
- ``--no-strict`` degrades gracefully: failed sweep points render as
  ERR cells instead of aborting the artifact.
- ``--cache-dir DIR`` attaches the persistent content-addressed result
  cache (see :mod:`repro.service.cache`): every completed sweep point
  is stored under its canonical job key (configuration, backend,
  engine version) and served from disk on any later run -- across
  subcommands and processes, so warming the cache once replays
  fig3/fig4/fig5/verify-paper in seconds.  Corrupt entries degrade to
  a recompute with a warning; under strict mode (the default) the run
  then exits non-zero to flag the damaged store, under ``--no-strict``
  it is tolerated silently.
- ``sweep`` runs an ad-hoc (levels x channels x frequencies) grid
  through the sharded sweep service (:mod:`repro.service`): the grid
  is partitioned into work units and dispatched to the local executor
  (``--shard-size``, ``--max-inflight``), folding through the same
  checkpoint/cache stores as every figure.
- ``--check-invariants`` audits every simulated command stream against
  the DRAM datasheet timing (slower; a validation mode).
- ``chaos`` runs the seeded chaos campaign: a real sweep under
  randomized crash/stall/torn-write injection, asserting the final
  report is bit-identical to an undisturbed run; exits non-zero on
  divergence and prints the failing seed for reproduction.

Feasibility oracle (see :mod:`repro.oracle`):

- ``query`` asks the feasibility oracle one question -- will
  (``--channels``, ``--freq``) sustain ``--level`` in real time, at
  what power -- and answers from the cheapest adequate tier:
  surrogate interpolation over the exact points already in
  ``--cache-dir`` / ``--checkpoint`` (microseconds), the analytic
  backend, or an exact simulation when ``--accuracy`` demands it.
  Every answer names its tier and error bound.  ``--json`` emits the
  answer as sorted-key JSON; ``--batch`` reads one JSON query object
  per stdin line and writes one JSON answer per line
  (deterministically, so output is byte-stable across runs).  With
  ``query`` a ``--checkpoint`` file is a read-only harvest source and
  is never truncated.

Observability (see :mod:`repro.telemetry`):

- ``--metrics-out FILE`` writes the run's metrics registry and phase
  profile to FILE as JSON under the documented ``repro-metrics/1``
  schema; works with every subcommand.
- ``--progress`` prints per-point sweep heartbeats (done/total, ETA,
  failures) to stderr while a sweep runs.
- ``profile <figure>`` runs one figure's sweep with profiling on and
  prints the phase breakdown plus the engine statistics.

Regression (see :mod:`repro.regression` and docs/architecture.md,
Regression & goldens):

- ``verify-paper`` regenerates every paper artifact and compares it
  cell by cell against the committed golden baselines, exiting
  non-zero on any out-of-tolerance cell; ``--update`` recaptures the
  goldens instead (requires a bit-identical backend), ``--goldens
  DIR`` points at an alternative golden store.
- ``fuzz`` runs a seeded differential-fuzzing campaign: every case
  under ``fast``/``analytic`` vs the reference, plus metamorphic
  invariant checks; exits non-zero on any mismatch.  ``--repro
  STRING`` replays a single failure repro instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.breakdown import stage_breakdown
from repro.analysis.experiments import (
    format_table1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_xdr_comparison,
)
from repro.analysis.explorer import (
    find_minimum_power_configuration,
    minimum_channels,
)
from repro.analysis.export import (
    export_fig3,
    export_fig4,
    export_fig5,
    export_table1,
    export_xdr,
)
from repro.core.config import SystemConfig
from repro.resilience import SweepCheckpoint
from repro.service.executor import DEFAULT_SHARD_SIZE
from repro.telemetry import StreamProgressSink, Telemetry, write_metrics
from repro.usecase.levels import level_by_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Regenerate the tables and figures of 'A case for multi-channel "
            "memories in video recording' (DATE 2009)."
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload fraction to simulate (default: automatic)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="simulated-burst budget used for automatic scaling",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweep simulation (0 = one per CPU; "
            "default: in-process); results are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "simulation backend for every simulated point: 'reference' "
            "(exact event-driven engine, the default), 'fast' "
            "(bit-identical run-length batching, several times faster), "
            "'batch' (bit-identical vectorized decode, ~10x+; needs the "
            "numpy extra) or 'analytic' (closed-form screening); see "
            "docs/architecture.md, Backends"
        ),
    )
    parser.add_argument(
        "--workload",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "workload spec for every simulated point: 'h264_camcorder' "
            "(the paper's Fig. 1 pipeline, the default), 'vvc_encoder', "
            "'h264_lossy_ec' or 'vdcm_display'; run 'repro-sim "
            "workloads' for details (docs/architecture.md, Workloads)"
        ),
    )
    parser.add_argument(
        "--workload-param",
        dest="workload_params",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help=(
            "override one workload parameter (repeatable), e.g. "
            "--workload-param intra_only=true --workload-param "
            "encoder_factor=8; validated against the spec's schema"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "record completed sweep points to FILE (JSON lines) as they "
            "finish; combine with --resume to pick up an interrupted run"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse the points already in --checkpoint FILE instead of "
            "truncating it; only missing points are recomputed"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help=(
            "allow --resume to reuse checkpoint points recorded under a "
            "different --backend (normally refused: mixing backends in "
            "one checkpoint blends fidelities)"
        ),
    )
    parser.add_argument(
        "--durable-checkpoint",
        action="store_true",
        help=(
            "fsync every checkpoint append (machine-crash durability; "
            "requires --checkpoint; the default already survives the "
            "process dying)"
        ),
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock deadline per sweep point (watchdog supervision): "
            "hung points are killed, requeued, and quarantined as ERR "
            "cells when they hang on every attempt"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "persistent content-addressed result cache: completed sweep "
            "points are stored in DIR keyed by their full job description "
            "(configuration, backend, engine version) and served from "
            "disk on re-runs; corrupt entries are recomputed with a "
            "warning (non-zero exit under strict mode)"
        ),
    )
    parser.add_argument(
        "--no-strict",
        dest="strict",
        action="store_false",
        help=(
            "degrade gracefully: render failed sweep points as ERR cells "
            "instead of aborting the artifact"
        ),
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "audit every simulated DRAM command stream against the "
            "datasheet timing constraints (slower; validation mode)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "write the run's metrics and phase profile to FILE as JSON "
            "(schema 'repro-metrics/1'; see docs/architecture.md)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print sweep heartbeats (done/total, ETA) to stderr",
    )
    parser.add_argument(
        "--csv",
        type=str,
        default=None,
        metavar="DIR",
        help="also write the artifact's data as CSV files into DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as terminal bar charts as well as tables",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: per-stage bandwidth requirements")

    p_t2 = sub.add_parser("table2", help="Table II: memory mapping over channels")
    p_t2.add_argument("--channels", type=int, default=8, help="channel count M")

    sub.add_parser("fig3", help="Fig. 3: access time vs clock frequency")

    p_f4 = sub.add_parser("fig4", help="Fig. 4: access time vs frame format")
    p_f4.add_argument("--freq", type=float, default=400.0, help="clock, MHz")

    p_f5 = sub.add_parser("fig5", help="Fig. 5: power vs frame format")
    p_f5.add_argument("--freq", type=float, default=400.0, help="clock, MHz")

    sub.add_parser("xdr", help="Section IV: XDR power comparison")

    p_bd = sub.add_parser(
        "breakdown", help="per-stage access-time/energy attribution"
    )
    p_bd.add_argument("--level", type=str, default="4", help="H.264 level name")
    p_bd.add_argument("--channels", type=int, default=4, help="channel count")
    p_bd.add_argument("--freq", type=float, default=400.0, help="clock, MHz")

    p_ex = sub.add_parser(
        "explore", help="minimum channels and cheapest design point for a level"
    )
    p_ex.add_argument("--level", type=str, default="4", help="H.264 level name")
    p_ex.add_argument(
        "--prescreen",
        type=str,
        default=None,
        metavar="BACKEND",
        help=(
            "pre-screen the design grid under BACKEND (typically "
            "'analytic') and refine only the plausible points under "
            "--backend (docs/cookbook.md: screen-then-confirm)"
        ),
    )

    p_prof = sub.add_parser(
        "profile",
        help="run one figure's sweep with profiling and print the breakdown",
    )
    p_prof.add_argument(
        "figure",
        choices=("fig3", "fig4", "fig5", "xdr"),
        help="which figure's sweep to profile",
    )
    p_prof.add_argument(
        "--freq", type=float, default=400.0, help="clock for fig4/fig5, MHz"
    )

    p_rep = sub.add_parser(
        "report", help="write a full reproduction report (markdown)"
    )
    p_rep.add_argument(
        "--out", type=str, default="REPORT.md", help="output markdown path"
    )

    p_val = sub.add_parser(
        "validate", help="run every correctness oracle for one design point"
    )
    p_val.add_argument("--level", type=str, default="4", help="H.264 level name")
    p_val.add_argument("--channels", type=int, default=4, help="channel count")
    p_val.add_argument("--freq", type=float, default=400.0, help="clock, MHz")

    p_vp = sub.add_parser(
        "verify-paper",
        help="check every regenerated artifact against the golden baselines",
    )
    p_vp.add_argument(
        "--update",
        action="store_true",
        help=(
            "recapture the golden files from the current tree instead of "
            "verifying (requires a bit-identical backend)"
        ),
    )
    p_vp.add_argument(
        "--goldens",
        type=str,
        default=None,
        metavar="DIR",
        help="golden store directory (default: the committed baselines)",
    )

    p_fz = sub.add_parser(
        "fuzz",
        help="differentially fuzz every backend against the reference",
    )
    p_fz.add_argument(
        "--cases", type=int, default=100, help="number of generated cases"
    )
    p_fz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (deterministic)"
    )
    p_fz.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="report failures unshrunk (faster on a failing tree)",
    )
    p_fz.add_argument(
        "--no-invariants",
        dest="invariants",
        action="store_false",
        help="skip the metamorphic invariant checks",
    )
    p_fz.add_argument(
        "--repro",
        type=str,
        default=None,
        metavar="STRING",
        help="replay one failure repro string instead of a campaign",
    )

    p_ch = sub.add_parser(
        "chaos",
        help=(
            "seeded chaos campaign: sweep under randomized "
            "crash/stall/torn-write injection, assert bit-identity"
        ),
    )
    p_ch.add_argument(
        "--seeds",
        type=str,
        default="1,5,17",
        metavar="LIST",
        help="comma-separated campaign seeds (default: 1,5,17)",
    )
    p_ch.add_argument(
        "--max-attempts",
        type=int,
        default=8,
        metavar="N",
        help="resume attempts per seed before giving up (default: 8)",
    )

    p_sw = sub.add_parser(
        "sweep",
        help=(
            "run an ad-hoc (levels x channels x frequencies) grid "
            "through the sharded sweep service"
        ),
    )
    p_sw.add_argument(
        "--levels",
        type=str,
        default="3.1",
        metavar="LIST",
        help="comma-separated H.264 level names (default: 3.1)",
    )
    p_sw.add_argument(
        "--channels",
        type=str,
        default="1,2,4,8",
        metavar="LIST",
        help="comma-separated channel counts (default: 1,2,4,8)",
    )
    p_sw.add_argument(
        "--freqs",
        type=str,
        default="200,266,333,400",
        metavar="LIST",
        help="comma-separated interface clocks, MHz (default: 200,266,333,400)",
    )
    p_sw.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        metavar="N",
        help=(
            "sweep points per work unit dispatched to the executor "
            f"(default: {DEFAULT_SHARD_SIZE})"
        ),
    )
    p_sw.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="work units in flight concurrently (default: 4)",
    )

    p_q = sub.add_parser(
        "query",
        help=(
            "ask the feasibility oracle: will (channels, freq) sustain "
            "a level in real time, and at what power?"
        ),
    )
    p_q.add_argument("--level", type=str, default="4", help="H.264 level name")
    p_q.add_argument("--channels", type=int, default=4, help="channel count")
    p_q.add_argument("--freq", type=float, default=400.0, help="clock, MHz")
    p_q.add_argument(
        "--accuracy",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "relative access-time error budget (default: 0.15, the "
            "analytic tolerance; 0 demands an exact simulation)"
        ),
    )
    p_q.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the answer as sorted-key JSON instead of prose",
    )
    p_q.add_argument(
        "--batch",
        action="store_true",
        help=(
            "read one JSON query object per stdin line "
            '({"level": ..., "channels": ..., "freq_mhz": ..., '
            '"accuracy"?, "workload"?}) and write one JSON answer per '
            "line; byte-stable across runs"
        ),
    )

    sub.add_parser(
        "workloads",
        help="list every registered workload spec (parameters, stages)",
    )

    sub.add_parser("all", help="run every artifact in paper order")
    return parser


def _split_csv(text: str, cast, flag: str) -> List:
    """Parse one comma-separated CLI list, failing with the flag name."""
    try:
        values = [cast(part.strip()) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"{flag} must be a comma-separated list, got {text!r}")
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return values


def _parse_workload_params(items: Optional[List[str]]) -> dict:
    """Parse repeated ``--workload-param NAME=VALUE`` flags.

    Values are coerced the way JSON would read them -- ``true``/
    ``false`` to bool, numerals to int/float -- so ``intra_only=true``
    and ``encoder_factor=8`` mean what they look like; anything else
    stays a string (the spec's schema rejects it loudly if wrong).
    """
    params: dict = {}
    for item in items or []:
        name, sep, raw = item.partition("=")
        name = name.strip()
        if not sep or not name:
            raise SystemExit(
                f"--workload-param must look like NAME=VALUE, got {item!r}"
            )
        text = raw.strip()
        value: object
        lowered = text.lower()
        if lowered in ("true", "false"):
            value = lowered == "true"
        else:
            try:
                value = int(text)
            except ValueError:
                try:
                    value = float(text)
                except ValueError:
                    value = text
        params[name] = value
    return params


def _csv_dir(args: argparse.Namespace) -> Optional[Path]:
    if args.csv is None:
        return None
    path = Path(args.csv)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _format_metrics_summary(telemetry: Telemetry) -> str:
    """Counter/timer table for the ``profile`` subcommand output."""
    snapshot = telemetry.registry.as_dict()
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        lines.append(f"  {name:<34} {value:>14,d}")
    for name, stats in snapshot["timers"].items():
        lines.append(
            f"  {name:<34} {stats['seconds']:>12.3f} s "
            f"({stats['calls']} call(s))"
        )
    return "\n".join(lines) if lines else "  (no metrics recorded)"


def _run_command(args: argparse.Namespace) -> Tuple[List[str], int]:
    """Execute one subcommand; returns (output sections, exit code)."""
    exit_code = 0
    telemetry: Optional[Telemetry] = None
    if args.metrics_out is not None or args.command == "profile":
        telemetry = Telemetry.enabled()
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.budget is not None:
        kwargs["chunk_budget"] = args.budget
    if args.workers is not None:
        kwargs["workers"] = args.workers
    budget_only = {k: v for k, v in kwargs.items() if k == "chunk_budget"}
    backend_kw = {} if args.backend is None else {"backend": args.backend}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    bound_workload = None
    if args.workload is not None or args.workload_params:
        from repro.workloads.registry import resolve_workload

        bound_workload = resolve_workload(
            args.workload, _parse_workload_params(args.workload_params)
        )
        kwargs["workload"] = bound_workload
    workload_kw = {} if bound_workload is None else {"workload": bound_workload}
    if args.checkpoint is not None:
        # ``query`` only ever *reads* a checkpoint (as a surrogate
        # harvest source); truncating it would destroy the very points
        # the oracle is asked to serve.
        if not args.resume and args.command != "query":
            SweepCheckpoint(args.checkpoint).clear()
        kwargs["checkpoint"] = args.checkpoint
        if args.force:
            kwargs["checkpoint_force"] = True
        if args.durable_checkpoint:
            kwargs["durable_checkpoint"] = True
    if args.point_timeout is not None:
        kwargs["point_timeout"] = args.point_timeout
    if not args.strict:
        kwargs["strict"] = False
    if args.check_invariants:
        kwargs["base_config"] = SystemConfig(check_invariants=True, **backend_kw)
    cache_store = None
    if args.cache_dir is not None:
        from repro.service.cache import ResultCache

        # One instance for the whole command, so its statistics cover
        # every sweep the command ran (and the corrupt-entry check
        # below sees all of them).
        cache_store = ResultCache(args.cache_dir)
        kwargs["cache"] = cache_store
    explore_kwargs = {
        k: v
        for k, v in kwargs.items()
        if k
        in (
            "chunk_budget",
            "workers",
            "strict",
            "backend",
            "point_timeout",
            "cache",
            "workload",
        )
    }
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
        explore_kwargs["telemetry"] = telemetry
    if args.progress:
        kwargs["progress"] = StreamProgressSink()
    csv_dir = _csv_dir(args)

    sections: List[str] = []
    command = args.command

    if command in ("table1", "all"):
        table = run_table1()
        sections.append("== Table I: memory bandwidth requirements ==")
        sections.append(format_table1(table))
        if csv_dir is not None:
            export_table1(table, csv_dir / "table1.csv")
    if command in ("table2", "all"):
        channels = getattr(args, "channels", 8)
        sections.append(f"== Table II: memory mapping over {channels} channels ==")
        sections.append(run_table2(channels).format())
    if command in ("fig3", "all"):
        fig3 = run_fig3(**kwargs)
        sections.append("== Fig. 3: access time vs clock frequency (720p30) ==")
        sections.append(fig3.format())
        if args.chart:
            from repro.analysis.charts import fig3_chart

            sections.append(fig3_chart(fig3))
        if csv_dir is not None:
            export_fig3(fig3, csv_dir / "fig3.csv")
    if command in ("fig4", "all"):
        freq = getattr(args, "freq", 400.0)
        fig4 = run_fig4(freq_mhz=freq, **kwargs)
        sections.append(f"== Fig. 4: access time vs frame format ({freq:g} MHz) ==")
        sections.append(fig4.format())
        if args.chart:
            from repro.analysis.charts import fig4_chart

            sections.append(fig4_chart(fig4))
        if csv_dir is not None:
            export_fig4(fig4, csv_dir / "fig4.csv")
    if command in ("fig5", "all"):
        freq = getattr(args, "freq", 400.0)
        fig5 = run_fig5(freq_mhz=freq, **kwargs)
        sections.append(f"== Fig. 5: power vs frame format ({freq:g} MHz) ==")
        sections.append(fig5.format())
        if args.chart:
            from repro.analysis.charts import fig5_chart

            sections.append(fig5_chart(fig5))
        if csv_dir is not None:
            export_fig5(fig5, csv_dir / "fig5.csv")
    if command in ("xdr", "all"):
        xdr = run_xdr_comparison(**kwargs)
        sections.append("== XDR comparison (8 channels @ 400 MHz) ==")
        sections.append(xdr.format())
        if csv_dir is not None:
            export_xdr(xdr, csv_dir / "xdr.csv")
    if command == "breakdown":
        level = level_by_name(args.level)
        config = SystemConfig(
            channels=args.channels, freq_mhz=args.freq, **backend_kw
        )
        result = stage_breakdown(level, config, **budget_only, **workload_kw)
        sections.append(
            f"== Per-stage breakdown: {level.column_title} on "
            f"{config.describe()} =="
        )
        sections.append(result.format())
    if command == "report":
        from repro.analysis.reportgen import write_report

        report_kwargs = dict(budget_only)
        if not args.strict:
            report_kwargs["strict"] = False
        if args.check_invariants:
            report_kwargs["base_config"] = SystemConfig(
                check_invariants=True, **backend_kw
            )
        elif args.backend is not None:
            report_kwargs["base_config"] = SystemConfig(**backend_kw)
        anchors = write_report(args.out, **report_kwargs)
        held = sum(a.holds for a in anchors)
        sections.append(
            f"wrote {args.out}: {held}/{len(anchors)} paper anchors reproduced"
        )
    if command == "validate":
        from repro.analysis.validate import validate_configuration

        summary = validate_configuration(
            level_by_name(args.level),
            SystemConfig(channels=args.channels, freq_mhz=args.freq, **backend_kw),
            **budget_only,
        )
        sections.append("== Validation: all correctness oracles ==")
        sections.append(summary.format())
        if not summary.all_passed:
            sections.append("VALIDATION FAILED")
    if command == "explore":
        level = level_by_name(args.level)
        sections.append(f"== Design exploration: {level.column_title} ==")
        needed = minimum_channels(level, **explore_kwargs)
        if needed is None:
            sections.append("no evaluated channel count meets real time at 400 MHz")
        else:
            sections.append(f"minimum channels at 400 MHz: {needed}")
        best = find_minimum_power_configuration(
            level, prescreen_backend=args.prescreen, **explore_kwargs
        )
        if best is None:
            sections.append("no configuration passes with the 15 % margin")
        else:
            sections.append(
                f"cheapest safe design point: {best.config.channels} ch @ "
                f"{best.config.freq_mhz:g} MHz -> {best.access_time_ms:.1f} ms, "
                f"{best.total_power_mw:.0f} mW"
            )
    if command == "verify-paper":
        from repro.regression import GOLDEN_CHUNK_BUDGET, update_goldens, verify_paper

        common = dict(
            directory=args.goldens,
            backend=args.backend,
            workers=args.workers,
            telemetry=telemetry,
            progress=kwargs.get("progress"),
            cache=cache_store,
        )
        if args.update:
            written = update_goldens(
                chunk_budget=(
                    args.budget if args.budget is not None else GOLDEN_CHUNK_BUDGET
                ),
                **common,
            )
            sections.append("== Golden baselines recaptured ==")
            sections.extend(f"wrote {path}" for path in written)
        else:
            verification = verify_paper(**common)
            sections.append("== Paper verification against goldens ==")
            sections.append(verification.format())
            if not verification.passed:
                exit_code = 1
    if command == "fuzz":
        from repro.regression import run_fuzz, run_repro

        if args.repro is not None:
            backend = args.backend if args.backend is not None else "fast"
            problems = run_repro(args.repro, backend)
            sections.append(f"== Repro replay under backend={backend} ==")
            if problems:
                sections.extend(f"  {p}" for p in problems)
                sections.append("FAIL: repro still mismatches")
                exit_code = 1
            else:
                sections.append("PASS: repro no longer mismatches")
        else:
            # --backend narrows the campaign to one backend-under-test;
            # the default (and explicit 'reference') differentially
            # checks every non-reference built-in.
            backends = None
            if args.backend is not None and args.backend != "reference":
                backends = [args.backend]
            report = run_fuzz(
                cases=args.cases,
                seed=args.seed,
                backends=backends,
                check_invariants=args.invariants,
                shrink=args.shrink,
                telemetry=telemetry,
            )
            sections.append("== Differential fuzzing campaign ==")
            sections.append(report.format())
            if not report.passed:
                exit_code = 1
    if command == "chaos":
        from repro.resilience.chaos import run_chaos_campaign

        try:
            seeds = tuple(
                int(part) for part in args.seeds.split(",") if part.strip()
            )
        except ValueError:
            raise SystemExit(
                f"--seeds must be a comma-separated integer list, "
                f"got {args.seeds!r}"
            )
        if not seeds:
            raise SystemExit("--seeds needs at least one seed")
        chaos_kwargs = dict(budget_only)
        if args.backend is not None:
            chaos_kwargs["backend"] = args.backend
        if args.workers is not None:
            chaos_kwargs["workers"] = args.workers
        if args.point_timeout is not None:
            chaos_kwargs["point_timeout"] = args.point_timeout
        report = run_chaos_campaign(
            seeds=seeds, max_attempts=args.max_attempts, **chaos_kwargs
        )
        sections.append("== Chaos campaign ==")
        sections.append(report.format())
        if not report.passed:
            exit_code = 1
    if command == "sweep":
        from repro.service import LocalExecutor, run_service_sweep
        from repro.analysis.tables import format_table

        levels = [
            level_by_name(name)
            for name in _split_csv(args.levels, str, "--levels")
        ]
        channel_counts = _split_csv(args.channels, int, "--channels")
        freqs = _split_csv(args.freqs, float, "--freqs")
        invariants_kw = (
            {"check_invariants": True} if args.check_invariants else {}
        )
        configs = [
            SystemConfig(
                channels=m, freq_mhz=f, **invariants_kw, **backend_kw
            )
            for f in freqs
            for m in channel_counts
        ]
        executor = LocalExecutor(
            workers=args.workers, point_timeout=args.point_timeout
        )
        service_kwargs = {}
        if args.scale is not None:
            service_kwargs["scale"] = args.scale
        if args.budget is not None:
            service_kwargs["chunk_budget"] = args.budget
        report = run_service_sweep(
            levels,
            configs,
            executor=executor,
            shard_size=args.shard_size,
            max_inflight=args.max_inflight,
            checkpoint=kwargs.get("checkpoint"),
            cache=cache_store,
            strict=args.strict,
            telemetry=telemetry,
            progress=kwargs.get("progress"),
            checkpoint_force=args.force,
            durable_checkpoint=args.durable_checkpoint,
            **service_kwargs,
            **workload_kw,
        )
        workload_note = (
            "" if bound_workload is None else f" [{bound_workload.name}]"
        )
        sections.append(
            f"== Service sweep: {len(levels)} level(s) x "
            f"{len(configs)} config(s) via {executor.describe()}"
            f"{workload_note} =="
        )
        rows = [["Level", "Channels", "Clock [MHz]", "Access [ms]", "Verdict"]]
        for point in report:
            rows.append(
                [
                    point.level.column_title,
                    str(point.config.channels),
                    f"{point.config.freq_mhz:g}",
                    f"{point.access_time_ms:.1f}",
                    str(point.verdict),
                ]
            )
        sections.append(format_table(rows))
        sections.append(report.summary())
        if report.failures:
            sections.append(report.format_failures())
    if command == "query":
        import json as _json

        from repro.oracle import DEFAULT_ACCURACY, FeasibilityOracle, run_batch

        oracle_kwargs = {}
        if args.scale is not None:
            oracle_kwargs["scale"] = args.scale
        if args.budget is not None:
            oracle_kwargs["chunk_budget"] = args.budget
        if args.backend is not None:
            oracle_kwargs["exact_backend"] = args.backend
        oracle = FeasibilityOracle(
            cache=cache_store,
            checkpoints=(
                (args.checkpoint,) if args.checkpoint is not None else ()
            ),
            telemetry=telemetry,
            **oracle_kwargs,
        )
        accuracy = (
            args.accuracy if args.accuracy is not None else DEFAULT_ACCURACY
        )
        if args.batch:
            sections.append("\n".join(run_batch(oracle, sys.stdin)))
        else:
            answer = oracle.query(
                args.level,
                args.channels,
                args.freq,
                accuracy=accuracy,
                workload=bound_workload,
            )
            if args.as_json:
                sections.append(_json.dumps(answer.to_json(), sort_keys=True))
            else:
                sections.append("== Feasibility query ==")
                sections.append(answer.describe())
                sections.append(
                    f"answered in {answer.latency_s * 1e3:.3f} ms "
                    f"({answer.escalations} escalation(s))"
                )
    if command == "workloads":
        from repro.workloads.registry import (
            available_workloads,
            default_workload_name,
            get_workload,
        )

        sections.append("== Registered workloads ==")
        for name in available_workloads():
            spec = get_workload(name)
            marker = " (default)" if name == default_workload_name() else ""
            sections.append(f"-- {name}{marker} --")
            sections.append(spec.describe())
    if command == "profile":
        figure = args.figure
        if figure == "fig3":
            run_fig3(**kwargs)
        elif figure == "fig4":
            run_fig4(freq_mhz=args.freq, **kwargs)
        elif figure == "fig5":
            run_fig5(freq_mhz=args.freq, **kwargs)
        else:
            run_xdr_comparison(**kwargs)
        sections.append(f"== Phase profile: {figure} ==")
        sections.append(telemetry.profile_report().format())
        sections.append("== Metrics ==")
        sections.append(_format_metrics_summary(telemetry))
    if cache_store is not None:
        stats = cache_store.stats()
        # Machine-readable query output must stay pure (and byte-stable
        # across a computing run and a cache-served re-run), so the
        # stats trailer is prose-mode only; the strict corruption exit
        # code below still applies either way.
        machine_output = command == "query" and (
            getattr(args, "as_json", False) or getattr(args, "batch", False)
        )
        if not machine_output:
            sections.append(
                f"cache {args.cache_dir}: {stats['hits']} hit(s), "
                f"{stats['misses']} miss(es), {stats['writes']} write(s), "
                f"{stats['corrupt']} corrupt, {stats['evictions']} evicted"
            )
        if stats["corrupt"] and args.strict:
            # The damaged entries were already recomputed (the artifact
            # above is correct); the non-zero exit flags the store so
            # operators notice before the next hundred runs re-pay the
            # misses.  --no-strict tolerates a self-healing cache.
            sections.append(
                f"CACHE CORRUPTION: {stats['corrupt']} entr(y/ies) were "
                "ignored and recomputed (results are unaffected); "
                "failing under strict mode -- use --no-strict to tolerate"
            )
            exit_code = max(exit_code, 1)
    if args.metrics_out is not None:
        write_metrics(args.metrics_out, command, telemetry, backend=args.backend)
        sections.append(f"wrote metrics to {args.metrics_out}")
    return sections, exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint FILE")
    if args.durable_checkpoint and args.checkpoint is None:
        parser.error("--durable-checkpoint requires --checkpoint FILE")
    if args.backend is not None:
        # Validate eagerly so even subcommands that never build a
        # SystemConfig (e.g. table1) reject a typo'd backend.
        from repro.backends.registry import validate_backend_name

        validate_backend_name(args.backend)
    if getattr(args, "prescreen", None) is not None:
        from repro.backends.registry import validate_backend_name

        validate_backend_name(args.prescreen)
    if args.workload is not None:
        # Same eager validation as --backend: a typo'd workload name
        # fails before any sweep starts.
        from repro.workloads.registry import validate_workload_name

        validate_workload_name(args.workload)
    sections, exit_code = _run_command(args)
    # Machine-readable query output (--json / --batch) is emitted
    # verbatim -- one JSON document per line, no blank separators --
    # so it can be piped, compared byte for byte, or fed to jq.
    machine_output = getattr(args, "as_json", False) or getattr(args, "batch", False)
    for section in sections:
        print(section)
        if not machine_output:
            print()
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
