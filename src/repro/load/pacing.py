"""Paced (real-time) arrival of the use-case traffic.

The default load model is *backlogged*: every transaction is ready at
t=0 and the measured quantity is the pure memory access time (the
paper's Fig. 3/4 metric).  A real camcorder is different: the sensor
delivers lines at its own pace, stages run concurrently across the
frame period, and the memory sees request bursts separated by compute
gaps.  Those gaps are exactly where the paper's immediate power-down
policy earns its keep ("bank clusters go to power down states after
the first idle clock cycle").

:func:`pace_transactions` rewrites a frame's transaction stream with
arrival times that spread each *stage's* traffic uniformly over a
window of the frame period.  With ``duty`` < 1 the stream finishes its
injection early in each window, creating idle gaps; the engine's
power-down machinery (and the tXP exit penalty) then become active
*within* the frame rather than only after it.

This module is an extension beyond the paper's evaluated setup,
supporting its Section V discussion of energy-efficient operation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.controller.request import MasterTransaction
from repro.errors import ConfigurationError


def pace_transactions(
    transactions: Sequence[MasterTransaction],
    frame_period_ms: float,
    duty: float = 0.85,
) -> List[MasterTransaction]:
    """Assign paced arrival times to a frame's transaction stream.

    Parameters
    ----------
    transactions:
        One frame's transactions in program order (arrival times are
        overwritten).
    frame_period_ms:
        The frame period to spread the traffic over.
    duty:
        Fraction of the frame period the injection occupies; the paper
        reserves a 15 % margin for data processing, matching the
        default ``duty = 0.85``.

    Returns a new list; the input is not modified.
    """
    if frame_period_ms <= 0:
        raise ConfigurationError(
            f"frame period must be positive, got {frame_period_ms}"
        )
    if not 0.0 < duty <= 1.0:
        raise ConfigurationError(f"duty must be in (0, 1], got {duty}")
    if not transactions:
        return []

    total_bytes = sum(t.size for t in transactions)
    if total_bytes <= 0:
        raise ConfigurationError("transactions carry no bytes")
    window_ns = frame_period_ms * 1e6 * duty

    paced: List[MasterTransaction] = []
    progress = 0
    for txn in transactions:
        arrival = window_ns * (progress / total_bytes)
        paced.append(dataclasses.replace(txn, arrival_ns=arrival))
        progress += txn.size
    return paced


def injection_rate_bytes_per_s(
    transactions: Sequence[MasterTransaction], frame_period_ms: float, duty: float
) -> float:
    """Average injection rate of the paced stream, bytes/s."""
    if frame_period_ms <= 0 or not 0.0 < duty <= 1.0:
        raise ConfigurationError("invalid pacing parameters")
    total_bytes = sum(t.size for t in transactions)
    return total_bytes / (frame_period_ms * 1e-3 * duty)
