"""Static row-buffer locality analysis of a transaction stream.

Predicts, without running the timing engine, how a transaction stream
will behave in the row buffers: per-channel burst counts, row-buffer
hit rates and activate counts under the open-page policy.  The
prediction walks the exact per-channel, per-bank open-row state the
controller would hold, so for refresh-free windows it matches the
engine's counters *exactly* — the cross-validation test pins that.
(Refresh closes all rows every tREFI, so over long windows the engine
reports slightly more activates; the analyzer quantifies the gap.)

Use cases: sizing interleaving/mapping choices before committing to a
simulation sweep, and sanity-checking workload generators (a "video
recording" trace with a 60 % predicted hit rate is a buggy trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.controller.mapping import AddressMapping, AddressMultiplexing
from repro.controller.request import CHUNK_SHIFT, MasterTransaction
from repro.core.interleave import ChannelInterleaver
from repro.dram.device import NO_OPEN_ROW, BankClusterGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LocalityPrediction:
    """Predicted row-buffer behaviour of one stream on one layout."""

    channels: int
    scheme: AddressMultiplexing
    #: Bursts per channel.
    chunks_per_channel: Tuple[int, ...]
    #: Predicted activates per channel (open-page, no refresh).
    activates_per_channel: Tuple[int, ...]

    @property
    def total_chunks(self) -> int:
        """Total bursts across channels."""
        return sum(self.chunks_per_channel)

    @property
    def total_activates(self) -> int:
        """Total predicted activates."""
        return sum(self.activates_per_channel)

    @property
    def row_hit_rate(self) -> float:
        """Predicted fraction of bursts hitting an open row."""
        if self.total_chunks == 0:
            return 1.0
        return 1.0 - self.total_activates / self.total_chunks

    def hit_rate_for(self, channel: int) -> float:
        """Predicted hit rate of one channel."""
        chunks = self.chunks_per_channel[channel]
        if chunks == 0:
            return 1.0
        return 1.0 - self.activates_per_channel[channel] / chunks


def predict_locality(
    transactions: Iterable[MasterTransaction],
    channels: int,
    geometry: BankClusterGeometry,
    scheme: AddressMultiplexing = AddressMultiplexing.RBC,
) -> LocalityPrediction:
    """Walk the open-row state a controller would hold for ``transactions``.

    Addresses wrap modulo the total capacity, mirroring
    :meth:`repro.core.system.MultiChannelMemorySystem.run`.
    """
    if channels < 1:
        raise ConfigurationError(f"channels must be >= 1, got {channels}")
    interleaver = ChannelInterleaver(channels)
    mapping = AddressMapping.build(geometry, scheme)
    bank_shift = mapping.bank_shift
    bank_mask = mapping.bank_mask
    row_shift = mapping.row_shift
    row_mask = mapping.row_mask
    xor_shift = mapping.xor_shift
    xor_mask = mapping.xor_mask

    total_chunks_cap = (geometry.capacity_bytes >> CHUNK_SHIFT) * channels
    chunk_counts = [0] * channels
    activates = [0] * channels
    open_rows: List[List[int]] = [
        [NO_OPEN_ROW] * geometry.banks for _ in range(channels)
    ]

    for txn in transactions:
        span = txn.chunk_span()
        first = span.start % total_chunks_cap
        remaining = len(span)
        while remaining > 0:
            take = min(remaining, total_chunks_cap - first)
            for ch, start, count in interleaver.split_span(first, first + take - 1):
                chunk_counts[ch] += count
                rows = open_rows[ch]
                for k in range(count):
                    chunk = start + k
                    bank = (
                        (chunk >> bank_shift) ^ ((chunk >> xor_shift) & xor_mask)
                    ) & bank_mask
                    row = (chunk >> row_shift) & row_mask
                    if rows[bank] != row:
                        rows[bank] = row
                        activates[ch] += 1
            first = 0
            remaining -= take

    return LocalityPrediction(
        channels=channels,
        scheme=scheme,
        chunks_per_channel=tuple(chunk_counts),
        activates_per_channel=tuple(activates),
    )


def compare_schemes(
    transactions: Sequence[MasterTransaction],
    channels: int,
    geometry: BankClusterGeometry,
) -> Dict[AddressMultiplexing, LocalityPrediction]:
    """Predict every multiplexing scheme's locality for one stream."""
    return {
        scheme: predict_locality(transactions, channels, geometry, scheme)
        for scheme in AddressMultiplexing
    }
