"""Trace file format: persisting and replaying transaction streams.

A plain-text, one-transaction-per-line format in the style of the
standard DRAM-simulator trace inputs (Ramulator/DRAMSim style, adapted
to sized block transfers)::

    # comment
    R 0x00001000 4096 0
    W 0x00002000 4096 0

Fields: operation (``R``/``W``), hexadecimal or decimal byte address,
size in bytes, and the arrival time in nanoseconds (optional; a line
without it parses as ``arrival_ns=None`` = backlogged).

Field constraints, enforced at parse time with
:class:`~repro.errors.TraceFormatError`:

- the address must be a non-negative integer;
- the size must be a positive integer;
- the arrival stamp, when present, must be a **finite**, non-negative
  float.  ``nan`` and ``inf`` are rejected outright: every comparison
  against NaN is ``False``, so a non-finite stamp that slipped through
  would pass any range check and poison the engine's time arithmetic.

Writing is lossless: :func:`write_trace` emits the arrival field
whenever ``arrival_ns is not None`` (including an explicit ``0.0``
timestamp, which is a real stamp, not a missing one -- see
:class:`~repro.controller.request.MasterTransaction`), so a
write -> read -> write round trip reproduces the file byte for byte.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.controller.request import MasterTransaction, Op
from repro.errors import TraceFormatError

PathLike = Union[str, Path]

_OPS = {"R": Op.READ, "W": Op.WRITE}
_OP_NAMES = {Op.READ: "R", Op.WRITE: "W"}


def write_trace(path: PathLike, transactions: Iterable[MasterTransaction]) -> int:
    """Write a transaction stream to ``path``; returns the line count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro trace v1: op address size arrival_ns\n")
        for txn in transactions:
            # `is not None`, not truthiness: an explicit 0.0 stamp is a
            # real timestamp and must survive the round trip, while only
            # a backlogged (None) arrival drops the field.
            if txn.arrival_ns is not None:
                # repr() round-trips floats exactly; %g would truncate
                # paced arrival stamps to 6 significant digits.
                handle.write(
                    f"{_OP_NAMES[txn.op]} {txn.address:#x} {txn.size} "
                    f"{txn.arrival_ns!r}\n"
                )
            else:
                handle.write(f"{_OP_NAMES[txn.op]} {txn.address:#x} {txn.size}\n")
            count += 1
    return count


def parse_trace_line(line: str, lineno: int = 0) -> MasterTransaction:
    """Parse one trace line into a transaction."""
    fields = line.split()
    if len(fields) not in (3, 4):
        raise TraceFormatError(
            f"line {lineno}: expected 'op address size [arrival_ns]', got {line!r}"
        )
    op_name = fields[0].upper()
    if op_name not in _OPS:
        raise TraceFormatError(
            f"line {lineno}: unknown operation {fields[0]!r} (expected R or W)"
        )
    try:
        address = int(fields[1], 0)
        size = int(fields[2], 0)
        arrival = float(fields[3]) if len(fields) == 4 else None
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: {exc} in {line!r}") from exc
    # Reject out-of-range fields here with the line number attached,
    # rather than letting MasterTransaction's ConfigurationError lose
    # the file coordinates.  float() accepts 'nan'/'inf' spellings, so
    # finiteness must be an explicit check.
    if address < 0:
        raise TraceFormatError(
            f"line {lineno}: address must be >= 0, got {address} in {line!r}"
        )
    if size <= 0:
        raise TraceFormatError(
            f"line {lineno}: size must be positive, got {size} in {line!r}"
        )
    if arrival is not None and not math.isfinite(arrival):
        raise TraceFormatError(
            f"line {lineno}: arrival_ns must be finite, got {fields[3]} "
            f"in {line!r}"
        )
    if arrival is not None and arrival < 0:
        raise TraceFormatError(
            f"line {lineno}: arrival_ns must be >= 0, got {arrival} in {line!r}"
        )
    try:
        return MasterTransaction(
            op=_OPS[op_name], address=address, size=size, arrival_ns=arrival
        )
    except Exception as exc:
        raise TraceFormatError(f"line {lineno}: {exc} in {line!r}") from exc


def read_trace(path: PathLike) -> List[MasterTransaction]:
    """Read a trace file back into a transaction list.

    Blank lines and ``#`` comments are ignored.
    """
    transactions: List[MasterTransaction] = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            transactions.append(parse_trace_line(line, lineno))
    return transactions
