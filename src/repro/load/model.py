"""The video-recording load model: the Fig. 2 state machine.

Section III: *"Within the load model, the processing chain of the
video recording is described as a state machine.  Each state results
in memory access requests."*  and *"[the use case] represents very
regular and foreseeable memory access behaviour, i.e., it needs
relatively large data amounts resulting in several memory accesses to
sequential memory locations."*

This class walks a use case's stages in order and emits master
transactions.  The use case is duck-typed: anything exposing
``buffers()`` / ``stages()`` / ``total_bytes_per_frame()`` works --
historically the :class:`~repro.usecase.pipeline.VideoRecordingUseCase`
facade, and since ROADMAP item 3 any instantiated
:class:`~repro.workloads.spec.WorkloadInstance` from the workload
zoo.  Traffic shape:

- each stage streams **sequentially** through its source and
  destination buffers,
- reads and writes interleave at a configurable *block* granularity
  (a stage consumes a block of input lines, processes them in cache,
  and emits a block of output -- the classic line-buffer structure of
  camera pipelines),
- stages with several read sources (the encoder's reference frames)
  rotate between them block by block, the way motion estimation sweeps
  all references per macroblock row,
- streams larger than their buffer wrap around (the encoder reads each
  reference frame ``encoder_factor`` times over).

A ``scale`` argument emits only that fraction of every stage's
traffic, preserving the read/write mix, block structure and buffer
addresses; see :mod:`repro.load.scaling` for why that is sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.controller.request import MasterTransaction, Op
from repro.errors import ConfigurationError
from repro.load.addressmap import AddressMap, Region
from repro.usecase.pipeline import StageTraffic, VideoRecordingUseCase  # noqa: F401 - public API

#: Default read/write interleave block: 4 KB, i.e. a handful of video
#: lines -- the calibrated stage-processing granularity (EXPERIMENTS.md).
DEFAULT_BLOCK_BYTES = 4096


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate statistics of a generated transaction stream.

    Feeds the analytic model and the experiment reports.
    """

    total_bytes: int
    read_bytes: int
    write_bytes: int
    transactions: int
    rw_switches: int

    @property
    def read_fraction(self) -> float:
        """Read share of the traffic."""
        if self.total_bytes == 0:
            return 0.0
        return self.read_bytes / self.total_bytes


class VideoRecordingLoadModel:
    """Generates master transactions for the video-recording use case."""

    def __init__(
        self,
        use_case: VideoRecordingUseCase,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        base_address: int = 0,
    ) -> None:
        if block_bytes < 16 or block_bytes % 16:
            raise ConfigurationError(
                f"block_bytes must be a positive multiple of 16, got {block_bytes}"
            )
        self.use_case = use_case
        self.block_bytes = block_bytes
        self.address_map = AddressMap(use_case.buffers(), base=base_address)
        self._cursors: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------

    def generate_frame(self, scale: float = 1.0) -> List[MasterTransaction]:
        """Emit the master transactions of (a fraction of) one frame."""
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        self._cursors.clear()
        transactions: List[MasterTransaction] = []
        for stage in self.use_case.stages():
            transactions.extend(self._stage_transactions(stage, scale))
        return transactions

    def generate_frames(self, frames: int, scale: float = 1.0) -> List[MasterTransaction]:
        """Emit several consecutive frames' traffic (steady-state runs)."""
        if frames < 1:
            raise ConfigurationError(f"frames must be >= 1, got {frames}")
        out: List[MasterTransaction] = []
        for _ in range(frames):
            out.extend(self.generate_frame(scale=scale))
        return out

    # ------------------------------------------------------------------

    def _stage_transactions(
        self, stage: StageTraffic, scale: float
    ) -> Iterator[MasterTransaction]:
        """Emit one stage's traffic as block-interleaved reads/writes."""
        read_plan = self._scaled_plan(stage.reads, scale)
        write_plan = self._scaled_plan(stage.writes, scale)
        total_read = sum(size for _, size in read_plan)
        total_write = sum(size for _, size in write_plan)
        if total_read == 0 and total_write == 0:
            return
        biggest = max(total_read, total_write)
        n_blocks = max(1, -(-biggest // self.block_bytes))  # ceil div

        read_iter = self._block_iter(stage.name, read_plan, total_read, n_blocks)
        write_iter = self._block_iter(stage.name, write_plan, total_write, n_blocks)
        for _ in range(n_blocks):
            for addr, size in next(read_iter):
                yield MasterTransaction(Op.READ, addr, size)
            for addr, size in next(write_iter):
                yield MasterTransaction(Op.WRITE, addr, size)

    def _scaled_plan(
        self, entries: Sequence[Tuple[str, float]], scale: float
    ) -> List[Tuple[Region, int]]:
        """Convert (buffer, bits) traffic into (region, bytes), scaled
        and aligned to 16-byte granules."""
        plan: List[Tuple[Region, int]] = []
        for buffer_name, bits in entries:
            nbytes = int(bits * scale / 8.0)
            nbytes -= nbytes % 16
            if nbytes <= 0:
                continue
            plan.append((self.address_map.region(buffer_name), nbytes))
        return plan

    def _block_iter(
        self,
        stage_name: str,
        plan: List[Tuple[Region, int]],
        total: int,
        n_blocks: int,
    ) -> Iterator[List[Tuple[int, int]]]:
        """Yield ``n_blocks`` lists of (address, size) block pieces.

        Splits ``total`` bytes evenly over the blocks (16-byte
        aligned via an error accumulator), drawing from the plan's
        sources round-robin and advancing each source's sequential
        cursor (with wrap-around) in the region.
        """
        remaining = [size for _, size in plan]
        source = 0
        emitted = 0
        for block_idx in range(n_blocks):
            target = (total * (block_idx + 1)) // n_blocks
            want = target - emitted
            want -= want % 16
            pieces: List[Tuple[int, int]] = []
            while want > 0 and plan:
                # Find the next source with bytes left (round-robin).
                for _ in range(len(plan)):
                    if remaining[source] > 0:
                        break
                    source = (source + 1) % len(plan)
                else:
                    break
                region, _ = plan[source]
                take = min(want, remaining[source], self.block_bytes)
                take -= take % 16
                if take <= 0:
                    take = min(want, remaining[source])
                cursor_key = (stage_name, region.name)
                offset = self._cursors.get(cursor_key, 0)
                # Split at wrap boundaries so addresses stay inside the
                # region (streams smaller than a block may wrap twice).
                left = take
                pos = offset
                while left > 0:
                    piece = min(left, region.size - (pos % region.size))
                    pieces.append((region.offset_address(pos), piece))
                    pos += piece
                    left -= piece
                self._cursors[cursor_key] = offset + take
                remaining[source] -= take
                emitted += take
                want -= take
                source = (source + 1) % len(plan)
            yield pieces
        # Exhaust any rounding remainder into a final trailing block.
        while True:
            yield []

    # ------------------------------------------------------------------

    @staticmethod
    def summarize(transactions: Sequence[MasterTransaction]) -> TrafficSummary:
        """Compute aggregate statistics of a transaction stream."""
        read_bytes = 0
        write_bytes = 0
        switches = 0
        last_op = None
        for txn in transactions:
            if txn.op is Op.READ:
                read_bytes += txn.size
            else:
                write_bytes += txn.size
            if last_op is not None and txn.op is not last_op:
                switches += 1
            last_op = txn.op
        return TrafficSummary(
            total_bytes=read_bytes + write_bytes,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            transactions=len(transactions),
            rw_switches=switches,
        )

    def frame_bytes(self, scale: float = 1.0) -> float:
        """Expected bytes per (scaled) frame from the use-case model."""
        return self.use_case.total_bytes_per_frame() * scale
