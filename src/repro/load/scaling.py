"""Fractional-workload scaling.

A full HD frame moves tens of megabytes -- millions of 16-byte bursts
-- and the experiments sweep dozens of configurations.  Because the
use-case traffic is *statistically uniform over a frame* (the paper:
"very regular and foreseeable memory access behaviour"), simulating a
fraction of every stage's traffic and dividing the measured time by
the fraction estimates the full-frame access time with sub-percent
error: the row-hit rate, read/write mix, refresh duty and interconnect
exposure are all rate-based and invariant under the scaling.  The test
``tests/load/test_scaling.py`` pins that linearity.

:func:`choose_scale` picks the largest power-of-two-denominator scale
keeping a workload under a burst budget, so experiments stay fast by
default while remaining exact (``scale=1``) on request.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Default simulated-burst budget per run: keeps a full experiment
#: sweep in seconds of wall-clock on a laptop-class machine.
DEFAULT_CHUNK_BUDGET = 400_000

#: Smallest scale :func:`choose_scale` will return; below this the
#: per-stage traffic gets too small for stable statistics.
MIN_SCALE = 1.0 / 256.0


def choose_scale(
    workload_bytes: float, chunk_budget: int = DEFAULT_CHUNK_BUDGET
) -> float:
    """Pick a simulation scale for a workload of ``workload_bytes``.

    Returns 1.0 when the workload already fits the budget, otherwise
    the largest ``1/2**k`` that brings the simulated burst count under
    ``chunk_budget`` (floored at :data:`MIN_SCALE`).
    """
    if workload_bytes <= 0:
        raise ConfigurationError(
            f"workload_bytes must be positive, got {workload_bytes}"
        )
    if chunk_budget < 1000:
        raise ConfigurationError(
            f"chunk_budget must be at least 1000, got {chunk_budget}"
        )
    chunks = workload_bytes / 16.0
    scale = 1.0
    while chunks * scale > chunk_budget and scale > MIN_SCALE:
        scale /= 2.0
    return max(scale, MIN_SCALE)
