"""Layout of the use-case buffers in the global address space.

The load model streams through named frame buffers (sensor images,
YUV intermediates, reference frames, bitstreams).  This module places
them contiguously in the interleaved global address space, aligned so
that every buffer starts on a fresh DRAM row in every channel --
matching how a real driver would place large frame buffers and keeping
the row-locality behaviour well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import AddressError, ConfigurationError
from repro.usecase.pipeline import BufferSpec

#: Buffers are aligned to this many bytes: a 4 KB DRAM row in each of
#: up to eight interleaved channels.
BUFFER_ALIGN = 4096 * 8


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


@dataclass(frozen=True)
class Region:
    """One buffer's placement in the global address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    def offset_address(self, offset: int) -> int:
        """Global address of byte ``offset`` within the region, with
        wrap-around (streams larger than the buffer wrap, modelling
        repeated passes over the same frame)."""
        if self.size <= 0:
            raise AddressError(f"region {self.name!r} is empty")
        return self.base + (offset % self.size)


class AddressMap:
    """Contiguous, aligned placement of a set of buffers."""

    def __init__(
        self, buffers: Sequence[BufferSpec], base: int = 0, align: int = BUFFER_ALIGN
    ) -> None:
        if align <= 0 or align % 16:
            raise ConfigurationError(
                f"alignment must be a positive multiple of 16, got {align}"
            )
        if base < 0 or base % align:
            raise ConfigurationError(
                f"base must be a non-negative multiple of the alignment, got {base}"
            )
        names = [b.name for b in buffers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate buffer names: {names}")

        self._regions: Dict[str, Region] = {}
        cursor = base
        for buf in buffers:
            size = _align_up(buf.size_bytes, 16)
            self._regions[buf.name] = Region(name=buf.name, base=cursor, size=size)
            cursor = _align_up(cursor + size, align)
        self.total_span = cursor

    def region(self, name: str) -> Region:
        """Look up a buffer's placement by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(
                f"unknown buffer {name!r}; have {sorted(self._regions)}"
            ) from None

    def regions(self) -> List[Region]:
        """All regions in layout order."""
        return sorted(self._regions.values(), key=lambda r: r.base)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def fits_in(self, capacity_bytes: int) -> bool:
        """Whether the layout fits the memory system's capacity."""
        return self.total_span <= capacity_bytes
