"""Load models: turning the use case into memory traffic.

Fig. 2's load model "encapsulates everything else but the memory
controllers, DRAM interconnects, and bank clusters": the SMP, caches
and accelerators are abstracted into a state machine that "generates
just read and write access requests to the memory subsystem".

- :mod:`repro.load.addressmap` -- buffer layout in the global space,
- :mod:`repro.load.model` -- the video-recording load model,
- :mod:`repro.load.trace` -- trace file reader/writer,
- :mod:`repro.load.generators` -- synthetic baseline traffic,
- :mod:`repro.load.scaling` -- fractional-workload scaling.
"""

from repro.load.addressmap import AddressMap, Region
from repro.load.model import VideoRecordingLoadModel, TrafficSummary
from repro.load.trace import read_trace, write_trace
from repro.load.generators import (
    sequential_stream,
    strided_stream,
    random_stream,
    alternating_rw_stream,
)
from repro.load.scaling import choose_scale, DEFAULT_CHUNK_BUDGET
from repro.load.pacing import pace_transactions, injection_rate_bytes_per_s
from repro.load.mixer import (
    interleave_backlogged,
    merge_by_arrival,
    streams_overlap,
)

__all__ = [
    "pace_transactions",
    "injection_rate_bytes_per_s",
    "interleave_backlogged",
    "merge_by_arrival",
    "streams_overlap",
    "AddressMap",
    "Region",
    "VideoRecordingLoadModel",
    "TrafficSummary",
    "read_trace",
    "write_trace",
    "sequential_stream",
    "strided_stream",
    "random_stream",
    "alternating_rw_stream",
    "choose_scale",
    "DEFAULT_CHUNK_BUDGET",
]
