"""Synthetic traffic generators.

Baselines for characterising the memory system independently of the
video use case: pure sequential streaming (the best case the paper's
workload approaches), strided access, uniform random access (the
row-locality worst case) and alternating read/write streams (isolating
the turnaround cost).  Used by unit tests and the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.controller.request import MasterTransaction, Op
from repro.errors import ConfigurationError


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


def sequential_stream(
    total_bytes: int,
    block_bytes: int = 4096,
    op: Op = Op.READ,
    base_address: int = 0,
) -> List[MasterTransaction]:
    """A single sequential stream of ``total_bytes``."""
    _check_positive(total_bytes=total_bytes, block_bytes=block_bytes)
    if base_address < 0:
        raise ConfigurationError(f"base_address must be >= 0, got {base_address}")
    out = []
    addr = base_address
    remaining = total_bytes
    while remaining > 0:
        size = min(block_bytes, remaining)
        out.append(MasterTransaction(op, addr, size))
        addr += size
        remaining -= size
    return out


def strided_stream(
    accesses: int,
    stride_bytes: int,
    access_bytes: int = 64,
    op: Op = Op.READ,
    base_address: int = 0,
) -> List[MasterTransaction]:
    """Fixed-stride accesses (e.g. column walks through a frame)."""
    _check_positive(
        accesses=accesses, stride_bytes=stride_bytes, access_bytes=access_bytes
    )
    return [
        MasterTransaction(op, base_address + i * stride_bytes, access_bytes)
        for i in range(accesses)
    ]


def random_stream(
    accesses: int,
    span_bytes: int,
    access_bytes: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> List[MasterTransaction]:
    """Uniformly random accesses over ``span_bytes``.

    The row-locality worst case: with a 4 KB row and 64-byte accesses
    almost every access opens a new row.
    """
    _check_positive(accesses=accesses, span_bytes=span_bytes, access_bytes=access_bytes)
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError(
            f"read_fraction must be in [0, 1], got {read_fraction}"
        )
    if span_bytes < access_bytes:
        raise ConfigurationError("span must be at least one access long")
    rng = random.Random(seed)
    top = (span_bytes - access_bytes) // 16
    out = []
    for _ in range(accesses):
        addr = rng.randint(0, top) * 16
        op = Op.READ if rng.random() < read_fraction else Op.WRITE
        out.append(MasterTransaction(op, addr, access_bytes))
    return out


def alternating_rw_stream(
    pairs: int,
    block_bytes: int = 4096,
    read_base: int = 0,
    write_base: Optional[int] = None,
) -> List[MasterTransaction]:
    """Strictly alternating read/write blocks from two regions.

    Isolates the bus-turnaround overhead: every transaction switches
    direction.  ``write_base`` defaults to just past the read region.
    """
    _check_positive(pairs=pairs, block_bytes=block_bytes)
    if write_base is None:
        write_base = read_base + pairs * block_bytes
    out = []
    for i in range(pairs):
        out.append(MasterTransaction(Op.READ, read_base + i * block_bytes, block_bytes))
        out.append(
            MasterTransaction(Op.WRITE, write_base + i * block_bytes, block_bytes)
        )
    return out
