"""Merging several masters' transaction streams into one memory load.

The paper notes that "the system rarely runs only a single use case" —
its margins exist precisely because other masters (UI composition,
audio DSP, networking) share the execution memory.  This module merges
independent transaction streams into the single program-order stream a
shared (non-clustered) memory sees:

- **backlogged streams** (all arrivals zero) are interleaved
  round-robin at transaction granularity, modelling fair arbitration
  between always-ready masters;
- **timed streams** are merge-sorted by arrival, modelling masters
  that inject on their own schedules.

Each master's buffers must live at disjoint addresses; callers place
them with ``base_address`` offsets (see the cluster benchmark for the
pattern).  The merged stream is what the monolithic alternative to
channel clusters has to serve.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

from repro.controller.request import MasterTransaction
from repro.errors import ConfigurationError


def interleave_backlogged(
    streams: Sequence[Sequence[MasterTransaction]],
) -> List[MasterTransaction]:
    """Round-robin merge of backlogged (arrival-free) streams.

    Models fair arbitration: each ready master gets one transaction
    per round.  Streams of different lengths simply drop out as they
    exhaust.
    """
    if not streams:
        raise ConfigurationError("need at least one stream")
    for stream in streams:
        for txn in stream:
            # None and 0.0 both mean backlogged (no arrival constraint).
            if txn.arrival_ns:
                raise ConfigurationError(
                    "interleave_backlogged is for arrival-free streams; "
                    "use merge_by_arrival for timed streams"
                )
    merged: List[MasterTransaction] = []
    indices = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining:
        for i, stream in enumerate(streams):
            if indices[i] < len(stream):
                merged.append(stream[indices[i]])
                indices[i] += 1
                remaining -= 1
    return merged


def merge_by_arrival(
    streams: Sequence[Sequence[MasterTransaction]],
) -> List[MasterTransaction]:
    """Merge timed streams into one arrival-ordered stream.

    Within one master the program order is preserved even when its
    arrival stamps tie; across masters, earlier arrival goes first
    (ties broken by master index, keeping the merge deterministic).
    """
    if not streams:
        raise ConfigurationError("need at least one stream")
    heap = []
    for i, stream in enumerate(streams):
        if stream:
            heap.append((stream[0].arrival_ns or 0.0, i, 0))
    heapq.heapify(heap)
    merged: List[MasterTransaction] = []
    while heap:
        arrival, i, k = heapq.heappop(heap)
        merged.append(streams[i][k])
        if k + 1 < len(streams[i]):
            heapq.heappush(
                heap, (streams[i][k + 1].arrival_ns or 0.0, i, k + 1)
            )
    return merged


def streams_overlap(
    streams: Sequence[Sequence[MasterTransaction]],
) -> bool:
    """Whether any two streams touch overlapping address ranges.

    A cheap bounding-box check (min/max address per stream): masters
    sharing a memory must not alias each other's buffers, and the
    cluster comparison benchmarks assert this before merging.
    """
    boxes = []
    for stream in streams:
        if not stream:
            continue
        lo = min(t.address for t in stream)
        hi = max(t.end_address for t in stream)
        boxes.append((lo, hi))
    boxes.sort()
    for (_, hi_a), (lo_b, _) in zip(boxes, boxes[1:]):
        if lo_b < hi_a:
            return True
    return False
