"""Parallel execution: process pools with a deterministic fallback.

The paper's channels are *independent* by construction (Fig. 2: each
channel owns its controller, DRAM interconnect and bank cluster), and
the sweep experiments (Figs. 3-5) evaluate dozens of (configuration,
level) points that never interact.  Both are embarrassingly parallel,
yet a pure-Python simulator can only exploit that with processes --
the GIL serialises threads on the engine's integer-arithmetic hot
loop.  This module packages process-level parallelism behind one
order-preserving primitive, :func:`parallel_map`, used by

- :meth:`repro.core.system.MultiChannelMemorySystem.run` to simulate
  per-channel access streams concurrently, and
- :func:`repro.analysis.sweep.sweep_use_case` (and the Fig. 3/4/5
  runners built on it) to fan whole sweep points out across workers.

Design rules
------------

**Determinism.**  Results are bit-identical to the sequential path:
the mapped function must be pure, results are returned in input order
regardless of completion order, and each worker performs exactly the
computation the sequential path would (no shared mutable state, no
work stealing that could reorder floating-point reductions).

**Fault tolerance.**  Failures split into two classes with opposite
treatments (see :mod:`repro.resilience.retry`):

- *transient pool failures* (a worker was killed, the pool could not
  start, arguments could not cross the process boundary) never lose
  work: the unfinished jobs are retried on a fresh pool under a
  deterministic exponential-backoff :class:`RetryPolicy` and, once the
  attempt budget is exhausted, completed in-process.  Every fallback
  to the in-process path is announced with a
  :class:`PoolFallbackWarning` naming the reason, so users on
  restricted platforms know why ``--workers`` had no effect.
- *deterministic job failures* (the mapped function raised) are never
  retried -- a pure function fails the same way every time.  By
  default the exception propagates; with ``capture_failures=True`` the
  failed job yields a structured
  :class:`~repro.resilience.report.JobFailure` record in its result
  slot and the rest of the map completes.

**Worker semantics.**  ``workers=None`` or ``1`` means in-process
sequential execution; ``workers=0`` (:data:`AUTO_WORKERS`) means one
worker per available CPU; ``workers=N`` caps the pool at N processes.
The effective pool never exceeds the number of jobs.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, TypeVar, Union

from repro.errors import ConfigurationError
from repro.resilience.report import JobFailure
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.resilience.supervisor import (
    CallbackError,
    Watchdog,
    deliver,
    supervised_map,
)

T = TypeVar("T")
R = TypeVar("R")

#: ``workers`` value meaning "one worker per available CPU".
AUTO_WORKERS = 0

#: Upper bound on an explicit worker request; catches nonsense values
#: (a request is still capped by the job count afterwards).
MAX_WORKERS = 256

#: Errors that mean "the pool could not do the work", as opposed to
#: "the mapped function raised": pool start-up failures, workers dying
#: and arguments/functions that cannot cross the process boundary.
_POOL_ERRORS = (
    OSError,
    ImportError,
    NotImplementedError,
    BrokenProcessPool,
    pickle.PicklingError,
)

#: Future-level errors that indict the pool, not the job.  A future
#: whose exception is any *other* type carries the mapped function's
#: own failure and is handled per the ``capture_failures`` contract.
_TRANSIENT_FUTURE_ERRORS = (BrokenProcessPool, pickle.PicklingError)

_pool_probe: Optional[bool] = None


class PoolFallbackWarning(RuntimeWarning):
    """The process pool was abandoned and work ran in-process.

    Results are unaffected (the fallback is deterministic); the
    warning exists so a silent loss of parallelism is diagnosable.
    """


def _warn_fallback(reason: str) -> None:
    warnings.warn(
        PoolFallbackWarning(
            f"parallel_map fell back to in-process execution: {reason}"
        ),
        stacklevel=4,
    )


def available_cpus() -> int:
    """Number of CPUs usable for worker processes (at least 1)."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int], jobs: int) -> int:
    """Effective worker count for ``jobs`` independent jobs.

    ``None`` and ``1`` resolve to 1 (in-process); :data:`AUTO_WORKERS`
    resolves to :func:`available_cpus`; any other positive value is
    taken as an upper bound.  The result never exceeds ``jobs``.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(f"workers must be an int, got {workers!r}")
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (0 = one per CPU), got {workers}"
        )
    if workers > MAX_WORKERS:
        raise ConfigurationError(
            f"workers must be <= {MAX_WORKERS}, got {workers}"
        )
    if workers == AUTO_WORKERS:
        workers = available_cpus()
    return max(1, min(workers, jobs))


def _probe_identity(x: int) -> int:
    """Module-level identity for the pool probe (must be picklable)."""
    return x


def pool_supported() -> bool:
    """Whether this platform can actually start a worker pool.

    Probes once per process by round-tripping a trivial job through a
    single-worker pool; the result is cached.  Used by benchmarks and
    the determinism suite to distinguish "parallel path exercised"
    from "parallel path fell back in-process".
    """
    global _pool_probe
    if _pool_probe is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _pool_probe = list(pool.map(_probe_identity, [7])) == [7]
        except Exception:  # pragma: no cover - platform dependent
            _pool_probe = False
    return _pool_probe


def _serial_map(
    fn: Callable[[T], R],
    pending: Dict[int, T],
    results: Dict[int, Union[R, JobFailure]],
    capture_failures: bool,
    on_result: Optional[Callable[[int, R], None]],
    on_failure: Optional[Callable[[int, JobFailure], None]] = None,
) -> None:
    """Run ``pending`` jobs in-process, filling ``results`` by index."""
    for index in sorted(pending):
        job = pending[index]
        try:
            value = fn(job)
        except Exception as exc:
            if not capture_failures:
                raise
            failure = JobFailure.from_exception(index, job, exc)
            results[index] = failure
            deliver(on_failure, index, failure)
        else:
            results[index] = value
            deliver(on_result, index, value)
    pending.clear()


def _pooled_map(
    fn: Callable[[T], R],
    jobs: List[T],
    effective: int,
    retry: RetryPolicy,
    capture_failures: bool,
    on_result: Optional[Callable[[int, R], None]],
    on_failure: Optional[Callable[[int, JobFailure], None]] = None,
) -> Dict[int, Union[R, JobFailure]]:
    """Distribute ``jobs`` over a pool, retrying transient failures.

    Returns the full index->outcome mapping.  Deterministic job
    failures either propagate (default) or land as
    :class:`JobFailure` outcomes (``capture_failures``); transient
    pool failures retry all unfinished jobs on a fresh pool under
    ``retry``'s deterministic backoff schedule, then finish
    in-process.

    Caller callbacks run through :func:`deliver`, which wraps anything
    they raise in :class:`CallbackError` -- an exception type no
    ``except`` clause here matches -- so a failing checkpoint append
    (an :class:`OSError`, which is also a pool-error type) can never be
    mistaken for a transient pool failure and cause the already-
    delivered job to be re-run.
    """
    results: Dict[int, Union[R, JobFailure]] = {}
    pending: Dict[int, T] = dict(enumerate(jobs))
    failed_attempts = 0
    while pending:
        try:
            max_workers = min(effective, len(pending))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(fn, job): index
                    for index, job in pending.items()
                }
                for future in as_completed(futures):
                    index = futures[future]
                    exc = future.exception()
                    if exc is None:
                        value = future.result()
                        results[index] = value
                        del pending[index]
                        deliver(on_result, index, value)
                    elif isinstance(exc, _TRANSIENT_FUTURE_ERRORS):
                        # The pool (or the pickling boundary) failed,
                        # not the job: escalate to the retry handler
                        # with the job still pending.
                        raise exc
                    else:
                        # The mapped function raised.  Pure functions
                        # fail deterministically; never retry.
                        job = pending.pop(index)
                        if not capture_failures:
                            raise exc
                        failure = JobFailure.from_exception(index, job, exc)
                        results[index] = failure
                        deliver(on_failure, index, failure)
        except CallbackError:
            raise
        except _POOL_ERRORS as exc:
            failed_attempts += 1
            if failed_attempts >= retry.max_attempts:
                _warn_fallback(
                    f"{type(exc).__name__}: {exc} (after {failed_attempts} "
                    f"pool attempt(s)); finishing {len(pending)} job(s) "
                    "in-process"
                )
                _serial_map(
                    fn, pending, results, capture_failures, on_result,
                    on_failure,
                )
            else:
                delay = retry.delay_s(failed_attempts)
                if delay > 0:
                    time.sleep(delay)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    capture_failures: bool = False,
    on_result: Optional[Callable[[int, R], None]] = None,
    on_failure: Optional[Callable[[int, JobFailure], None]] = None,
    timeout_s: Optional[float] = None,
    watchdog: Optional[Watchdog] = None,
) -> List[Union[R, JobFailure]]:
    """Order-preserving, fault-tolerant map over independent jobs.

    With an effective worker count of 1 (the default) this is a plain
    in-process loop.  With more, jobs are distributed over a process
    pool and the results are collected *in input order*, so callers
    observe exactly the sequential output.

    ``fn`` must be a pure module-level callable and ``items`` must be
    picklable; when either condition fails, or the platform cannot
    start worker processes at all, the map falls back in-process
    (announced with a :class:`PoolFallbackWarning`) and still returns
    the identical result.

    Failure handling:

    - Transient pool failures (a killed worker, ``BrokenProcessPool``)
      re-execute the unfinished jobs on a fresh pool under ``retry``
      (default: :data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY`),
      with jitterless deterministic backoff delays, before finishing
      in-process.  No work is lost and no job runs twice to
      completion -- only jobs whose results never arrived are retried.
    - Exceptions raised by ``fn`` are deterministic: they are never
      retried.  By default the first one propagates to the caller;
      with ``capture_failures=True`` each failed job's result slot
      holds a :class:`~repro.resilience.report.JobFailure` record and
      every other job still completes.

    Supervision: ``timeout_s`` (or an explicit
    :class:`~repro.resilience.supervisor.Watchdog`, which additionally
    controls the strike budget and poll cadence) puts the map under
    watchdog supervision -- every job gets a wall-clock deadline
    measured from the moment it starts in a worker; a hung job's worker
    is killed and the job requeued, and a job that hangs (or kills its
    worker) on every permitted attempt is quarantined as a
    :class:`~repro.resilience.report.JobFailure` of kind ``timeout`` /
    ``quarantined`` (``capture_failures=True``) or raised as
    :class:`~repro.errors.JobTimeoutError`.  Supervision forces pooled
    execution even for ``workers=None``: an in-process job cannot be
    preempted, so a pool of one is the only way to honour the
    deadline.  Should the pool be unavailable the map still completes
    in-process -- with a :class:`PoolFallbackWarning` noting that
    deadlines are not enforced there.

    ``on_result`` (when given) is called in the parent process as
    ``on_result(index, value)`` the moment each job *succeeds* -- in
    completion order, not input order -- which is what lets sweep
    checkpoints record points as they finish.  ``on_failure`` is the
    counterpart for captured failures (including quarantines).  An
    exception raised by either callback is a *caller* error: it
    propagates unchanged, aborts the map, and is never retried or
    recorded as a job failure -- a checkpoint append failing with
    ``OSError`` must not look like a killed worker.
    """
    jobs = list(items)
    effective = resolve_workers(workers, len(jobs))
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    if watchdog is not None and timeout_s is not None:
        if float(timeout_s) != watchdog.timeout_s:
            raise ConfigurationError(
                "pass either timeout_s or a Watchdog, not conflicting both "
                f"({timeout_s!r} vs watchdog.timeout_s={watchdog.timeout_s!r})"
            )
    if watchdog is None and timeout_s is not None:
        watchdog = Watchdog(timeout_s)

    def unwrap(run: Callable[[], Dict[int, Union[R, JobFailure]]]):
        try:
            return run()
        except CallbackError as exc:
            raise exc.original from exc.original.__cause__

    if watchdog is not None and jobs:
        if pool_supported():
            # Supervision needs preemptable workers: force a pool even
            # for an effective worker count of 1.
            outcome = unwrap(
                lambda: supervised_map(
                    fn,
                    jobs,
                    max(effective, 1),
                    policy,
                    capture_failures,
                    on_result,
                    on_failure,
                    watchdog,
                )
            )
            return [outcome[i] for i in range(len(jobs))]
        _warn_fallback(
            "worker pools are unavailable on this platform; running "
            f"{len(jobs)} supervised job(s) in-process -- deadlines are "
            "NOT enforced in-process"
        )
        results: Dict[int, Union[R, JobFailure]] = {}
        unwrap(
            lambda: _serial_map(
                fn, dict(enumerate(jobs)), results, capture_failures,
                on_result, on_failure,
            )
        )
        return [results[i] for i in range(len(jobs))]
    if effective <= 1:
        results = {}
        unwrap(
            lambda: _serial_map(
                fn, dict(enumerate(jobs)), results, capture_failures,
                on_result, on_failure,
            )
        )
        return [results[i] for i in range(len(jobs))]
    try:
        # Probe before starting a pool: an unpicklable fn (lambda,
        # closure, bound method) surfaces as an AttributeError or
        # TypeError from deep inside the pool's feeder thread, so it
        # is far cleaner to detect it up front.
        pickle.dumps(fn)
    except Exception as exc:
        _warn_fallback(
            f"function {fn!r} cannot cross the process boundary "
            f"({type(exc).__name__})"
        )
        results = {}
        unwrap(
            lambda: _serial_map(
                fn, dict(enumerate(jobs)), results, capture_failures,
                on_result, on_failure,
            )
        )
        return [results[i] for i in range(len(jobs))]
    outcome = unwrap(
        lambda: _pooled_map(
            fn, jobs, effective, policy, capture_failures, on_result,
            on_failure,
        )
    )
    return [outcome[i] for i in range(len(jobs))]
