"""Parallel execution: process pools with a deterministic fallback.

The paper's channels are *independent* by construction (Fig. 2: each
channel owns its controller, DRAM interconnect and bank cluster), and
the sweep experiments (Figs. 3-5) evaluate dozens of (configuration,
level) points that never interact.  Both are embarrassingly parallel,
yet a pure-Python simulator can only exploit that with processes --
the GIL serialises threads on the engine's integer-arithmetic hot
loop.  This module packages process-level parallelism behind one
order-preserving primitive, :func:`parallel_map`, used by

- :meth:`repro.core.system.MultiChannelMemorySystem.run` to simulate
  per-channel access streams concurrently, and
- :func:`repro.analysis.sweep.sweep_use_case` (and the Fig. 3/4/5
  runners built on it) to fan whole sweep points out across workers.

Design rules
------------

**Determinism.**  Results are bit-identical to the sequential path:
the mapped function must be pure, results are returned in input order
regardless of completion order, and each worker performs exactly the
computation the sequential path would (no shared mutable state, no
work stealing that could reorder floating-point reductions).

**Graceful degradation.**  Platforms where process pools cannot start
(no fork and no picklable entry point, restricted sandboxes without
semaphores, missing ``_multiprocessing``) silently fall back to an
in-process map with identical results.  A broken pool mid-run is also
retried in-process -- safe because the mapped functions are pure.

**Worker semantics.**  ``workers=None`` or ``1`` means in-process
sequential execution; ``workers=0`` (:data:`AUTO_WORKERS`) means one
worker per available CPU; ``workers=N`` caps the pool at N processes.
The effective pool never exceeds the number of jobs.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: ``workers`` value meaning "one worker per available CPU".
AUTO_WORKERS = 0

#: Upper bound on an explicit worker request; catches nonsense values
#: (a request is still capped by the job count afterwards).
MAX_WORKERS = 256

#: Errors that mean "the pool could not do the work", as opposed to
#: "the mapped function raised": pool start-up failures, workers dying
#: and arguments/functions that cannot cross the process boundary.
#: Anything the mapped function itself raises propagates unchanged.
_POOL_ERRORS = (
    OSError,
    ImportError,
    NotImplementedError,
    BrokenProcessPool,
    pickle.PicklingError,
)

_pool_probe: Optional[bool] = None


def available_cpus() -> int:
    """Number of CPUs usable for worker processes (at least 1)."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int], jobs: int) -> int:
    """Effective worker count for ``jobs`` independent jobs.

    ``None`` and ``1`` resolve to 1 (in-process); :data:`AUTO_WORKERS`
    resolves to :func:`available_cpus`; any other positive value is
    taken as an upper bound.  The result never exceeds ``jobs``.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(f"workers must be an int, got {workers!r}")
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (0 = one per CPU), got {workers}"
        )
    if workers > MAX_WORKERS:
        raise ConfigurationError(
            f"workers must be <= {MAX_WORKERS}, got {workers}"
        )
    if workers == AUTO_WORKERS:
        workers = available_cpus()
    return max(1, min(workers, jobs))


def _probe_identity(x: int) -> int:
    """Module-level identity for the pool probe (must be picklable)."""
    return x


def pool_supported() -> bool:
    """Whether this platform can actually start a worker pool.

    Probes once per process by round-tripping a trivial job through a
    single-worker pool; the result is cached.  Used by benchmarks and
    the determinism suite to distinguish "parallel path exercised"
    from "parallel path fell back in-process".
    """
    global _pool_probe
    if _pool_probe is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _pool_probe = list(pool.map(_probe_identity, [7])) == [7]
        except Exception:  # pragma: no cover - platform dependent
            _pool_probe = False
    return _pool_probe


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Order-preserving map over independent jobs.

    With an effective worker count of 1 (the default) this is a plain
    in-process list comprehension.  With more, jobs are distributed
    over a process pool and the results are collected *in input
    order*, so callers observe exactly the sequential output.

    ``fn`` must be a pure module-level callable and ``items`` must be
    picklable; when either condition fails, or the platform cannot
    start worker processes at all, the map falls back in-process and
    still returns the identical result.  Exceptions raised by ``fn``
    propagate to the caller either way.
    """
    jobs = list(items)
    effective = resolve_workers(workers, len(jobs))
    if effective <= 1:
        return [fn(job) for job in jobs]
    try:
        # Probe before starting a pool: an unpicklable fn (lambda,
        # closure, bound method) surfaces as an AttributeError or
        # TypeError from deep inside the pool's feeder thread, so it
        # is far cleaner to detect it up front.
        pickle.dumps(fn)
    except Exception:
        return [fn(job) for job in jobs]
    try:
        with ProcessPoolExecutor(max_workers=effective) as pool:
            return list(pool.map(fn, jobs))
    except _POOL_ERRORS:
        # The pool infrastructure failed, not the jobs: rerun
        # in-process.  Safe because the mapped functions are pure.
        return [fn(job) for job in jobs]
