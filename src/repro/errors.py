"""Exception hierarchy for the repro package.

A small, explicit hierarchy so callers can distinguish configuration
mistakes (their fault, fix the config) from internal protocol violations
(our fault, a simulator bug worth reporting).
"""

from __future__ import annotations

from typing import Mapping, Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid simulator, DRAM or use-case configuration was supplied.

    Raised eagerly at construction time: a configuration object that
    exists is a configuration that can be simulated.
    """


class AddressError(ReproError):
    """An address fell outside the modelled memory capacity or was
    otherwise impossible to decode with the configured mapping."""


class ProtocolError(ReproError):
    """A DRAM command sequence violated the device protocol.

    For example reading from a bank with no open row under a policy
    that should have activated it first.  Seeing this exception means
    there is a bug in the controller model, not in user code.
    """


class TraceFormatError(ReproError):
    """A trace file line could not be parsed."""


class SimulationError(ReproError):
    """A simulation failed at runtime.

    Covers failures *inside* a simulation run (as opposed to rejected
    configurations, which raise :class:`ConfigurationError` before any
    simulation starts): injected faults, corrupted inputs discovered
    mid-run, and worker-side crashes surfaced by the sweep runners.
    """


class WorkerError(SimulationError):
    """A sweep worker failed while simulating one point.

    Raised by the sweep runners in ``strict`` mode instead of letting a
    bare worker exception propagate context-free.  Carries the sweep
    coordinates of the failed point (``coords``, e.g. level name,
    channel count and clock) and the worker-side traceback rendered as
    a string (``traceback``) so the failure can be attributed without
    re-running the sweep.
    """

    def __init__(
        self,
        message: str,
        coords: Optional[Mapping[str, object]] = None,
        traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.coords = dict(coords) if coords else {}
        self.traceback = traceback


class JobTimeoutError(SimulationError):
    """A supervised job exhausted its wall-clock deadline budget.

    Raised by :func:`repro.parallel.parallel_map` (in place of a
    result) when a job under watchdog supervision hung past its
    ``timeout_s`` deadline on every permitted attempt and
    ``capture_failures`` is off.  With ``capture_failures=True`` the
    same condition is captured as a quarantined
    :class:`~repro.resilience.report.JobFailure` instead.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint file could not be read or written."""


class RegressionError(ReproError):
    """A golden-baseline file could not be loaded or is malformed.

    Distinct from a *mismatch* (the engine drifting from the goldens),
    which is reported as data by the comparator so every failing cell
    can be shown at once; this exception covers the store itself being
    unusable -- missing files, unknown schema, corrupt JSON.
    """
