"""Exception hierarchy for the repro package.

A small, explicit hierarchy so callers can distinguish configuration
mistakes (their fault, fix the config) from internal protocol violations
(our fault, a simulator bug worth reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid simulator, DRAM or use-case configuration was supplied.

    Raised eagerly at construction time: a configuration object that
    exists is a configuration that can be simulated.
    """


class AddressError(ReproError):
    """An address fell outside the modelled memory capacity or was
    otherwise impossible to decode with the configured mapping."""


class ProtocolError(ReproError):
    """A DRAM command sequence violated the device protocol.

    For example reading from a bank with no open row under a policy
    that should have activated it first.  Seeing this exception means
    there is a bug in the controller model, not in user code.
    """


class TraceFormatError(ReproError):
    """A trace file line could not be parsed."""
