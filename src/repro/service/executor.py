"""Work units and the executor interface of the sweep service.

The coordinator (:mod:`repro.service.coordinator`) slices a sweep grid
into :class:`WorkUnit`\\ s and hands each one to an
:class:`Executor`.  The interface is deliberately narrow -- "run these
jobs, stream back per-job outcomes" -- so that *where* a unit runs is
a deployment decision, not an engine change: the built-in
:class:`LocalExecutor` fans a unit out over local worker processes,
and a remote executor (one that ships units to another machine and
streams outcomes back) slots in behind the identical contract without
touching the coordinator.

Failure semantics are inherited wholesale from
:func:`repro.parallel.parallel_map`: deterministic job failures come
back as :class:`~repro.resilience.report.JobFailure` records, hung
jobs are killed/requeued/quarantined under the per-executor watchdog
deadline, and transient pool failures retry and then fall back
in-process.  An executor never raises for a job-level problem -- only
for caller errors (a raising callback) or misconfiguration.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.resilience.report import JobFailure
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import Watchdog

#: Default jobs per work unit: small enough that a shard finishing
#: streams results (checkpoint lines, progress beats) at a readable
#: cadence, large enough that per-unit pool overhead amortises.
DEFAULT_SHARD_SIZE = 8


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a sweep grid: a contiguous slice of its jobs.

    ``positions`` are the jobs' global grid positions, so the
    coordinator can fold a unit's outcomes back into grid order no
    matter when (or where) the unit completes.
    """

    unit_id: int
    positions: Tuple[int, ...]
    jobs: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.jobs):
            raise ConfigurationError(
                f"work unit {self.unit_id}: {len(self.positions)} "
                f"position(s) vs {len(self.jobs)} job(s)"
            )
        if not self.jobs:
            raise ConfigurationError(f"work unit {self.unit_id} is empty")

    def __len__(self) -> int:
        return len(self.jobs)


def partition(
    positions: Sequence[int],
    jobs: Sequence[Any],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> List[WorkUnit]:
    """Slice ``jobs`` (with their grid ``positions``) into work units.

    Order-preserving contiguous slicing: unit *k* holds jobs
    ``[k*shard_size, (k+1)*shard_size)``.  Contiguity keeps checkpoint
    append order close to grid order, which keeps resume scans and
    human forensics pleasant; correctness never depends on it.
    """
    if shard_size < 1:
        raise ConfigurationError(
            f"shard_size must be >= 1, got {shard_size}"
        )
    if len(positions) != len(jobs):
        raise ConfigurationError(
            f"{len(positions)} position(s) vs {len(jobs)} job(s)"
        )
    units: List[WorkUnit] = []
    for start in range(0, len(jobs), shard_size):
        stop = start + shard_size
        units.append(
            WorkUnit(
                unit_id=len(units),
                positions=tuple(positions[start:stop]),
                jobs=tuple(jobs[start:stop]),
            )
        )
    return units


class Executor(ABC):
    """Something that can run one work unit's jobs to completion.

    ``execute`` must return one outcome per job, in the unit's job
    order: the computed value, or a
    :class:`~repro.resilience.report.JobFailure` for a job written off
    deterministically (including quarantine).  ``on_result`` /
    ``on_failure`` (when given) must be called with the *unit-local*
    index the moment each job settles, from the calling thread's
    process -- the coordinator builds its streaming fold (checkpoint
    appends, cache writes, progress beats) on that contract.
    Exceptions raised by the callbacks are caller errors and must
    propagate unchanged.
    """

    @abstractmethod
    def execute(
        self,
        fn: Callable[[Any], Any],
        unit: WorkUnit,
        on_result: Optional[Callable[[int, Any], None]] = None,
        on_failure: Optional[Callable[[int, JobFailure], None]] = None,
    ) -> List[Union[Any, JobFailure]]:
        """Run every job of ``unit``; outcomes in unit job order."""

    def describe(self) -> str:
        """Human-readable executor description for logs/metrics."""
        return type(self).__name__


class LocalExecutor(Executor):
    """Runs work units on local worker processes.

    A thin, thread-safe adapter over
    :func:`repro.parallel.parallel_map`: ``workers`` fans one unit's
    jobs out in-process or across a process pool, ``point_timeout``
    arms a fresh :class:`~repro.resilience.supervisor.Watchdog` per
    unit (the instance aggregates their kill/timeout/quarantine
    statistics across units, so the coordinator reports one set of
    supervision counters), ``retry`` overrides the transient-failure
    backoff.  Safe to call from multiple coordinator threads at once:
    each call builds its own watchdog and pool.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        point_timeout: Optional[float] = None,
    ) -> None:
        self.workers = workers
        self.retry = retry
        self.point_timeout = point_timeout
        self.timeouts = 0
        self.kills = 0
        self.quarantined = 0
        self._stats_lock = threading.Lock()

    def execute(
        self,
        fn: Callable[[Any], Any],
        unit: WorkUnit,
        on_result: Optional[Callable[[int, Any], None]] = None,
        on_failure: Optional[Callable[[int, JobFailure], None]] = None,
    ) -> List[Union[Any, JobFailure]]:
        from repro.parallel import parallel_map  # runtime import: no cycle

        watchdog = (
            Watchdog(self.point_timeout)
            if self.point_timeout is not None
            else None
        )
        try:
            return parallel_map(
                fn,
                unit.jobs,
                workers=self.workers,
                retry=self.retry,
                capture_failures=True,
                on_result=on_result,
                on_failure=on_failure,
                watchdog=watchdog,
            )
        finally:
            if watchdog is not None:
                with self._stats_lock:
                    self.timeouts += watchdog.timeouts
                    self.kills += watchdog.kills
                    self.quarantined += watchdog.quarantined

    def describe(self) -> str:
        deadline = (
            f", point_timeout={self.point_timeout:g}s"
            if self.point_timeout is not None
            else ""
        )
        return f"LocalExecutor(workers={self.workers!r}{deadline})"
