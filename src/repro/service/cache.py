"""Persistent content-addressed result store for sweep points.

The paper's headline figures are dense sweeps over (channels,
frequency, format) grids in which millions of hypothetical user
queries collapse onto a few thousand distinct configurations.  A
point's result is a pure function of its job description, so once one
process anywhere has simulated it, nobody should ever simulate it
again: :class:`ResultCache` is the disk store that turns repeated
points into lookups.

Keying
------

Entries are addressed by :func:`repro.keys.canonical_key` digests --
the sorted-JSON projection of the full job description (level,
configuration *including its backend*, scale, budget, block size)
hashed together with :data:`repro.keys.ENGINE_VERSION`.  The sweep
checkpoint uses the same function, so "same point" means the same
thing to both stores; changing any config field, the backend, or the
engine version changes the key and misses cleanly.

Layout and durability
---------------------

One file per entry, named ``<key>.rc`` under the cache directory:
a single JSON header line (format tag, key echo, payload SHA-256,
human-readable coords for ``grep``/``jq`` forensics) followed by the
zlib-compressed pickle of the result.  Writes are atomic -- the entry
is staged to a temp file in the same directory and :func:`os.replace`\\ d
into place -- so a concurrent reader sees either the old entry, the
new entry, or nothing, never a torn file.  Reads verify the header's
payload digest before unpickling; any damage (truncation, bit rot, a
foreign file) degrades to a miss with a :class:`CacheWarning` and the
corrupt entry is removed so it cannot warn forever.  A failure is
*never* raised out of :meth:`get`: a broken cache must cost a
recompute, not a sweep.

Failures are never cached: :meth:`put` refuses
:class:`~repro.resilience.report.JobFailure` payloads loudly, so a
quarantined or ERR point is always re-attempted by the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.resilience.report import JobFailure

PathLike = Union[str, Path]

#: Format tag written into (and demanded from) every entry header.
CACHE_FORMAT = "repro-cache/1"

#: File suffix of one cache entry.
ENTRY_SUFFIX = ".rc"


class CacheWarning(UserWarning):
    """A cache entry had to be ignored (corrupt, torn or foreign)."""


def _blob_digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Content-addressed store of completed sweep points.

    ``directory`` is created on first write.  ``max_entries`` bounds
    the store: inserting past the bound evicts the least recently
    *written* entries (mtime order; reads do not refresh it -- the
    store optimises for campaign replays, where whole grids are
    written and read together, over point-wise recency).

    The instance accumulates hit/miss/corruption/eviction statistics
    (:meth:`stats`); the sweep layer mirrors them into telemetry as
    ``cache.hits`` / ``cache.misses`` / ``cache.corrupt`` /
    ``cache.evictions`` counters.
    """

    def __init__(
        self, directory: PathLike, max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 when given, got {max_entries}"
            )
        # expanduser so a quoted "~/.cache/repro" from the CLI or a
        # config file lands in the home directory, not a literal "~".
        self.directory = Path(directory).expanduser()
        self.max_entries = max_entries
        self._stats = {
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "writes": 0,
            "evictions": 0,
        }

    # -- bookkeeping --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Copy of this instance's lookup/write statistics."""
        return dict(self._stats)

    def entry_path(self, key: str) -> Path:
        """On-disk path of one entry (exists only if cached)."""
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}{ENTRY_SUFFIX}"

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key``.

        Statistics-neutral (no hit/miss is charged) and content-blind:
        the entry may still prove corrupt when actually read.  Used to
        avoid rewriting entries that are already present.
        """
        return self.entry_path(key).exists()

    def __len__(self) -> int:
        """Number of entry files currently on disk."""
        try:
            return sum(
                1
                for name in os.listdir(self.directory)
                if name.endswith(ENTRY_SUFFIX)
            )
        except OSError:
            return 0

    def clear(self) -> None:
        """Delete every entry (the directory itself is kept)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(ENTRY_SUFFIX):
                try:
                    os.unlink(self.directory / name)
                except OSError:
                    pass

    # -- lookups ------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Corrupt entries (torn writes, bit rot, foreign files) count as
        misses: they warn with :class:`CacheWarning`, are deleted, and
        the caller recomputes.  Nothing raises out of here -- a cache
        must never be able to fail a sweep.
        """
        path = self.entry_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self._stats["misses"] += 1
            return None
        payload = self._decode(key, raw)
        if payload is None:
            self._stats["corrupt"] += 1
            self._stats["misses"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._stats["hits"] += 1
        return payload

    def _decode(self, key: str, raw: bytes) -> Optional[Any]:
        """Parse one entry file; ``None`` means corrupt (warned)."""
        newline = raw.find(b"\n")
        if newline < 0:
            self._warn(key, "no header line (torn write?)")
            return None
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._warn(key, "unreadable header")
            return None
        if not isinstance(header, dict) or header.get("format") != CACHE_FORMAT:
            self._warn(
                key,
                f"foreign format {header.get('format')!r}"
                if isinstance(header, dict)
                else "header is not an object",
            )
            return None
        if header.get("key") != key:
            self._warn(key, f"header names key {header.get('key')!r}")
            return None
        blob = raw[newline + 1 :]
        if _blob_digest(blob) != header.get("sha256"):
            self._warn(key, "payload digest mismatch (truncated or corrupt)")
            return None
        try:
            return pickle.loads(zlib.decompress(blob))
        except Exception:
            # The digest matched, so this is a version skew (pickle
            # from an incompatible tree), not damage -- same remedy.
            self._warn(key, "payload does not unpickle")
            return None

    def _warn(self, key: str, reason: str) -> None:
        warnings.warn(
            CacheWarning(
                f"cache entry {key[:12]}... in {self.directory} ignored: "
                f"{reason}; the point will be recomputed"
            ),
            stacklevel=4,
        )

    # -- writes -------------------------------------------------------------

    def put(
        self, key: str, payload: Any, coords: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Store ``payload`` under ``key`` atomically.

        ``coords`` is a small human-readable dict echoed into the
        header for forensics.  :class:`JobFailure` payloads are
        refused with :class:`ValueError`: failed and quarantined
        points must be retried by future runs, never served.
        An unwritable cache directory degrades to a warning -- the
        sweep computed the point either way.
        """
        if isinstance(payload, JobFailure):
            raise ValueError(
                "refusing to cache a JobFailure: failed/quarantined sweep "
                "points must be recomputed, not served from the cache"
            )
        blob = zlib.compress(pickle.dumps(payload))
        header = json.dumps(
            {
                "format": CACHE_FORMAT,
                "key": key,
                "sha256": _blob_digest(blob),
                "coords": dict(coords) if coords else {},
            },
            sort_keys=True,
        ).encode("utf-8")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, staging = tempfile.mkstemp(
                prefix=".staging-", suffix=ENTRY_SUFFIX + ".tmp",
                dir=self.directory,
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(b"\n")
                    handle.write(blob)
                os.replace(staging, self.entry_path(key))
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
                raise
        except OSError as exc:
            warnings.warn(
                CacheWarning(
                    f"could not write cache entry under {self.directory}: "
                    f"{exc}; the sweep continues uncached"
                ),
                stacklevel=2,
            )
            return
        self._stats["writes"] += 1
        if self.max_entries is not None:
            self._evict_over(self.max_entries)

    def _evict_over(self, bound: int) -> None:
        """Drop least-recently-written entries past ``bound``.

        Victims are ordered by nanosecond write time with the entry
        name (the content key) as tie-break: filesystem timestamps can
        be coarse -- whole seconds on some filesystems -- and a grid
        whose writes land within one clock tick must still evict the
        same entries on every run, on every machine.  The float
        ``st_mtime`` would additionally round distinct nanosecond
        stamps together; ``st_mtime_ns`` keeps the primary order
        exact.
        """
        try:
            entries = [
                self.directory / name
                for name in os.listdir(self.directory)
                if name.endswith(ENTRY_SUFFIX)
            ]
        except OSError:
            return
        if len(entries) <= bound:
            return
        def mtime_ns(path: Path) -> int:
            try:
                return path.stat().st_mtime_ns
            except OSError:
                return 0
        entries.sort(key=lambda path: (mtime_ns(path), path.name))
        for path in entries[: len(entries) - bound]:
            try:
                os.unlink(path)
            except OSError:
                continue
            self._stats["evictions"] += 1


def resolve_cache(
    cache: Optional[Union[PathLike, ResultCache]]
) -> Optional[ResultCache]:
    """Normalise a ``cache=`` argument: path-likes become stores."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
