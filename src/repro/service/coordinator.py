"""Sharded sweep coordinator: the sweep engine as an async job service.

:func:`sweep_use_case` runs one grid as one ``parallel_map`` call.
That is the right shape for a laptop, but it welds the sweep to a
single local pool: there is no unit of work smaller than "the whole
grid" to hand to anything else.  The coordinator here re-expresses a
sweep as a *service*: the grid is partitioned into
:class:`~repro.service.executor.WorkUnit` shards, each shard is
dispatched to an :class:`~repro.service.executor.Executor` (today the
in-tree :class:`~repro.service.executor.LocalExecutor`; a remote
executor slots in behind the same interface), and the coordinator
folds streamed outcomes back into grid order through exactly the
stores the engine already trusts -- the JSON-lines checkpoint, the
content-addressed result cache, telemetry counters and progress
beats.

The coordination layer is deliberately thin on semantics: keys,
checkpoint format, cache format, quarantine rules and the refusal to
mix backends are all the engine's (imported from
:mod:`repro.analysis.sweep` and :mod:`repro.resilience`), so a sweep
run through the service is bit-identical to -- and shares stored work
with -- one run through :func:`sweep_use_case`.

Concurrency model: the coordinator is an ``asyncio`` event loop
dispatching units onto worker threads (:func:`asyncio.to_thread`),
bounded by ``max_inflight``.  Executor outcome callbacks fire on those
threads, so the fold (checkpoint append, cache write, progress beat,
counter bump) is serialised under one lock -- the checkpoint file has
a single append cursor no matter how many units are in flight.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.sweep import (
    SweepJob,
    SweepPoint,
    _fold_reuse,
    _job_coords,
    _job_description,
    _refuse_backend_mixing,
    _sweep_point_job,
    job_keys,
)
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, WorkerError
from repro.load.model import DEFAULT_BLOCK_BYTES
from repro.load.scaling import DEFAULT_CHUNK_BUDGET
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.report import JobFailure, SweepReport
from repro.service.cache import ResultCache, resolve_cache
from repro.service.executor import (
    DEFAULT_SHARD_SIZE,
    Executor,
    LocalExecutor,
    WorkUnit,
    partition,
)
from repro.telemetry.progress import ProgressSink, SweepProgress
from repro.telemetry.session import Telemetry
from repro.usecase.levels import H264Level
from repro.workloads.registry import WorkloadLike, resolve_workload

#: Default bound on units dispatched concurrently.  Units already fan
#: out internally (the local executor runs one pool per unit), so a
#: small in-flight window keeps the fold streaming without stacking
#: pools.
DEFAULT_MAX_INFLIGHT = 4


class SweepCoordinator:
    """Partitions sweep grids into work units and runs them through an
    executor, folding outcomes into the engine's stores.

    One coordinator instance is reusable across runs; per-run state
    (results, locks, counters) lives in the ``run`` call.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.executor = executor if executor is not None else LocalExecutor()
        self.shard_size = shard_size
        self.max_inflight = max_inflight

    async def run(
        self,
        levels: Sequence[H264Level],
        configs: Sequence[SystemConfig],
        scale: Optional[float] = None,
        chunk_budget: int = DEFAULT_CHUNK_BUDGET,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        checkpoint: Optional[Union[str, Path, SweepCheckpoint]] = None,
        cache: Optional[Union[str, Path, ResultCache]] = None,
        strict: bool = True,
        telemetry: Optional[Telemetry] = None,
        progress: Optional[ProgressSink] = None,
        backend: Optional[str] = None,
        checkpoint_force: bool = False,
        durable_checkpoint: bool = False,
        workload: WorkloadLike = None,
    ) -> SweepReport:
        """Run the levels x configs grid through the executor.

        ``workload`` selects the declarative traffic model every point
        simulates (``None`` = the default ``h264_camcorder``); the
        workload identity is part of every point's canonical key.

        Accepts the same stores and semantics as
        :func:`repro.analysis.sweep.sweep_use_case` (checkpoint
        resume, backend-mixing refusal, content-addressed cache,
        ``strict`` fail-fast vs graceful degradation) and returns the
        same :class:`~repro.resilience.report.SweepReport`, with
        points in levels-major grid order bit-identical to the
        single-process engine.
        """
        if not levels or not configs:
            raise ConfigurationError(
                "sweep needs at least one level and one config"
            )
        if backend is not None:
            configs = [config.with_backend(backend) for config in configs]
        bound = resolve_workload(workload)
        jobs: List[SweepJob] = [
            (index, level, config, scale, chunk_budget, block_bytes, bound)
            for index, (level, config) in enumerate(
                (level, config) for level in levels for config in configs
            )
        ]

        if isinstance(checkpoint, SweepCheckpoint):
            store: Optional[SweepCheckpoint] = checkpoint
            if durable_checkpoint:
                store.fsync = True
        elif checkpoint is not None:
            store = SweepCheckpoint(checkpoint, fsync=durable_checkpoint)
        else:
            store = None
        cache_store = resolve_cache(cache)
        if store is not None:
            _refuse_backend_mixing(store, configs, checkpoint_force)
        keys = job_keys(jobs)
        cache_before = (
            cache_store.stats() if cache_store is not None else {}
        )
        results, resumed, cache_hits, resumed_failures, pending_positions = (
            _fold_reuse(jobs, keys, store, cache_store)
        )
        pending_jobs = [jobs[position] for position in pending_positions]
        units = (
            partition(pending_positions, pending_jobs, self.shard_size)
            if pending_jobs
            else []
        )

        if telemetry is not None:
            registry = telemetry.registry
            registry.counter("sweep.points_total").add(len(jobs))
            for name in sorted({config.backend for config in configs}):
                registry.counter(f"sweep.backend.{name}").add(1)
            registry.counter("sweep.points_resumed").add(resumed)
            registry.counter("sweep.points_completed").add(0)
            registry.counter("service.units_total").add(len(units))
            registry.counter("service.units_completed").add(0)
            if cache_store is not None:
                registry.counter("sweep.points_cached").add(cache_hits)
                for name in (
                    "cache.hits", "cache.misses", "cache.corrupt",
                    "cache.evictions",
                ):
                    registry.counter(name).add(0)
        tracker = (
            SweepProgress(progress, total=len(jobs), resumed=resumed)
            if progress is not None
            else None
        )

        # Executor callbacks fire on dispatch threads; everything they
        # touch (checkpoint append cursor, cache writes, telemetry
        # registry, progress tracker) folds under one lock.
        fold_lock = threading.Lock()

        def on_unit_result(unit: WorkUnit, local: int, point: SweepPoint) -> None:
            position = unit.positions[local]
            with fold_lock:
                if store is not None:
                    store.record(
                        keys[position], _job_coords(jobs[position]), point
                    )
                if cache_store is not None:
                    cache_store.put(
                        keys[position], point, _job_coords(jobs[position])
                    )
                if telemetry is not None:
                    telemetry.registry.counter("sweep.points_completed").add(1)
                if tracker is not None:
                    tracker.point_done(_job_coords(jobs[position]))

        def on_unit_failure(
            unit: WorkUnit, local: int, failure: JobFailure
        ) -> None:
            if store is None or not failure.quarantined:
                # Deterministic errors are recomputed on resume; only
                # quarantines (the points that would re-hang) persist.
                return
            position = unit.positions[local]
            with fold_lock:
                store.record(
                    keys[position],
                    _job_coords(jobs[position]),
                    replace(
                        failure,
                        index=position,
                        coords=_job_coords(jobs[position]),
                    ),
                )

        gate = asyncio.Semaphore(self.max_inflight)

        async def run_unit(unit: WorkUnit) -> List[object]:
            async with gate:
                outcomes = await asyncio.to_thread(
                    self.executor.execute,
                    _sweep_point_job,
                    unit,
                    lambda local, point, _unit=unit: on_unit_result(
                        _unit, local, point
                    ),
                    lambda local, failure, _unit=unit: on_unit_failure(
                        _unit, local, failure
                    ),
                )
                if telemetry is not None:
                    with fold_lock:
                        telemetry.registry.counter(
                            "service.units_completed"
                        ).add(1)
                return outcomes

        sweep_timer = (
            telemetry.registry.timer("sweep.run")
            if telemetry is not None
            else None
        )
        start = time.perf_counter()
        unit_outcomes = await asyncio.gather(
            *(run_unit(unit) for unit in units)
        )
        if sweep_timer is not None:
            sweep_timer.record(time.perf_counter() - start)
        if telemetry is not None and cache_store is not None:
            cache_after = cache_store.stats()
            for name in ("hits", "misses", "corrupt", "evictions"):
                telemetry.registry.counter(f"cache.{name}").add(
                    cache_after[name] - cache_before.get(name, 0)
                )

        failures: List[JobFailure] = list(resumed_failures)
        for unit, outcomes in zip(units, unit_outcomes):
            for local, outcome in enumerate(outcomes):
                position = unit.positions[local]
                if isinstance(outcome, JobFailure):
                    failures.append(
                        replace(
                            outcome,
                            index=position,
                            coords=_job_coords(jobs[position]),
                        )
                    )
                else:
                    results[position] = outcome
        failures.sort(key=lambda failure: failure.index)

        if telemetry is not None:
            telemetry.registry.counter("sweep.points_failed").add(len(failures))
        if tracker is not None:
            tracker.finish(failed=len(failures))

        if strict and failures:
            first = failures[0]
            raise WorkerError(
                f"sweep point {dict(first.coords)} failed: "
                f"{first.error_type}: {first.message}",
                coords=first.coords,
                traceback=first.traceback,
            )
        return SweepReport(
            points=[point for point in results if point is not None],
            failures=failures,
            total=len(jobs),
            resumed=resumed,
            cached=cache_hits,
        )


def run_service_sweep(
    levels: Sequence[H264Level],
    configs: Sequence[SystemConfig],
    scale: Optional[float] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    executor: Optional[Executor] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    checkpoint: Optional[Union[str, Path, SweepCheckpoint]] = None,
    cache: Optional[Union[str, Path, ResultCache]] = None,
    strict: bool = True,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[ProgressSink] = None,
    backend: Optional[str] = None,
    checkpoint_force: bool = False,
    durable_checkpoint: bool = False,
    workload: WorkloadLike = None,
) -> SweepReport:
    """Synchronous front door of the sweep service.

    Builds a :class:`SweepCoordinator` and drives one grid through it
    on a private event loop; see :meth:`SweepCoordinator.run` for the
    semantics.  Raises :class:`~repro.errors.ConfigurationError` when
    called from inside a running event loop -- an async caller should
    ``await`` the coordinator directly instead of nesting loops.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise ConfigurationError(
            "run_service_sweep starts its own event loop; await "
            "SweepCoordinator.run(...) from async code instead"
        )
    coordinator = SweepCoordinator(
        executor=executor, shard_size=shard_size, max_inflight=max_inflight
    )
    return asyncio.run(
        coordinator.run(
            levels,
            configs,
            scale=scale,
            chunk_budget=chunk_budget,
            block_bytes=block_bytes,
            checkpoint=checkpoint,
            cache=cache,
            strict=strict,
            telemetry=telemetry,
            progress=progress,
            backend=backend,
            checkpoint_force=checkpoint_force,
            durable_checkpoint=durable_checkpoint,
            workload=workload,
        )
    )
