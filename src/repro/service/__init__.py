"""Sweep-as-a-service: sharded coordination and the persistent result
cache.

- :mod:`repro.service.cache` -- content-addressed on-disk store of
  completed sweep points, keyed by :func:`repro.keys.canonical_key`.
- :mod:`repro.service.executor` -- work units and the executor
  interface (local today, remote-ready by contract).
- :mod:`repro.service.coordinator` -- the async coordinator that
  partitions grids into units and folds streamed outcomes through the
  checkpoint/cache/telemetry stores.

Attribute access is lazy (PEP 562): the coordinator imports the sweep
engine, and the sweep engine imports :mod:`repro.service.cache`, so an
eager ``from .coordinator import ...`` here would turn that chain into
an import cycle.  ``from repro.service import SweepCoordinator`` still
works -- it just resolves on first touch.
"""

from __future__ import annotations

from typing import List

_EXPORTS = {
    "CacheWarning": "repro.service.cache",
    "ResultCache": "repro.service.cache",
    "resolve_cache": "repro.service.cache",
    "DEFAULT_SHARD_SIZE": "repro.service.executor",
    "Executor": "repro.service.executor",
    "LocalExecutor": "repro.service.executor",
    "WorkUnit": "repro.service.executor",
    "partition": "repro.service.executor",
    "DEFAULT_MAX_INFLIGHT": "repro.service.coordinator",
    "SweepCoordinator": "repro.service.coordinator",
    "run_service_sweep": "repro.service.coordinator",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
