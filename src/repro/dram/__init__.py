"""DRAM device models.

This subpackage models the paper's theoretical *next-generation mobile
DDR SDRAM*: a 512 Mb, four-bank, 32-bit-wide double-data-rate device
whose interface clock spans 200-533 MHz.  It provides:

- :mod:`repro.dram.commands` -- the DRAM command set,
- :mod:`repro.dram.timing` -- timing parameters and their frequency
  extrapolation,
- :mod:`repro.dram.datasheet` -- the calibrated base parameter/current
  sets (the paper's Micron Mobile DDR extrapolation),
- :mod:`repro.dram.device` -- bank-cluster geometry and bank state,
- :mod:`repro.dram.refresh` -- refresh parameters,
- :mod:`repro.dram.powerstate` -- power-down policies,
- :mod:`repro.dram.power` -- the current-integration power model.
"""

from repro.dram.commands import Command
from repro.dram.timing import TimingParameters, TimingCycles
from repro.dram.datasheet import (
    CurrentSet,
    DeviceDescriptor,
    next_gen_mobile_ddr,
    NEXT_GEN_MOBILE_DDR,
)
from repro.dram.device import BankClusterGeometry, BankState
from repro.dram.refresh import RefreshParameters
from repro.dram.powerstate import (
    PowerDownPolicy,
    ImmediatePowerDown,
    TimeoutPowerDown,
    NoPowerDown,
)
from repro.dram.power import EnergyBreakdown, PowerModel
from repro.dram.protocol import CommandRecord, ProtocolChecker, ProtocolViolation

__all__ = [
    "CommandRecord",
    "ProtocolChecker",
    "ProtocolViolation",
    "Command",
    "TimingParameters",
    "TimingCycles",
    "CurrentSet",
    "DeviceDescriptor",
    "next_gen_mobile_ddr",
    "NEXT_GEN_MOBILE_DDR",
    "BankClusterGeometry",
    "BankState",
    "RefreshParameters",
    "PowerDownPolicy",
    "ImmediatePowerDown",
    "TimeoutPowerDown",
    "NoPowerDown",
    "EnergyBreakdown",
    "PowerModel",
]
