"""Calibrated parameter sets for the paper's *next-generation mobile
DDR SDRAM*.

Section III: the bank clusters are "based on our best estimations on
the next generation mobile DDR SDRAM", because "no 3D integration
compatible standard memory components exist at this time".  Timing and
power are "estimated according to the contemporary Mobile DDR SDRAM
devices" (Micron 512 Mb x32 Mobile DDR, 133-200 MHz [12]-[14]), with
frequency-linked parameters extrapolated over the DDR2 clock range
(200-533 MHz) and the core voltage projected to 1.35 V; the I/O voltage
is projected to 1.2 V.

The paper never publishes its extrapolated numbers, so the values here
are reconstructed the same way the authors describe and then
**calibrated** so the published anchors hold at 400 MHz:

- single-channel 720p30 recording ~ 150 mW, 8-channel ~ 205 mW,
- 4-channel 1080p30 ~ 345 mW,
- 8-channel 2160p30 ~ 1280 mW (4 %-25 % of the 5 W XDR reference).

Each constant is annotated with its provenance.  The power-down
currents are *effective* values: they fold in the per-channel
controller/interconnect clocking the paper's channel model charges to
an idle channel (Fig. 5 implies about 7-8 mW per idle channel at
400 MHz, well above a bare Mobile DDR die's sub-milliwatt IDD2P).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParameters
from repro.dram.device import BankClusterGeometry
from repro.dram.refresh import RefreshParameters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CurrentSet:
    """IDD operating currents (mA) at a reference clock and voltage.

    The naming follows the Micron power-calculation methodology
    (Micron TN-46-03, reference [13] of the paper).  Currents are
    scaled to other operating points by :class:`repro.dram.power.PowerModel`:

    - background currents scale as ``0.5 + 0.5 * f/f0`` (half static,
      half clock-tree),
    - switching increments (bursts, activates, refreshes) scale
      linearly with ``f/f0``,
    - all powers scale with ``(V/V0)**2``.
    """

    #: Reference clock (MHz) and core voltage (V) of the quoted currents.
    reference_freq_mhz: float
    reference_voltage_v: float

    #: IDD0: one-bank activate-precharge cycling at tRC.
    idd0_ma: float
    #: IDD2P: precharge power-down (effective, incl. channel clocking).
    idd2p_ma: float
    #: IDD2N: precharge standby (all banks idle, CKE high).
    idd2n_ma: float
    #: IDD3P: active power-down (row open, CKE low).
    idd3p_ma: float
    #: IDD3N: active standby (row open, CKE high, no data).
    idd3n_ma: float
    #: IDD4R: continuous burst read.
    idd4r_ma: float
    #: IDD4W: continuous burst write.
    idd4w_ma: float
    #: IDD5: auto-refresh current averaged over tRFC.
    idd5_ma: float
    #: IDD6: self refresh (unused by the evaluated policies, kept for
    #: completeness and the extension experiments).
    idd6_ma: float

    def __post_init__(self) -> None:
        if self.reference_freq_mhz <= 0 or self.reference_voltage_v <= 0:
            raise ConfigurationError("reference operating point must be positive")
        for name in (
            "idd0_ma",
            "idd2p_ma",
            "idd2n_ma",
            "idd3p_ma",
            "idd3n_ma",
            "idd4r_ma",
            "idd4w_ma",
            "idd5_ma",
            "idd6_ma",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.idd4r_ma < self.idd3n_ma or self.idd4w_ma < self.idd3n_ma:
            raise ConfigurationError(
                "burst currents must be at least the active-standby current"
            )
        if self.idd0_ma < self.idd3n_ma:
            raise ConfigurationError(
                "IDD0 must be at least the active-standby current"
            )


@dataclass(frozen=True)
class DeviceDescriptor:
    """Complete description of one bank cluster (one channel's DRAM).

    Bundles geometry, timing, refresh and current parameters together
    with the projected operating voltage so a channel model can be
    built from a single object.
    """

    name: str
    geometry: BankClusterGeometry
    timing: TimingParameters
    refresh: RefreshParameters
    currents: CurrentSet
    #: Projected core supply voltage, V (the paper projects 1.35 V).
    core_voltage_v: float
    #: Projected I/O supply voltage, V (the paper estimates 1.2 V for
    #: the interface-power equation).
    io_voltage_v: float

    def __post_init__(self) -> None:
        if self.core_voltage_v <= 0 or self.io_voltage_v <= 0:
            raise ConfigurationError("supply voltages must be positive")

    def at_temperature(self, temperature_c: float) -> "DeviceDescriptor":
        """Return this device derated for a die temperature.

        Above 85 degC the refresh interval halves (see
        :meth:`repro.dram.refresh.RefreshParameters.derated`), doubling
        the refresh duty in both the timing engine and the power
        model.  At or below the threshold, returns ``self``.
        """
        derated = self.refresh.derated(temperature_c)
        if derated is self.refresh:
            return self
        import dataclasses

        timing = dataclasses.replace(
            self.timing, t_refi_ns=derated.interval_ns
        )
        return dataclasses.replace(
            self,
            name=f"{self.name}@{temperature_c:g}C",
            timing=timing,
            refresh=derated,
        )

    def peak_bandwidth_bytes_per_s(self, freq_mhz: float) -> float:
        """Theoretical peak data bandwidth of one channel in bytes/s.

        A 32-bit DDR interface moves ``2 * 4`` bytes per clock:
        3.2 GB/s per channel at 400 MHz, hence the paper's 25.6 GB/s
        raw for eight channels.
        """
        self.timing.validate_frequency(freq_mhz)
        bytes_per_cycle = 2 * (self.geometry.word_bits // 8)
        return bytes_per_cycle * freq_mhz * 1e6


def next_gen_mobile_ddr() -> DeviceDescriptor:
    """Build the calibrated next-generation mobile DDR SDRAM descriptor.

    Timing provenance (Micron 512 Mb x32 Mobile DDR, -5 speed grade at
    200 MHz, reference [12]):

    ========== ========= =========================================
    parameter   value     datasheet origin
    ========== ========= =========================================
    tRCD        15 ns     3 clocks at 5 ns
    tRP         15 ns     3 clocks at 5 ns
    tRAS        40 ns     8 clocks at 5 ns
    tRC         55 ns     tRAS + tRP
    tRRD        10 ns     2 clocks at 5 ns
    tWR         15 ns     3 clocks at 5 ns
    tRFC        72 ns     auto-refresh cycle
    tREFI       7.8 us    64 ms / 8192 rows
    CAS         15 ns     CL=3 at 200 MHz, kept constant in ns
    BL          4 words   paper: "minimum DRAM burst size is four"
    ========== ========= =========================================

    Current provenance: IDD shapes follow the Micron Mobile DDR power
    notes ([13], [14]); absolute values are calibrated to the paper's
    Fig. 5 anchors as described in the module docstring.
    """
    geometry = BankClusterGeometry(
        capacity_bits=512 * 2**20,  # 512 Mb per bank cluster (Section III)
        banks=4,  # "The bank cluster contains four banks"
        word_bits=32,  # "The word width of a data access is 32 bits"
        row_bytes=4096,  # x32 device, 1024 columns of 4 bytes
    )
    timing = TimingParameters(
        t_rcd_ns=15.0,
        t_rp_ns=15.0,
        t_ras_ns=40.0,
        t_rc_ns=55.0,
        t_rrd_ns=10.0,
        t_wr_ns=15.0,
        t_rfc_ns=72.0,
        t_refi_ns=7800.0,
        cas_ns=15.0,
        burst_length=4,
        write_latency_cycles=1,
        t_wtr_cycles=2,
        t_rtw_gap_cycles=1,
        t_xp_cycles=2,
        t_cke_cycles=1,
        f_min_mhz=200.0,
        f_max_mhz=533.0,
    )
    refresh = RefreshParameters(
        interval_ns=7800.0,
        all_bank=True,
    )
    currents = CurrentSet(
        reference_freq_mhz=200.0,
        reference_voltage_v=1.8,
        idd0_ma=65.0,
        idd2p_ma=6.5,  # effective: device IDD2P + channel clocking (see module doc)
        idd2n_ma=18.0,
        idd3p_ma=10.0,  # effective, same reasoning as idd2p
        idd3n_ma=22.0,
        idd4r_ma=118.0,
        idd4w_ma=108.0,
        idd5_ma=120.0,
        idd6_ma=0.35,
    )
    return DeviceDescriptor(
        name="next-gen-mobile-ddr-512Mb-x32",
        geometry=geometry,
        timing=timing,
        refresh=refresh,
        currents=currents,
        core_voltage_v=1.35,
        io_voltage_v=1.2,
    )


def contemporary_mobile_ddr() -> DeviceDescriptor:
    """The paper's baseline device: a contemporary (2008) Micron-class
    512 Mb x32 Mobile DDR SDRAM (reference [12]).

    Same core timings as the next-generation projection (they were
    extrapolated *from* this device) but limited to the Mobile DDR
    clock range (133-200 MHz) and the 1.8 V supply.  Currents are the
    device-only values -- in particular the true sub-milliamp
    power-down currents, without the next-generation model's effective
    per-channel clocking overhead.  Useful as the "what you could buy
    in 2008" comparison point.
    """
    base = next_gen_mobile_ddr()
    timing = TimingParameters(
        t_rcd_ns=base.timing.t_rcd_ns,
        t_rp_ns=base.timing.t_rp_ns,
        t_ras_ns=base.timing.t_ras_ns,
        t_rc_ns=base.timing.t_rc_ns,
        t_rrd_ns=base.timing.t_rrd_ns,
        t_wr_ns=base.timing.t_wr_ns,
        t_rfc_ns=base.timing.t_rfc_ns,
        t_refi_ns=base.timing.t_refi_ns,
        cas_ns=base.timing.cas_ns,
        burst_length=base.timing.burst_length,
        write_latency_cycles=base.timing.write_latency_cycles,
        t_wtr_cycles=base.timing.t_wtr_cycles,
        t_rtw_gap_cycles=base.timing.t_rtw_gap_cycles,
        t_xp_cycles=base.timing.t_xp_cycles,
        t_cke_cycles=base.timing.t_cke_cycles,
        f_min_mhz=133.0,
        f_max_mhz=200.0,
    )
    currents = CurrentSet(
        reference_freq_mhz=200.0,
        reference_voltage_v=1.8,
        idd0_ma=65.0,
        idd2p_ma=0.6,  # device-only power-down (Micron Mobile DDR class)
        idd2n_ma=18.0,
        idd3p_ma=2.0,
        idd3n_ma=22.0,
        idd4r_ma=118.0,
        idd4w_ma=108.0,
        idd5_ma=120.0,
        idd6_ma=0.35,
    )
    return DeviceDescriptor(
        name="mobile-ddr-512Mb-x32-2008",
        geometry=base.geometry,
        timing=timing,
        refresh=base.refresh,
        currents=currents,
        core_voltage_v=1.8,
        io_voltage_v=1.8,
    )


def standard_ddr2() -> DeviceDescriptor:
    """A standard (non-mobile) DDR2-class 512 Mb x32 device.

    The paper's reference [14] (Micron, "Low-Power Versus Standard DDR
    SDRAM") motivates mobile parts by their drastically lower standby
    and power-down currents.  This descriptor captures a standard
    DDR2-class current profile at the same 200-533 MHz clock range so
    the device-comparison benchmark can quantify that argument: similar
    bandwidth, several times the background power.
    """
    base = next_gen_mobile_ddr()
    currents = CurrentSet(
        reference_freq_mhz=200.0,
        reference_voltage_v=1.8,
        idd0_ma=90.0,
        idd2p_ma=35.0,  # standard DDR2 fast-exit power-down
        idd2n_ma=50.0,
        idd3p_ma=40.0,
        idd3n_ma=55.0,
        idd4r_ma=200.0,
        idd4w_ma=190.0,
        idd5_ma=210.0,
        idd6_ma=7.0,
    )
    return DeviceDescriptor(
        name="standard-ddr2-512Mb-x32",
        geometry=base.geometry,
        timing=base.timing,
        refresh=base.refresh,
        currents=currents,
        core_voltage_v=1.8,
        io_voltage_v=1.8,
    )


#: Shared immutable default descriptor (safe to reuse: frozen dataclasses).
NEXT_GEN_MOBILE_DDR = next_gen_mobile_ddr()

#: The 2008-era Mobile DDR baseline (133-200 MHz, 1.8 V).
CONTEMPORARY_MOBILE_DDR = contemporary_mobile_ddr()

#: A standard DDR2-class device with non-mobile current profile.
STANDARD_DDR2 = standard_ddr2()
