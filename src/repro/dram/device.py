"""Bank-cluster geometry and per-bank state.

The paper's memory subsystem has *M* parallel channels; each channel
ends in a **bank cluster** -- "one or more memory banks" with a total
capacity of 512 Mb, four banks, and a 32-bit data word (Section III).
This module describes that geometry and the mutable run-time state of
each bank the controller engine updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AddressError, ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class BankClusterGeometry:
    """Static geometry of one bank cluster (one channel's DRAM).

    All sizes are powers of two so that address decoding reduces to
    shifts and masks, exactly as a hardware memory controller does it.
    """

    #: Total capacity in bits (the paper: 512 Mb).
    capacity_bits: int
    #: Number of banks (the paper: 4).
    banks: int
    #: Data word width in bits (the paper: 32).
    word_bits: int
    #: Row (page) size in bytes.
    row_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0 or self.capacity_bits % 8:
            raise ConfigurationError(
                f"capacity_bits must be a positive multiple of 8, got {self.capacity_bits}"
            )
        if not _is_power_of_two(self.banks):
            raise ConfigurationError(f"banks must be a power of two, got {self.banks}")
        if self.word_bits % 8 or not _is_power_of_two(self.word_bits // 8):
            raise ConfigurationError(
                f"word_bits must be 8 * power-of-two, got {self.word_bits}"
            )
        if not _is_power_of_two(self.row_bytes):
            raise ConfigurationError(
                f"row_bytes must be a power of two, got {self.row_bytes}"
            )
        if not _is_power_of_two(self.capacity_bytes):
            raise ConfigurationError(
                f"capacity must be a power of two in bytes, got {self.capacity_bytes}"
            )
        if self.rows_per_bank < 1:
            raise ConfigurationError(
                "geometry inconsistent: capacity smaller than banks * row size"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes (64 MB for the 512 Mb cluster)."""
        return self.capacity_bits // 8

    @property
    def word_bytes(self) -> int:
        """Data word width in bytes."""
        return self.word_bits // 8

    @property
    def bank_bytes(self) -> int:
        """Capacity of one bank in bytes."""
        return self.capacity_bytes // self.banks

    @property
    def rows_per_bank(self) -> int:
        """Number of rows in each bank."""
        return self.bank_bytes // self.row_bytes

    @property
    def columns_per_row(self) -> int:
        """Number of word-sized columns per row."""
        return self.row_bytes // self.word_bytes

    def check_local_address(self, local_addr: int) -> None:
        """Validate a channel-local byte address against the capacity."""
        if not 0 <= local_addr < self.capacity_bytes:
            raise AddressError(
                f"local address {local_addr:#x} outside bank cluster "
                f"capacity {self.capacity_bytes:#x}"
            )


#: Sentinel for "no row open" in :class:`BankState`.
NO_OPEN_ROW = -1


@dataclass
class BankState:
    """Mutable run-time state of one DRAM bank.

    Times are in channel clock cycles.  The controller engine consults
    and updates these fields when enforcing inter-command constraints;
    they deliberately stay plain attributes (no properties) to keep the
    hot loop cheap.
    """

    #: Currently open row, or :data:`NO_OPEN_ROW`.
    open_row: int = NO_OPEN_ROW
    #: Cycle at which the last ACTIVATE was issued.
    last_activate: int = -(10**9)
    #: Earliest cycle a PRECHARGE may be issued (tRAS / tWR / read-to-
    #: precharge constraints folded in by the engine).
    precharge_ready: int = 0
    #: Earliest cycle an ACTIVATE may be issued (tRP / tRC folded in).
    activate_ready: int = 0
    #: Earliest cycle a column command (RD/WR) may be issued (tRCD).
    column_ready: int = 0

    def is_open(self) -> bool:
        """Whether the bank currently holds an open row."""
        return self.open_row != NO_OPEN_ROW

    def close(self) -> None:
        """Mark the bank's page closed (after PRE / PREA / REF)."""
        self.open_row = NO_OPEN_ROW

    def reset(self) -> None:
        """Return to the power-on state."""
        self.open_row = NO_OPEN_ROW
        self.last_activate = -(10**9)
        self.precharge_ready = 0
        self.activate_ready = 0
        self.column_ready = 0


def make_bank_states(geometry: BankClusterGeometry) -> List[BankState]:
    """Create the per-bank state list for a bank cluster."""
    return [BankState() for _ in range(geometry.banks)]
