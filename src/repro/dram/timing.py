"""DRAM timing parameters and their frequency extrapolation.

The paper's rule (Section III): *"The parameters with clear connection
to clock frequency are extrapolated accordingly.  The other parameters
are used exactly as they are denoted in the utilized Mobile DDR SDRAM
datasheet for 200 MHz."*

Concretely that means:

- analog core timings quoted in **nanoseconds** (tRCD, tRP, tRAS, tRC,
  tRRD, tWR, tRFC, CAS latency expressed as an access time, refresh
  interval) stay fixed in nanoseconds and their **cycle counts grow**
  with the interface clock; and
- protocol timings quoted in **clock cycles** (burst length, write
  latency, tWTR, tXP, tCKE) stay fixed in cycles.

:class:`TimingParameters` holds the frequency-independent description;
:meth:`TimingParameters.at_frequency` resolves it into the integer
cycle counts (:class:`TimingCycles`) the controller engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import clock_period_ns, ns_to_cycles


@dataclass(frozen=True)
class TimingParameters:
    """Frequency-independent timing description of a DRAM device.

    Nanosecond-valued fields describe analog core behaviour; cycle-
    valued fields describe interface protocol behaviour.  See
    :mod:`repro.dram.datasheet` for the calibrated values used for the
    paper's next-generation mobile DDR SDRAM.
    """

    #: Row-to-column delay (ACT to RD/WR), ns.
    t_rcd_ns: float
    #: Row precharge time (PRE to ACT), ns.
    t_rp_ns: float
    #: Minimum row active time (ACT to PRE), ns.
    t_ras_ns: float
    #: Row cycle time (ACT to ACT, same bank), ns.
    t_rc_ns: float
    #: ACT-to-ACT delay between *different* banks, ns.
    t_rrd_ns: float
    #: Write recovery (last write data to PRE), ns.
    t_wr_ns: float
    #: Refresh cycle time (REF command duration), ns.
    t_rfc_ns: float
    #: Average periodic refresh interval, ns.
    t_refi_ns: float
    #: CAS (read) latency expressed as an access time, ns.  The cycle
    #: count is ``ceil(cas_ns / tCK)``: 15 ns is CL=3 at 200 MHz and
    #: CL=6 at 400 MHz, matching how DDR2 speed bins kept the access
    #: time roughly constant across the frequency range.
    cas_ns: float

    #: Four-activate window: at most four ACTIVATEs may issue within
    #: any tFAW, bounding the activation current draw, ns.
    t_faw_ns: float = 50.0
    #: Burst length in words (the paper: minimum DRAM burst size is 4).
    burst_length: int = 4
    #: Write latency in cycles (mobile DDR uses a fixed WL of 1).
    write_latency_cycles: int = 1
    #: Write-to-read turnaround after the last write data beat, cycles.
    t_wtr_cycles: int = 2
    #: Read-to-write bus turnaround gap, cycles.
    t_rtw_gap_cycles: int = 1
    #: Power-down exit to first command, cycles.
    t_xp_cycles: int = 2
    #: Minimum CKE-low time (minimum power-down residency), cycles.
    t_cke_cycles: int = 1

    #: Lowest and highest supported interface clock (the paper:
    #: "restricted from 200 to 533 MHz according to DDR2 specification").
    f_min_mhz: float = 200.0
    f_max_mhz: float = 533.0

    def __post_init__(self) -> None:
        for name in (
            "t_rcd_ns",
            "t_rp_ns",
            "t_ras_ns",
            "t_rc_ns",
            "t_rrd_ns",
            "t_wr_ns",
            "t_rfc_ns",
            "t_refi_ns",
            "t_faw_ns",
            "cas_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.burst_length < 2 or self.burst_length % 2:
            raise ConfigurationError(
                f"burst_length must be an even number >= 2 for a DDR device, "
                f"got {self.burst_length}"
            )
        if self.t_rc_ns + 1e-9 < self.t_ras_ns + self.t_rp_ns - 1e-9:
            raise ConfigurationError(
                "t_rc must be at least t_ras + t_rp "
                f"({self.t_rc_ns} < {self.t_ras_ns} + {self.t_rp_ns})"
            )
        if self.f_min_mhz <= 0 or self.f_max_mhz < self.f_min_mhz:
            raise ConfigurationError(
                f"invalid frequency range [{self.f_min_mhz}, {self.f_max_mhz}] MHz"
            )

    def validate_frequency(self, freq_mhz: float) -> None:
        """Raise :class:`ConfigurationError` if ``freq_mhz`` is outside
        the supported interface clock range."""
        if not (self.f_min_mhz <= freq_mhz <= self.f_max_mhz):
            raise ConfigurationError(
                f"clock frequency {freq_mhz} MHz outside the device's "
                f"supported range [{self.f_min_mhz}, {self.f_max_mhz}] MHz"
            )

    def at_frequency(self, freq_mhz: float) -> "TimingCycles":
        """Resolve into integer cycle counts at ``freq_mhz`` (MHz).

        Implements the paper's extrapolation rule: nanosecond
        parameters are converted with ceiling division by the clock
        period; cycle parameters pass through unchanged.
        """
        self.validate_frequency(freq_mhz)
        tck = clock_period_ns(freq_mhz)
        return TimingCycles(
            freq_mhz=freq_mhz,
            t_ck_ns=tck,
            t_rcd=ns_to_cycles(self.t_rcd_ns, freq_mhz),
            t_rp=ns_to_cycles(self.t_rp_ns, freq_mhz),
            t_ras=ns_to_cycles(self.t_ras_ns, freq_mhz),
            t_rc=ns_to_cycles(self.t_rc_ns, freq_mhz),
            t_rrd=max(1, ns_to_cycles(self.t_rrd_ns, freq_mhz)),
            t_wr=ns_to_cycles(self.t_wr_ns, freq_mhz),
            t_rfc=ns_to_cycles(self.t_rfc_ns, freq_mhz),
            t_refi=ns_to_cycles(self.t_refi_ns, freq_mhz),
            t_faw=ns_to_cycles(self.t_faw_ns, freq_mhz),
            cas_latency=max(2, ns_to_cycles(self.cas_ns, freq_mhz)),
            write_latency=self.write_latency_cycles,
            burst_cycles=self.burst_length // 2,
            t_wtr=self.t_wtr_cycles,
            t_rtw_gap=self.t_rtw_gap_cycles,
            t_xp=self.t_xp_cycles,
            t_cke=self.t_cke_cycles,
        )


@dataclass(frozen=True)
class TimingCycles:
    """Timing parameters resolved to integer cycle counts at one
    interface clock frequency.

    This is the object the controller hot loop consumes; everything is
    a plain ``int`` so the loop stays arithmetic-only.
    """

    freq_mhz: float
    t_ck_ns: float
    t_rcd: int
    t_rp: int
    t_ras: int
    t_rc: int
    t_rrd: int
    t_wr: int
    t_rfc: int
    t_refi: int
    t_faw: int
    cas_latency: int
    write_latency: int
    #: Data-bus occupancy of one burst: BL/2 cycles on a DDR bus.
    burst_cycles: int
    t_wtr: int
    t_rtw_gap: int
    t_xp: int
    t_cke: int

    def row_miss_penalty(self) -> int:
        """Unhidden cycles added by a precharge+activate sequence
        relative to a row hit (ignoring overlap with other banks)."""
        return self.t_rp + self.t_rcd

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count at this frequency to nanoseconds."""
        return cycles * self.t_ck_ns

    def ns_to_cycle_count(self, ns: float) -> int:
        """Convert nanoseconds to a (ceiling) cycle count at this clock."""
        return ns_to_cycles(ns, self.freq_mhz)
