"""Power-down policies.

Section III: *"For maximum energy savings, it is assumed that bank
clusters go to power down states after the first idle clock cycle."*
That aggressive policy is the paper's default; the conclusions add that
"aggressive use of power-down modes is necessary for energy efficient
operation with handheld devices".

The policy interface answers one question for the controller engine:
given an idle gap of *g* cycles in front of the next command, how many
of those cycles are spent powered down?  Entering costs nothing
observable; exiting delays the next command by tXP.  The ablation
benchmark ``bench_ablation_powerdown`` sweeps the three policies below
to quantify the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


class PowerDownPolicy:
    """Strategy deciding when an idle channel drops CKE.

    Subclasses implement :meth:`powered_down_cycles`.  The engine calls
    it with the raw idle gap (cycles between the end of the previous
    activity and the arrival of the next command) and charges tXP to
    the next command whenever the returned residency is non-zero.
    """

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def powered_down_cycles(self, idle_gap: int, t_cke: int, t_xp: int) -> int:
        """Return how many of ``idle_gap`` cycles are spent in power-down.

        ``t_cke`` is the minimum CKE-low residency; ``t_xp`` the exit
        latency.  A return value of zero means the channel idles in
        standby instead.
        """
        raise NotImplementedError

    def exit_penalty(self, powered_down: int, t_xp: int) -> int:
        """Cycles of exit latency charged to the next command."""
        return t_xp if powered_down > 0 else 0

    @property
    def idles_powered_down(self) -> bool:
        """Whether long idle windows (e.g. between frames) end up in
        power-down under this policy.  Drives the idle-energy
        accounting of :func:`repro.power.report.compute_frame_power`.
        """
        return True


@dataclass
class ImmediatePowerDown(PowerDownPolicy):
    """The paper's policy: power down after the first idle cycle.

    Any gap of at least ``1 + t_cke`` cycles is spent powered down
    (minus the single detection cycle); shorter gaps stay in standby
    because the minimum CKE-low time could not be honoured.
    """

    name: str = "immediate"

    def powered_down_cycles(self, idle_gap: int, t_cke: int, t_xp: int) -> int:
        if idle_gap <= 0:
            return 0
        residency = idle_gap - 1  # one cycle to detect idleness
        if residency < max(1, t_cke):
            return 0
        return residency


@dataclass
class TimeoutPowerDown(PowerDownPolicy):
    """Power down only after ``timeout_cycles`` of idleness.

    A common controller heuristic that trades some idle power for
    avoiding the tXP exit penalty on short gaps.  Used by the
    power-down ablation benchmark.
    """

    timeout_cycles: int = 16
    name: str = "timeout"

    def __post_init__(self) -> None:
        if self.timeout_cycles < 1:
            raise ConfigurationError(
                f"timeout_cycles must be >= 1, got {self.timeout_cycles}"
            )
        self.name = f"timeout-{self.timeout_cycles}"

    def powered_down_cycles(self, idle_gap: int, t_cke: int, t_xp: int) -> int:
        if idle_gap <= self.timeout_cycles:
            return 0
        residency = idle_gap - self.timeout_cycles
        if residency < max(1, t_cke):
            return 0
        return residency


@dataclass
class NoPowerDown(PowerDownPolicy):
    """Never power down; idle time is spent in standby.

    The baseline the paper's Fig. 5 argument is implicitly made
    against: without power-down, idle channels keep burning standby
    current and the multi-channel configurations lose their energy
    advantage.
    """

    name: str = "never"

    def powered_down_cycles(self, idle_gap: int, t_cke: int, t_xp: int) -> int:
        return 0

    @property
    def idles_powered_down(self) -> bool:
        return False
