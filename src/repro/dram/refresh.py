"""Refresh parameters and bookkeeping.

Section III: *"The memory controller takes also care of the data
refresh, done periodically for all DRAM banks."*  The evaluated device
uses all-bank auto refresh every tREFI (7.8 us), each refresh occupying
the cluster for tRFC and leaving every page closed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RefreshParameters:
    """Static refresh behaviour of a device.

    ``interval_ns`` is the average periodic refresh interval (tREFI);
    the refresh cycle time itself (tRFC) lives with the other timing
    parameters in :class:`repro.dram.timing.TimingParameters`.
    """

    #: Average refresh command interval, ns (tREFI).
    interval_ns: float
    #: Whether a refresh hits all banks at once (the modelled device
    #: only supports all-bank auto refresh, like Mobile DDR).
    all_bank: bool = True

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ConfigurationError(
                f"refresh interval must be positive, got {self.interval_ns}"
            )

    def commands_in(self, duration_ns: float) -> int:
        """Number of refresh commands due within ``duration_ns``."""
        if duration_ns <= 0:
            return 0
        return int(duration_ns / self.interval_ns)

    def duty_fraction(self, t_rfc_ns: float) -> float:
        """Fraction of time the device spends refreshing.

        This is the steady-state bandwidth loss caused by refresh:
        about 0.9 % for tRFC = 72 ns and tREFI = 7.8 us.
        """
        if t_rfc_ns < 0:
            raise ConfigurationError("t_rfc_ns must be non-negative")
        return t_rfc_ns / self.interval_ns

    #: Die temperature above which mobile DRAMs halve the refresh
    #: interval (cell leakage roughly doubles per ~10 degC).
    HOT_THRESHOLD_C = 85.0

    def derated(self, temperature_c: float) -> "RefreshParameters":
        """Refresh parameters at a die temperature.

        Mobile DDR devices (and every LPDDR generation after them)
        require double-rate refresh above 85 degC — a real cost of
        cramming a die stack into a recording handheld, and the reason
        the paper's thermal references ([4]) matter.  At or below the
        threshold the parameters are returned unchanged.
        """
        if not -40.0 <= temperature_c <= 125.0:
            raise ConfigurationError(
                f"temperature {temperature_c} degC outside the operating "
                "range [-40, 125]"
            )
        if temperature_c <= self.HOT_THRESHOLD_C:
            return self
        return RefreshParameters(
            interval_ns=self.interval_ns / 2.0, all_bank=self.all_bank
        )
