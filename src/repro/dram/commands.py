"""The DRAM command set managed by the memory controller.

Section III of the paper: *"Another task of the controller is to manage
all the DRAM operations: precharges, activations, reads, writes,
refreshes, and power downs."*  This module enumerates exactly those
operations plus the power-down exit, and records per-command statistics
the power model integrates over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Command(enum.Enum):
    """A DRAM command as issued on the command bus."""

    #: Activate a row in a bank (opens the page).
    ACTIVATE = "ACT"
    #: Precharge one bank (closes its open page).
    PRECHARGE = "PRE"
    #: Precharge all banks (issued before a refresh).
    PRECHARGE_ALL = "PREA"
    #: Column read from the open row.
    READ = "RD"
    #: Column write to the open row.
    WRITE = "WR"
    #: Auto refresh (all banks).
    REFRESH = "REF"
    #: Power-down entry (CKE low).
    POWER_DOWN_ENTER = "PDE"
    #: Power-down exit (CKE high, tXP before the next command).
    POWER_DOWN_EXIT = "PDX"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class CommandCounters:
    """Tally of commands issued on one channel during a simulation.

    The power model converts these counts into operation energies
    (activate energy per ACT, burst energy per RD/WR, refresh energy
    per REF), so keeping them exact matters more than keeping them
    cheap -- they are only updated once per command, never per cycle.
    """

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    power_down_entries: int = 0
    power_down_exits: int = 0

    def total_commands(self) -> int:
        """Total number of commands issued."""
        return (
            self.activates
            + self.precharges
            + self.reads
            + self.writes
            + self.refreshes
            + self.power_down_entries
            + self.power_down_exits
        )

    def row_hit_rate(self) -> float:
        """Fraction of column accesses that hit an already-open row.

        Every row miss costs one activate, so the hit rate is
        ``1 - activates / column_accesses``.  Returns 1.0 for an empty
        simulation (vacuously all hits).
        """
        accesses = self.reads + self.writes
        if accesses == 0:
            return 1.0
        return max(0.0, 1.0 - self.activates / accesses)

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "power_down_entries": self.power_down_entries,
            "power_down_exits": self.power_down_exits,
        }

    def merged_with(self, other: "CommandCounters") -> "CommandCounters":
        """Return a new counter object with ``other`` added in."""
        return CommandCounters(
            activates=self.activates + other.activates,
            precharges=self.precharges + other.precharges,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            refreshes=self.refreshes + other.refreshes,
            power_down_entries=self.power_down_entries + other.power_down_entries,
            power_down_exits=self.power_down_exits + other.power_down_exits,
        )


@dataclass
class StateDurations:
    """Time (in nanoseconds) a channel spent in each power-relevant state.

    These are the integration windows for the background components of
    the Micron-style power model: a DRAM burns different current
    depending on whether any bank holds an open row and whether CKE is
    low (power-down).
    """

    #: All banks precharged, CKE high.
    precharge_standby_ns: float = 0.0
    #: At least one bank active (row open), CKE high.
    active_standby_ns: float = 0.0
    #: CKE low with all banks precharged.
    precharge_powerdown_ns: float = 0.0
    #: CKE low with a row open (the paper's immediate power-down can
    #: engage while pages are open under the open-page policy).
    active_powerdown_ns: float = 0.0

    def total_ns(self) -> float:
        """Total accounted wall-clock time."""
        return (
            self.precharge_standby_ns
            + self.active_standby_ns
            + self.precharge_powerdown_ns
            + self.active_powerdown_ns
        )

    def merged_with(self, other: "StateDurations") -> "StateDurations":
        """Return a new object with ``other`` added in."""
        return StateDurations(
            precharge_standby_ns=self.precharge_standby_ns + other.precharge_standby_ns,
            active_standby_ns=self.active_standby_ns + other.active_standby_ns,
            precharge_powerdown_ns=self.precharge_powerdown_ns
            + other.precharge_powerdown_ns,
            active_powerdown_ns=self.active_powerdown_ns + other.active_powerdown_ns,
        )
