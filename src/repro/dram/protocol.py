"""DRAM protocol checker: independent verification of command streams.

The channel engine *schedules* commands; this module *audits* them.
Given the timed command stream a simulation emitted (see
:class:`~repro.controller.engine.ChannelEngine`'s ``command_log``),
the checker re-derives every inter-command constraint from the timing
parameters and reports violations.  Because it shares no scheduling
code with the engine, an engine bug that issues a command early shows
up here as a concrete violation rather than silently inflating
bandwidth.

Checked rules:

- one command per cycle on the command bus;
- ACT -> RD/WR column delay (tRCD), same bank;
- ACT -> PRE minimum row-active time (tRAS);
- PRE -> ACT precharge time (tRP), same bank;
- ACT -> ACT same bank (tRC) and different banks (tRRD);
- RD/WR only to a bank whose open row matches the command's row;
- read -> precharge (burst completion) and write -> precharge (write
  recovery tWR);
- REF only with all banks precharged, no command during tRFC, and all
  rows closed afterwards;
- data-bus occupancy: read/write bursts must not overlap, respecting
  CAS and write latency.

Used by the test suite to cross-validate the engine over every
configuration axis, and available to users auditing custom traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dram.commands import Command
from repro.dram.device import BankClusterGeometry, NO_OPEN_ROW
from repro.dram.timing import TimingCycles
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CommandRecord:
    """One command as issued on a channel's command bus.

    ``bank``/``row`` are -1 where not applicable (refresh, power-down).
    """

    cycle: int
    command: Command
    bank: int = -1
    row: int = -1

    def __str__(self) -> str:  # pragma: no cover - debug aid
        where = f" b{self.bank}" if self.bank >= 0 else ""
        where += f" r{self.row}" if self.row >= 0 else ""
        return f"@{self.cycle} {self.command.value}{where}"


@dataclass(frozen=True)
class ProtocolViolation:
    """A timing or state rule broken by a command stream."""

    cycle: int
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"@{self.cycle} {self.rule}: {self.detail}"


@dataclass
class _BankAudit:
    open_row: int = NO_OPEN_ROW
    last_act: int = -(10**9)
    last_pre: int = -(10**9)
    #: Earliest legal precharge (tRAS / read / write recovery).
    pre_ok: int = -(10**9)


class ProtocolChecker:
    """Validates a command stream against the device protocol."""

    def __init__(self, timing: TimingCycles, geometry: BankClusterGeometry) -> None:
        self.timing = timing
        self.geometry = geometry

    def check(self, log: Sequence[CommandRecord]) -> List[ProtocolViolation]:
        """Audit ``log`` (must be in issue order); returns violations."""
        t = self.timing
        banks = [_BankAudit() for _ in range(self.geometry.banks)]
        violations: List[ProtocolViolation] = []
        last_cmd_cycle = -(10**9)
        last_act_any = -(10**9)
        act_history: List[int] = []  # for the four-activate window
        ref_busy_until = -(10**9)
        powered_down_since: Optional[int] = None
        pd_exit_ok = -(10**9)
        bus_busy_until = -(10**9)
        last_read_data_end = -(10**9)
        last_write_data_end = -(10**9)

        def bad(cycle: int, rule: str, detail: str) -> None:
            violations.append(ProtocolViolation(cycle, rule, detail))

        for rec in log:
            c = rec.cycle
            cmd = rec.command

            if cmd is not Command.POWER_DOWN_ENTER:
                if c <= last_cmd_cycle and cmd is not Command.POWER_DOWN_EXIT:
                    bad(c, "command-bus", f"command at or before previous ({last_cmd_cycle})")
                if powered_down_since is not None and cmd is not Command.POWER_DOWN_EXIT:
                    bad(c, "power-down", f"{cmd.value} while CKE low")
                if c < ref_busy_until and cmd is not Command.POWER_DOWN_EXIT:
                    bad(c, "tRFC", f"{cmd.value} during refresh (busy until {ref_busy_until})")
                if c < pd_exit_ok:
                    bad(c, "tXP", f"{cmd.value} within tXP of power-down exit")

            if cmd is Command.ACTIVATE:
                bank = banks[rec.bank]
                if bank.open_row != NO_OPEN_ROW:
                    bad(c, "state", f"ACT to open bank {rec.bank}")
                if c - bank.last_pre < t.t_rp and bank.last_pre > -(10**8):
                    bad(c, "tRP", f"bank {rec.bank}: {c - bank.last_pre} < {t.t_rp}")
                if c - bank.last_act < t.t_rc and bank.last_act > -(10**8):
                    bad(c, "tRC", f"bank {rec.bank}: {c - bank.last_act} < {t.t_rc}")
                if c - last_act_any < t.t_rrd and last_act_any > -(10**8):
                    bad(c, "tRRD", f"{c - last_act_any} < {t.t_rrd}")
                if len(act_history) >= 4 and c - act_history[-4] < t.t_faw:
                    bad(c, "tFAW", f"{c - act_history[-4]} < {t.t_faw}")
                act_history.append(c)
                if len(act_history) > 8:
                    del act_history[:-4]
                bank.open_row = rec.row
                bank.last_act = c
                bank.pre_ok = c + t.t_ras
                last_act_any = c

            elif cmd in (Command.READ, Command.WRITE):
                bank = banks[rec.bank]
                if bank.open_row == NO_OPEN_ROW:
                    bad(c, "state", f"{cmd.value} to closed bank {rec.bank}")
                elif bank.open_row != rec.row:
                    bad(
                        c,
                        "state",
                        f"{cmd.value} row {rec.row} but bank {rec.bank} has "
                        f"row {bank.open_row} open",
                    )
                if c - bank.last_act < t.t_rcd:
                    bad(c, "tRCD", f"bank {rec.bank}: {c - bank.last_act} < {t.t_rcd}")
                if cmd is Command.READ:
                    if c < last_write_data_end + t.t_wtr:
                        bad(c, "tWTR", f"read at {c} < write data end "
                                       f"{last_write_data_end} + {t.t_wtr}")
                    data_start = c + t.cas_latency
                    data_end = data_start + t.burst_cycles
                    last_read_data_end = data_end
                    bank.pre_ok = max(bank.pre_ok, c + t.burst_cycles)
                else:
                    data_start = c + t.write_latency
                    data_end = data_start + t.burst_cycles
                    if data_start < last_read_data_end + t.t_rtw_gap:
                        bad(c, "turnaround", f"write data at {data_start} < read "
                                             f"data end {last_read_data_end} + gap")
                    last_write_data_end = data_end
                    bank.pre_ok = max(bank.pre_ok, data_end + t.t_wr)
                if data_start < bus_busy_until:
                    bad(c, "data-bus", f"burst at {data_start} overlaps previous "
                                       f"(busy until {bus_busy_until})")
                bus_busy_until = max(bus_busy_until, data_end)

            elif cmd is Command.PRECHARGE:
                bank = banks[rec.bank]
                if bank.open_row == NO_OPEN_ROW:
                    bad(c, "state", f"PRE to already-closed bank {rec.bank}")
                if c < bank.pre_ok:
                    bad(c, "tRAS/tWR", f"bank {rec.bank}: precharge at {c} < {bank.pre_ok}")
                bank.open_row = NO_OPEN_ROW
                bank.last_pre = c

            elif cmd is Command.PRECHARGE_ALL:
                for i, bank in enumerate(banks):
                    if bank.open_row != NO_OPEN_ROW:
                        if c < bank.pre_ok:
                            bad(c, "tRAS/tWR", f"PREA: bank {i} at {c} < {bank.pre_ok}")
                        bank.open_row = NO_OPEN_ROW
                        bank.last_pre = c

            elif cmd is Command.REFRESH:
                for i, bank in enumerate(banks):
                    if bank.open_row != NO_OPEN_ROW:
                        bad(c, "state", f"REF with bank {i} open")
                    if c - bank.last_pre < t.t_rp and bank.last_pre > -(10**8):
                        bad(c, "tRP", f"REF: bank {i} precharged {c - bank.last_pre} "
                                      f"< {t.t_rp} ago")
                ref_busy_until = c + t.t_rfc
                for bank in banks:
                    bank.last_act = max(bank.last_act, -(10**9))

            elif cmd is Command.POWER_DOWN_ENTER:
                if powered_down_since is not None:
                    bad(c, "power-down", "nested power-down entry")
                powered_down_since = c

            elif cmd is Command.POWER_DOWN_EXIT:
                if powered_down_since is None:
                    bad(c, "power-down", "exit without entry")
                elif c - powered_down_since < t.t_cke:
                    bad(c, "tCKE", f"residency {c - powered_down_since} < {t.t_cke}")
                powered_down_since = None
                pd_exit_ok = c + t.t_xp

            else:  # pragma: no cover - exhaustive
                raise ConfigurationError(f"unknown command {cmd!r}")

            if cmd not in (Command.POWER_DOWN_ENTER, Command.POWER_DOWN_EXIT):
                last_cmd_cycle = c

        return violations

    def assert_clean(self, log: Sequence[CommandRecord]) -> None:
        """Raise :class:`ConfigurationError` listing the first few
        violations if the stream is not protocol-clean."""
        violations = self.check(log)
        if violations:
            head = "; ".join(str(v) for v in violations[:5])
            raise ConfigurationError(
                f"{len(violations)} protocol violation(s): {head}"
            )
