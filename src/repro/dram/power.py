"""Current-integration power model (Micron TN-46-03 methodology).

The paper attaches "separate timing and power information" to its
untimed transaction-level models and cites the Micron power notes
([13], [14]).  This module implements that methodology: the controller
engine reports command counts and state residencies, and the model
converts them into energy using the device's IDD currents.

Scaling rules across operating points (documented in
:class:`repro.dram.datasheet.CurrentSet`):

- **Voltage**: all powers scale with ``(V / V_ref)**2`` -- the standard
  CV^2 derating Micron's notes apply, and how the paper projects its
  1.35 V next-generation device from 1.8 V datasheets.
- **Frequency, background**: standby currents are half static / half
  clock-tree, so ``I(f) = I_ref * (0.5 + 0.5 * f/f_ref)``.
- **Frequency, power-down**: with CKE low the clock tree is gated, so
  power-down currents do not scale with frequency.
- **Frequency, switching**: burst/activate/refresh current increments
  scale linearly with ``f/f_ref``; because the event durations shrink
  as ``1/f``, the *energy per operation* is frequency-independent
  (fixed charge per bit / per row cycle), which is the physically
  correct behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CommandCounters, StateDurations
from repro.dram.datasheet import DeviceDescriptor
from repro.errors import ConfigurationError

#: 1 mA * 1 V * 1 ns = 1 picojoule.
_PJ_PER_MA_V_NS = 1.0
_PJ_TO_J = 1e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed by one channel, split by mechanism (joules).

    ``total_j`` excludes interface (I/O) energy, which the paper models
    separately with equation (1) -- see :mod:`repro.power.interface`.
    """

    background_j: float
    activate_j: float
    read_j: float
    write_j: float
    refresh_j: float

    @property
    def total_j(self) -> float:
        """Total DRAM core energy in joules."""
        return (
            self.background_j
            + self.activate_j
            + self.read_j
            + self.write_j
            + self.refresh_j
        )

    def average_power_w(self, duration_ns: float) -> float:
        """Average power over ``duration_ns`` in watts."""
        if duration_ns <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration_ns} ns"
            )
        return self.total_j / (duration_ns * 1e-9)

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Return a new breakdown with ``other`` added in."""
        return EnergyBreakdown(
            background_j=self.background_j + other.background_j,
            activate_j=self.activate_j + other.activate_j,
            read_j=self.read_j + other.read_j,
            write_j=self.write_j + other.write_j,
            refresh_j=self.refresh_j + other.refresh_j,
        )


ZERO_ENERGY = EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)


class PowerModel:
    """Converts one channel's activity statistics into energy.

    Instances are immutable with respect to their operating point; the
    per-operation energies and per-state powers are precomputed at
    construction so that evaluating a simulation result is O(1).
    """

    def __init__(self, device: DeviceDescriptor, freq_mhz: float) -> None:
        device.timing.validate_frequency(freq_mhz)
        self.device = device
        self.freq_mhz = freq_mhz

        cur = device.currents
        v = device.core_voltage_v
        v_ref = cur.reference_voltage_v
        f_ratio = freq_mhz / cur.reference_freq_mhz
        v_factor = (v / v_ref) ** 2
        bg_factor = 0.5 + 0.5 * f_ratio

        timing = device.timing
        tck_ref_ns = 1000.0 / cur.reference_freq_mhz
        burst_ns_ref = (timing.burst_length // 2) * tck_ref_ns

        # Per-operation energies in picojoules (frequency-independent,
        # see module docstring).
        self._e_act_pj = (
            max(0.0, cur.idd0_ma - cur.idd3n_ma) * v_ref * timing.t_rc_ns * v_factor
        )
        self._e_rd_pj = (
            max(0.0, cur.idd4r_ma - cur.idd3n_ma) * v_ref * burst_ns_ref * v_factor
        )
        self._e_wr_pj = (
            max(0.0, cur.idd4w_ma - cur.idd3n_ma) * v_ref * burst_ns_ref * v_factor
        )
        self._e_ref_pj = (
            max(0.0, cur.idd5_ma - cur.idd2n_ma) * v_ref * timing.t_rfc_ns * v_factor
        )

        # Per-state background powers in milliwatts.
        self._p_pre_standby_mw = cur.idd2n_ma * bg_factor * v_ref * v_factor
        self._p_act_standby_mw = cur.idd3n_ma * bg_factor * v_ref * v_factor
        self._p_pre_pd_mw = cur.idd2p_ma * v_ref * v_factor
        self._p_act_pd_mw = cur.idd3p_ma * v_ref * v_factor

    # -- per-operation energies (exposed for the analytic model) ---------

    @property
    def activate_energy_j(self) -> float:
        """Energy of one activate/precharge row cycle, joules."""
        return self._e_act_pj * _PJ_TO_J

    @property
    def read_burst_energy_j(self) -> float:
        """Incremental energy of one read burst, joules."""
        return self._e_rd_pj * _PJ_TO_J

    @property
    def write_burst_energy_j(self) -> float:
        """Incremental energy of one write burst, joules."""
        return self._e_wr_pj * _PJ_TO_J

    @property
    def refresh_energy_j(self) -> float:
        """Incremental energy of one all-bank refresh, joules."""
        return self._e_ref_pj * _PJ_TO_J

    # -- per-state powers (exposed for the analytic model) ---------------

    @property
    def precharge_standby_power_w(self) -> float:
        """Background power with all banks idle and CKE high, watts."""
        return self._p_pre_standby_mw * 1e-3

    @property
    def active_standby_power_w(self) -> float:
        """Background power with a row open and CKE high, watts."""
        return self._p_act_standby_mw * 1e-3

    @property
    def precharge_powerdown_power_w(self) -> float:
        """Background power in precharge power-down, watts."""
        return self._p_pre_pd_mw * 1e-3

    @property
    def active_powerdown_power_w(self) -> float:
        """Background power in active power-down, watts."""
        return self._p_act_pd_mw * 1e-3

    # -- integration ------------------------------------------------------

    def energy(
        self, commands: CommandCounters, states: StateDurations
    ) -> EnergyBreakdown:
        """Integrate command counts and state residencies into energy."""
        background_pj = (
            states.precharge_standby_ns * self._p_pre_standby_mw
            + states.active_standby_ns * self._p_act_standby_mw
            + states.precharge_powerdown_ns * self._p_pre_pd_mw
            + states.active_powerdown_ns * self._p_act_pd_mw
        )
        return EnergyBreakdown(
            background_j=background_pj * _PJ_TO_J,
            activate_j=commands.activates * self._e_act_pj * _PJ_TO_J,
            read_j=commands.reads * self._e_rd_pj * _PJ_TO_J,
            write_j=commands.writes * self._e_wr_pj * _PJ_TO_J,
            refresh_j=commands.refreshes * self._e_ref_pj * _PJ_TO_J,
        )

    def streaming_power_w(self, read_fraction: float = 0.5) -> float:
        """Estimated power of a channel streaming at full bus utilisation.

        Used by the analytic cross-check model: burst energy per cycle
        plus active-standby background.  ``read_fraction`` splits the
        traffic between read and write bursts.
        """
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        burst_cycles = self.device.timing.burst_length // 2
        burst_ns = burst_cycles * (1000.0 / self.freq_mhz)
        e_burst_pj = (
            read_fraction * self._e_rd_pj + (1.0 - read_fraction) * self._e_wr_pj
        )
        return (e_burst_pj / burst_ns) * 1e-3 + self.active_standby_power_w
