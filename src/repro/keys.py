"""Canonical content keys for jobs, checkpoints and the result cache.

Checkpoint and cache entries identify a piece of completed work by a
content key: two runs may share a stored result if and only if their
keys match.  Until this module existed the sweep checkpoint hashed the
``repr`` of the job description, which had two defects the result
cache cannot inherit:

- ``repr`` omits nothing *visibly* but promises nothing *stably*: a
  dataclass gaining a field with a default, or a field changing its
  repr formatting, silently changes every key and orphans every stored
  result -- or worse, a refactor that makes two semantically different
  objects repr identically silently aliases them.
- The key carried no engine version, so a stored result produced by an
  older simulation engine could be served verbatim after a semantics
  change -- precisely the staleness a content-addressed store must
  rule out.

:func:`canonical_key` fixes both: the job description is projected to
a deterministic JSON document (dataclasses become ``{"__class__":
name, field: ...}`` maps with sorted keys, enums become their
qualified names, mappings are sorted) and hashed together with
:data:`ENGINE_VERSION`.  The projection is structural, not textual, so
it survives field reordering and repr changes; the embedded class and
field names mean a *semantic* refactor (renaming a field, changing a
default's meaning) still changes the key -- which is the safe
direction for cached simulation results.

Shared by :class:`repro.resilience.checkpoint.SweepCheckpoint` and
:class:`repro.service.cache.ResultCache`, so a sweep's checkpoint keys
and its cache keys are the same function of the same description.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any, Optional

#: Version of the simulation engine's observable semantics.  Bump this
#: whenever a change alters any simulated result (timing algebra,
#: power integration, traffic generation, ...): every canonical key
#: embeds it, so stored results from older semantics become misses
#: instead of silently served stale values.  Purely-internal speedups
#: that keep results bit-identical must NOT bump it -- that would
#: needlessly cold the cache.
ENGINE_VERSION = "2"

#: Schema tag embedded in every canonical payload, so a future change
#: to the *projection itself* (not the engine) can also invalidate
#: old keys explicitly.
_PROJECTION_VERSION = 1


def canonical_fragment(obj: Any) -> Any:
    """Project ``obj`` onto a deterministic JSON-able structure.

    Handles the vocabulary job descriptions are made of: dataclasses
    (projected field by field under their class name), enums
    (qualified name), mappings (string-keyed, sorted by
    :func:`json.dumps` at serialisation time), sequences, and JSON
    scalars.  Non-finite floats are rejected -- a NaN inside a job
    description would make the key compare unequal to itself in
    spirit, and JSON cannot carry it losslessly anyway.  Anything else
    falls back to ``repr`` *tagged as such*, so an accidental reliance
    on repr stability is at least visible in the payload.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"canonical key material must be finite, got {obj!r}"
            )
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        projected = {
            field.name: canonical_fragment(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        projected["__class__"] = type(obj).__name__
        return projected
    if isinstance(obj, dict):
        fragment = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"canonical key material needs string dict keys, "
                    f"got {key!r}"
                )
            fragment[key] = canonical_fragment(value)
        return fragment
    if isinstance(obj, (list, tuple)):
        return [canonical_fragment(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical_fragment(item) for item in obj)
    return {"__repr__": repr(obj), "__class__": type(obj).__name__}


def canonical_payload(description: Any, engine_version: Optional[str] = None) -> str:
    """The exact JSON document that gets hashed (useful for debugging
    why two keys differ: diff the payloads).

    ``engine_version`` defaults to the *current* :data:`ENGINE_VERSION`
    at call time (not import time), so a runtime bump invalidates keys
    immediately.
    """
    return json.dumps(
        {
            "projection": _PROJECTION_VERSION,
            "engine": (
                engine_version if engine_version is not None else ENGINE_VERSION
            ),
            "job": canonical_fragment(description),
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def canonical_key(description: Any, engine_version: Optional[str] = None) -> str:
    """SHA-256 content key of one job description.

    Deterministic across processes, Python versions and dataclass
    field order; sensitive to every projected field value, to class
    and field names, and to ``engine_version``.
    """
    return hashlib.sha256(
        canonical_payload(description, engine_version).encode("utf-8")
    ).hexdigest()
