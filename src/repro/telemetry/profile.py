"""Phase-scoped wall-clock profiling.

:class:`PhaseProfiler` attributes wall-clock to named phases of the
simulation pipeline -- the :func:`repro.analysis.sweep.simulate_use_case`
stack records ``load.build``, ``load.scale``, ``load.generate``,
``system.interleave``, ``system.engine``, ``system.pool`` and
``power.integrate`` -- and renders the totals as a
:class:`ProfileReport`.

Phases are *accumulated*: simulating forty sweep points through one
profiler yields the aggregate phase breakdown of the whole campaign,
which is exactly what ``repro-sim profile <figure>`` prints.

Note on overlap: in pooled runs the ``system.pool`` phase is the
dispatch wall-clock (which *contains* the workers' engine time) while
``system.engine`` is the sum of worker-side engine seconds; the two
overlap deliberately, so the pool's dispatch overhead is readable as
``system.pool`` minus ``system.engine`` / workers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class PhaseStat:
    """Accumulated wall-clock of one named phase."""

    name: str
    seconds: float
    calls: int


class _NullPhase:
    """Reusable no-op context manager (the disabled profiler's phase)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Accumulates wall-clock per named phase (insertion-ordered)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - start)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into ``name``.

        Used where the timed work happened somewhere a context manager
        cannot wrap -- e.g. engine seconds measured inside pool
        workers and shipped back with the results.
        """
        self._seconds[name] = self._seconds.get(name, 0.0) + max(0.0, seconds)
        self._calls[name] = self._calls.get(name, 0) + calls

    def report(self) -> "ProfileReport":
        """Snapshot the accumulated phases."""
        return ProfileReport(
            phases=tuple(
                PhaseStat(name=name, seconds=secs, calls=self._calls[name])
                for name, secs in self._seconds.items()
            )
        )


class NullProfiler(PhaseProfiler):
    """A profiler whose phases cost (almost) nothing and record nothing."""

    def __init__(self) -> None:
        super().__init__()

    def phase(self, name: str) -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass


#: Shared disabled profiler; callers thread this instead of branching
#: on ``telemetry is None`` at every phase boundary.
NULL_PROFILER = NullProfiler()


@dataclass(frozen=True)
class ProfileReport:
    """The phase breakdown of one (or many aggregated) simulations."""

    phases: Tuple[PhaseStat, ...]

    @property
    def total_s(self) -> float:
        """Sum of all phase durations (phases may overlap; see module
        docstring)."""
        return sum(p.seconds for p in self.phases)

    def seconds(self, name: str) -> float:
        """Accumulated wall-clock of one phase (0.0 when absent)."""
        for p in self.phases:
            if p.name == name:
                return p.seconds
        return 0.0

    def share(self, name: str) -> float:
        """Fraction of :attr:`total_s` spent in ``name``."""
        total = self.total_s
        return self.seconds(name) / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Export-schema projection (see :mod:`repro.telemetry.export`)."""
        total = self.total_s
        return {
            "total_s": total,
            "phases": [
                {
                    "name": p.name,
                    "seconds": p.seconds,
                    "calls": p.calls,
                    "share": (p.seconds / total) if total > 0 else 0.0,
                }
                for p in self.phases
            ],
        }

    def format(self) -> str:
        """ASCII rendition: one row per phase, slowest first."""
        if not self.phases:
            return "(no phases recorded)"
        total = self.total_s
        rows: List[Tuple[str, str, str, str]] = [
            ("phase", "seconds", "share", "calls")
        ]
        for p in sorted(self.phases, key=lambda s: s.seconds, reverse=True):
            share = (p.seconds / total * 100.0) if total > 0 else 0.0
            rows.append(
                (p.name, f"{p.seconds:.4f}", f"{share:5.1f} %", str(p.calls))
            )
        rows.append(("total", f"{total:.4f}", "100.0 %", ""))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = []
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip()
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
