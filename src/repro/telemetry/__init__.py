"""Telemetry: metrics, profiling and progress for simulations and sweeps.

The paper's argument rests entirely on reported metrics -- per-frame
access time (Fig. 3/4), average power (Fig. 5), bus efficiency and
row-hit behaviour -- so the reproduction carries a first-class
observability layer instead of computing them blind:

- :class:`MetricsRegistry` (:mod:`repro.telemetry.registry`): named
  counters, gauges, timers and simple histograms, in the style of
  DRAMsim3's per-epoch stat dumps and Ramulator's counter registry.
  A disabled registry hands out shared no-op instruments, so taps are
  effectively free when telemetry is off.
- :class:`PhaseProfiler` (:mod:`repro.telemetry.profile`): wall-clock
  attribution of `simulate_use_case` phases (load build, scaling,
  transaction generation, interleave split, per-channel engine, pool
  dispatch, power integration), surfaced as a :class:`ProfileReport`.
- progress heartbeats (:mod:`repro.telemetry.progress`): pluggable
  sinks fed by :func:`repro.analysis.sweep.sweep_use_case` with
  points done/total, failure counts and an ETA, so long Fig. 3/4/5
  campaigns are no longer silent.
- structured export (:mod:`repro.telemetry.export`): a documented
  stable JSON schema (``repro-metrics/1``) written by ``--metrics-out``
  on every CLI runner, plus :func:`validate_metrics` and a
  ``python -m repro.telemetry.export`` validator for CI.

The :class:`Telemetry` session object bundles a registry and a
profiler; every simulation entry point accepts ``telemetry=None`` and
the disabled path is guaranteed both bit-identical in its results and
within 2 % of the untapped runtime (``benchmarks/
bench_telemetry_overhead.py`` guards this).
"""

from repro.telemetry.export import (
    METRICS_SCHEMA,
    metrics_payload,
    validate_metrics,
    validate_metrics_file,
    write_metrics,
)
from repro.telemetry.profile import (
    NULL_PROFILER,
    PhaseProfiler,
    PhaseStat,
    ProfileReport,
)
from repro.telemetry.progress import (
    CallbackProgressSink,
    NullProgressSink,
    ProgressEvent,
    ProgressSink,
    StreamProgressSink,
    SweepProgress,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.session import Telemetry

__all__ = [
    "METRICS_SCHEMA",
    "CallbackProgressSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NullProgressSink",
    "PhaseProfiler",
    "PhaseStat",
    "ProfileReport",
    "ProgressEvent",
    "ProgressSink",
    "StreamProgressSink",
    "SweepProgress",
    "Telemetry",
    "Timer",
    "metrics_payload",
    "validate_metrics",
    "validate_metrics_file",
    "write_metrics",
]
