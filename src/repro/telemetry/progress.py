"""Sweep progress heartbeats through pluggable sinks.

A long Fig. 3/4/5 campaign used to be silent until it returned;
:func:`repro.analysis.sweep.sweep_use_case` now drives a
:class:`SweepProgress` tracker that emits a :class:`ProgressEvent`
through whatever :class:`ProgressSink` the caller plugs in -- the CLI
plugs a rate-limited :class:`StreamProgressSink` on stderr
(``--progress``), tests plug a :class:`CallbackProgressSink`, and the
default :class:`NullProgressSink` keeps the library silent.

The ETA is estimated from the points computed *this run* (resumed
checkpoint points are excluded from the rate, or a warm resume would
promise an absurdly optimistic finish).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, TextIO


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat of a running sweep."""

    #: Points finished so far (resumed + computed + failed).
    done: int
    #: Points the sweep was asked for.
    total: int
    #: Points that failed so far (graceful degradation).
    failed: int
    #: Points restored from a checkpoint rather than computed.
    resumed: int
    #: Wall-clock since the sweep started, seconds.
    elapsed_s: float
    #: Estimated seconds to completion (``None`` until the first point
    #: computed this run establishes a rate).
    eta_s: Optional[float]
    #: Sweep coordinates of the point that triggered this event, when
    #: known (empty for the final summary event).
    coords: Mapping[str, Any] = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        return self.done / self.total if self.total else 1.0

    @property
    def finished(self) -> bool:
        """Whether every requested point has been accounted for."""
        return self.done >= self.total

    def describe(self) -> str:
        """One-line human-readable heartbeat."""
        parts = [f"sweep {self.done}/{self.total} ({self.fraction * 100:.0f} %)"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.eta_s is not None and not self.finished:
            parts.append(f"ETA {self.eta_s:.0f} s")
        elif self.finished:
            parts.append(f"done in {self.elapsed_s:.1f} s")
        return ", ".join(parts)


class ProgressSink:
    """Receives sweep heartbeats; subclass and override :meth:`emit`."""

    def emit(self, event: ProgressEvent) -> None:
        """Handle one heartbeat (default: drop it)."""


class NullProgressSink(ProgressSink):
    """Discards every event (the library default)."""


class CallbackProgressSink(ProgressSink):
    """Forwards every event to a callable (tests, custom UIs)."""

    def __init__(self, callback: Callable[[ProgressEvent], None]) -> None:
        self._callback = callback

    def emit(self, event: ProgressEvent) -> None:
        self._callback(event)


class StreamProgressSink(ProgressSink):
    """Writes one-line heartbeats to a text stream, rate-limited.

    ``min_interval_s`` suppresses events arriving faster than the
    limit -- a 2000-point sweep at 50 points/s should not print 2000
    lines -- except that the final (``finished``) event is always
    written.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._stream = stream
        self._min_interval_s = min_interval_s
        self._clock = clock
        self._last_emit: Optional[float] = None

    def emit(self, event: ProgressEvent) -> None:
        now = self._clock()
        if (
            not event.finished
            and self._last_emit is not None
            and now - self._last_emit < self._min_interval_s
        ):
            return
        self._last_emit = now
        stream = self._stream if self._stream is not None else sys.stderr
        print(event.describe(), file=stream, flush=True)


class SweepProgress:
    """Tracks a running sweep and feeds heartbeats to a sink.

    Driven by :func:`repro.analysis.sweep.sweep_use_case`: one
    :meth:`point_done` per completed point (in completion order) and a
    single :meth:`finish` once the failure count is known.
    """

    def __init__(
        self,
        sink: ProgressSink,
        total: int,
        resumed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._sink = sink
        self._total = total
        self._resumed = resumed
        self._clock = clock
        self._start = clock()
        self._done = resumed
        self._failed = 0
        if resumed:
            # Announce the warm start before any new work lands.
            self._sink.emit(self._event())

    def _event(self, coords: Optional[Mapping[str, Any]] = None) -> ProgressEvent:
        elapsed = self._clock() - self._start
        computed = self._done - self._resumed
        remaining = self._total - self._done
        eta = elapsed / computed * remaining if computed > 0 else None
        return ProgressEvent(
            done=self._done,
            total=self._total,
            failed=self._failed,
            resumed=self._resumed,
            elapsed_s=elapsed,
            eta_s=eta,
            coords=dict(coords) if coords else {},
        )

    def point_done(self, coords: Optional[Mapping[str, Any]] = None) -> None:
        """Record one successfully computed point and emit a heartbeat."""
        self._done += 1
        self._sink.emit(self._event(coords))

    def finish(self, failed: int = 0) -> None:
        """Record the final failure tally and emit the summary event.

        Skipped when the last :meth:`point_done` already reported the
        complete, failure-free sweep -- the summary would duplicate it.
        """
        already_reported = self._done >= self._total and failed == 0
        self._failed = failed
        self._done = min(self._total, self._done + failed)
        if not already_reported:
            self._sink.emit(self._event())
