"""Structured metrics export: the stable ``repro-metrics/1`` schema.

Every CLI runner accepts ``--metrics-out FILE`` and writes one JSON
document describing the run.  The schema is *stable*: keys are only
ever added, never renamed or removed, and the ``schema`` field names
the version a consumer should validate against.

Schema (version ``repro-metrics/1``)::

    {
      "schema":   "repro-metrics/1",
      "command":  "<CLI subcommand or caller-chosen label>",
      "generated_by": "repro <version>",
      "counters": {"<name>": <int>, ...},
      "gauges":   {"<name>": <number>, ...},
      "timers":   {"<name>": {"seconds": <float>, "calls": <int>}, ...},
      "histograms": {"<name>": {"count": <int>, "sum": <float>,
                                "min": <number|null>, "max": <number|null>,
                                "mean": <float>}, ...},
      "profile":  {"total_s": <float>,
                   "phases": [{"name": <str>, "seconds": <float>,
                               "calls": <int>, "share": <float>}, ...]}
    }

Optional additive keys (absent from older payloads, ignored by older
consumers): ``"backend"`` -- the simulation backend the run selected
(``--backend``); backend usage also appears as ``system.backend.<name>``
and ``sweep.backend.<name>`` counters.

Conventional metric namespaces (see docs/architecture.md):

- ``system.*``  -- transaction/chunk counts from the memory system
- ``engine.*``  -- row hits/misses, bank conflicts, queue stalls,
  power-state transitions aggregated over simulated channels
- ``sweep.*``   -- points total/completed/resumed/failed, run timer
- ``sim.*``     -- per-point bookkeeping (points simulated)

:func:`validate_metrics` checks a payload against the schema and
returns a list of problems (empty = valid); ``python -m
repro.telemetry.export FILE...`` runs the same validation from CI.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: The schema identifier written into (and expected from) payloads.
METRICS_SCHEMA = "repro-metrics/1"

#: Top-level keys every payload must carry.
REQUIRED_KEYS = (
    "schema",
    "command",
    "generated_by",
    "counters",
    "gauges",
    "timers",
    "histograms",
    "profile",
)

PathLike = Union[str, Path]


def metrics_payload(
    command: str, telemetry: "Telemetry", backend: Optional[str] = None
) -> Dict[str, Any]:
    """Assemble the export payload for one run.

    ``command`` labels the run (the CLI passes its subcommand);
    ``telemetry`` supplies the registry snapshot and phase profile.
    ``backend`` (the run's ``--backend`` selection) adds a top-level
    ``"backend"`` key -- an additive extension of the schema, so
    version-1 consumers are unaffected.  Per-run backend usage is also
    visible in the ``system.backend.*`` / ``sweep.backend.*`` counters
    regardless.
    """
    from repro import __version__

    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "command": command,
        "generated_by": f"repro {__version__}",
    }
    if backend is not None:
        payload["backend"] = backend
    payload.update(telemetry.registry.as_dict())
    payload["profile"] = telemetry.profiler.report().as_dict()
    return payload


def write_metrics(
    path: PathLike,
    command: str,
    telemetry: "Telemetry",
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Write the run's metrics JSON to ``path`` and return the payload."""
    payload = metrics_payload(command, telemetry, backend=backend)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return payload


def _is_number(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_name_map(
    payload: Dict[str, Any], key: str, problems: List[str], leaf: str
) -> None:
    section = payload.get(key)
    if not isinstance(section, dict):
        problems.append(f"{key}: expected an object, got {type(section).__name__}")
        return
    for name, value in section.items():
        if not isinstance(name, str) or not name:
            problems.append(f"{key}: metric names must be non-empty strings")
            continue
        if leaf == "number":
            if not _is_number(value):
                problems.append(f"{key}.{name}: expected a number, got {value!r}")
        elif leaf == "timer":
            if not isinstance(value, dict):
                problems.append(f"{key}.{name}: expected an object")
                continue
            if not _is_number(value.get("seconds")) or value.get("seconds") < 0:
                problems.append(f"{key}.{name}.seconds: expected a number >= 0")
            if not isinstance(value.get("calls"), int) or value.get("calls") < 0:
                problems.append(f"{key}.{name}.calls: expected an int >= 0")
        elif leaf == "histogram":
            if not isinstance(value, dict):
                problems.append(f"{key}.{name}: expected an object")
                continue
            if not isinstance(value.get("count"), int) or value.get("count") < 0:
                problems.append(f"{key}.{name}.count: expected an int >= 0")
            if not _is_number(value.get("sum")):
                problems.append(f"{key}.{name}.sum: expected a number")
            for bound in ("min", "max"):
                if value.get(bound) is not None and not _is_number(value[bound]):
                    problems.append(
                        f"{key}.{name}.{bound}: expected a number or null"
                    )


def validate_metrics(payload: Any) -> List[str]:
    """Validate a payload against ``repro-metrics/1``.

    Returns a list of human-readable problems; an empty list means the
    payload is schema-valid.  Never raises on malformed input.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload: expected an object, got {type(payload).__name__}"]
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing required key {key!r}")
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema: expected {METRICS_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("command", "generated_by"):
        if key in payload and not isinstance(payload[key], str):
            problems.append(f"{key}: expected a string")
    if "counters" in payload:
        _check_name_map(payload, "counters", problems, "number")
        if isinstance(payload["counters"], dict):
            for name, value in payload["counters"].items():
                if _is_number(value) and not isinstance(value, int):
                    problems.append(f"counters.{name}: expected an integer")
    if "gauges" in payload:
        _check_name_map(payload, "gauges", problems, "number")
    if "timers" in payload:
        _check_name_map(payload, "timers", problems, "timer")
    if "histograms" in payload:
        _check_name_map(payload, "histograms", problems, "histogram")
    profile = payload.get("profile")
    if profile is not None:
        if not isinstance(profile, dict):
            problems.append("profile: expected an object")
        else:
            if not _is_number(profile.get("total_s")) or profile.get("total_s") < 0:
                problems.append("profile.total_s: expected a number >= 0")
            phases = profile.get("phases")
            if not isinstance(phases, list):
                problems.append("profile.phases: expected a list")
            else:
                for i, phase in enumerate(phases):
                    if not isinstance(phase, dict):
                        problems.append(f"profile.phases[{i}]: expected an object")
                        continue
                    if not isinstance(phase.get("name"), str) or not phase["name"]:
                        problems.append(
                            f"profile.phases[{i}].name: expected a non-empty string"
                        )
                    if not _is_number(phase.get("seconds")) or phase["seconds"] < 0:
                        problems.append(
                            f"profile.phases[{i}].seconds: expected a number >= 0"
                        )
                    if not isinstance(phase.get("calls"), int) or phase["calls"] < 0:
                        problems.append(
                            f"profile.phases[{i}].calls: expected an int >= 0"
                        )
                    share = phase.get("share")
                    if not _is_number(share) or not 0.0 <= share <= 1.0:
                        problems.append(
                            f"profile.phases[{i}].share: expected a number in [0, 1]"
                        )
    return problems


def validate_metrics_file(path: PathLike) -> List[str]:
    """Validate one metrics JSON file (reads + parses + validates)."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    return [f"{path}: {p}" for p in validate_metrics(payload)]


def main(argv: Optional[List[str]] = None) -> int:
    """Validator CLI: ``python -m repro.telemetry.export FILE...``.

    Exits 0 when every file is schema-valid, 1 otherwise; problems are
    printed one per line.  This is the "small validator script" the CI
    telemetry smoke job runs over ``--metrics-out`` artifacts.
    """
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.telemetry.export METRICS_JSON...")
        return 2
    failed = False
    for path in args:
        problems = validate_metrics_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(problem)
        else:
            print(f"{path}: OK ({METRICS_SCHEMA})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
