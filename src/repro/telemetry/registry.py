"""The metrics registry: counters, gauges, timers and histograms.

Instruments are created lazily by name (``registry.counter("x")``)
and live for the registry's lifetime, so hot code obtains its
instrument once and updates it with plain attribute arithmetic -- the
registry dictionary is never touched per event.

A *disabled* registry hands out shared no-op instruments instead: a
tap through a disabled registry costs one no-op method call, and the
simulator's hot loops avoid even that by tapping the registry once
per *run* rather than once per burst (the per-burst statistics are
plain integers the engine collects anyway).  The
``benchmarks/bench_telemetry_overhead.py`` guard pins the disabled
path within 2 % of the untapped runtime.

Metric names are dotted paths (``engine.row_hits``,
``sweep.points_completed``); the conventional namespaces are
documented in docs/architecture.md (Observability).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (add({amount}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Timer:
    """Accumulated wall-clock over any number of timed sections."""

    __slots__ = ("name", "seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0

    def record(self, seconds: float) -> None:
        """Add one timed section of ``seconds`` wall-clock."""
        if seconds < 0:
            raise ConfigurationError(
                f"timer {self.name!r} cannot record negative time ({seconds})"
            )
        self.seconds += seconds
        self.calls += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager timing the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)


class Histogram:
    """Streaming summary of a value distribution.

    Deliberately simple -- count, sum, min, max -- which is enough for
    the "how skewed were the per-point runtimes" questions the sweep
    campaigns ask; full bucketed histograms can be layered on later
    without changing the export schema's shape.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    def add(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullTimer(Timer):
    def record(self, seconds: float) -> None:  # noqa: D102 - no-op
        pass

    @contextmanager
    def time(self) -> Iterator[None]:  # noqa: D102 - no-op
        yield


class _NullHistogram(Histogram):
    def record(self, value: float) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = _NullCounter("<disabled>")
_NULL_GAUGE = _NullGauge("<disabled>")
_NULL_TIMER = _NullTimer("<disabled>")
_NULL_HISTOGRAM = _NullHistogram("<disabled>")


class MetricsRegistry:
    """Named instruments, created lazily and exported as one dict.

    ``enabled=False`` builds a registry whose instruments are shared
    no-ops and whose export is empty; it is safe (and cheap) to thread
    through the whole stack unconditionally.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_TIMER
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every instrument in the export schema's shape."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "timers": {
                name: {"seconds": t.seconds, "calls": t.calls}
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                }
                for name, h in sorted(self._histograms.items())
            },
        }
