"""The per-run telemetry session: one registry + one profiler.

Every simulation entry point (``MultiChannelMemorySystem.run``,
``simulate_use_case``, ``sweep_use_case``, the figure runners and the
CLI) accepts ``telemetry: Optional[Telemetry] = None``:

- ``None`` (the default) keeps the entire stack on its untapped fast
  path -- results are bit-identical and the overhead guard
  (``benchmarks/bench_telemetry_overhead.py``) pins the residual cost
  below 2 %.
- :meth:`Telemetry.enabled` collects everything: registry counters,
  phase wall-clock, engine statistics.
- :meth:`Telemetry.disabled` is a live object whose instruments are
  no-ops; useful where a caller wants to thread one object
  unconditionally and flip collection with a flag.
"""

from __future__ import annotations

from typing import ContextManager, Optional

from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler, ProfileReport
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry, Timer


class Telemetry:
    """Bundles the metric registry and phase profiler for one run."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else PhaseProfiler()

    @classmethod
    def enabled(cls) -> "Telemetry":
        """A fully collecting session."""
        return cls(MetricsRegistry(enabled=True), PhaseProfiler())

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A live session whose instruments are all no-ops."""
        return cls(MetricsRegistry(enabled=False), NULL_PROFILER)

    @property
    def is_enabled(self) -> bool:
        """Whether this session actually records anything."""
        return self.registry.enabled

    # -- convenience passthroughs --------------------------------------

    def phase(self, name: str) -> ContextManager[None]:
        """Time the enclosed block as profiler phase ``name``."""
        return self.profiler.phase(name)

    def counter(self, name: str) -> Counter:
        """Registry counter ``name``."""
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Registry gauge ``name``."""
        return self.registry.gauge(name)

    def timer(self, name: str) -> Timer:
        """Registry timer ``name``."""
        return self.registry.timer(name)

    def histogram(self, name: str) -> Histogram:
        """Registry histogram ``name``."""
        return self.registry.histogram(name)

    def profile_report(self) -> ProfileReport:
        """Snapshot of the accumulated phase breakdown."""
        return self.profiler.report()
