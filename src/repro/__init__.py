"""repro: multi-channel memory simulation for video recording.

A from-scratch Python reproduction of *"A case for multi-channel
memories in video recording"* (Aho, Nikara, Tuominen, Kuusilinna --
Nokia Research Center, DATE 2009): a transaction-level simulator for
multi-channel mobile-DDR execution memories, driven by a complete
model of a camcorder's processing chain (image pipeline + H.264/AVC
encoding), with Micron-methodology DRAM power and 3D-stacking
interface power models.

Quickstart::

    from repro import (
        SystemConfig, level_by_name, simulate_use_case,
    )

    level = level_by_name("4")          # 1080p @ 30 fps
    config = SystemConfig(channels=4, freq_mhz=400.0)
    point = simulate_use_case(level, config)
    print(f"access time {point.access_time_ms:.1f} ms, "
          f"power {point.total_power_mw:.0f} mW, verdict {point.verdict}")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.

The heavy ``repro.analysis`` / ``repro.telemetry`` surfaces load
lazily (PEP 562): ``import repro`` pays for the simulation core only,
and e.g. ``repro.analysis.charts`` is imported the first time an
analysis name is actually touched.
"""

from repro.backends import (
    ChannelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.controller import (
    AddressMultiplexing,
    ChannelRun,
    MasterTransaction,
    Op,
    PagePolicy,
)
from repro.core import (
    AnalyticModel,
    ChannelCluster,
    ChannelInterleaver,
    ClusteredMemorySystem,
    MultiChannelMemorySystem,
    SimulationResult,
    SystemConfig,
)
from repro.dram import (
    ImmediatePowerDown,
    NEXT_GEN_MOBILE_DDR,
    NoPowerDown,
    PowerModel,
    ProtocolChecker,
    TimeoutPowerDown,
    next_gen_mobile_ddr,
)
from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR, STANDARD_DDR2
from repro.load import (
    VideoRecordingLoadModel,
    choose_scale,
    pace_transactions,
    read_trace,
    write_trace,
)
from repro.power import (
    XDR_CELL_BE,
    compute_frame_power,
    interface_power_w,
)
from repro.resilience import (
    JobFailure,
    RetryPolicy,
    SweepCheckpoint,
    SweepReport,
)
from repro.usecase import (
    FORMAT_1080P,
    FORMAT_2160P,
    FORMAT_720P,
    FORMAT_WVGA,
    H264Level,
    PAPER_LEVELS,
    VideoRecordingUseCase,
    compute_table1,
    level_by_name,
)

__version__ = "1.0.0"

#: Names resolved lazily (PEP 562): attribute -> providing module.
#: ``import repro`` must stay cheap -- in particular it must NOT pull
#: in ``repro.analysis`` (and through it the chart/export machinery);
#: ``tests/test_import_cost.py`` pins that.  The telemetry surface is
#: listed for the same reason, although the simulation core's optional
#: telemetry taps already import ``repro.telemetry.session``.
_LAZY_ATTRS = {
    # analysis
    "RealTimeVerdict": "repro.analysis",
    "realtime_verdict": "repro.analysis",
    "compare_energy_strategies": "repro.analysis",
    "conclusions_summary": "repro.analysis",
    "find_minimum_power_configuration": "repro.analysis",
    "minimum_channels": "repro.analysis",
    "stage_breakdown": "repro.analysis",
    "run_fig3": "repro.analysis",
    "run_fig4": "repro.analysis",
    "run_fig5": "repro.analysis",
    "run_table1": "repro.analysis",
    "run_table2": "repro.analysis",
    "run_xdr_comparison": "repro.analysis",
    "simulate_use_case": "repro.analysis",
    "sweep_use_case": "repro.analysis",
    # oracle (pulls in repro.analysis, so it must stay lazy too)
    "CostPlanner": "repro.oracle",
    "FeasibilityOracle": "repro.oracle",
    "OracleAnswer": "repro.oracle",
    "SurrogateSurface": "repro.oracle",
    # telemetry
    "CallbackProgressSink": "repro.telemetry",
    "MetricsRegistry": "repro.telemetry",
    "PhaseProfiler": "repro.telemetry",
    "ProfileReport": "repro.telemetry",
    "ProgressEvent": "repro.telemetry",
    "ProgressSink": "repro.telemetry",
    "StreamProgressSink": "repro.telemetry",
    "Telemetry": "repro.telemetry",
    "validate_metrics": "repro.telemetry",
    "write_metrics": "repro.telemetry",
}


def __getattr__(name: str):
    """Resolve a lazily exported name (PEP 562) and cache it."""
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    """Advertise lazy names alongside the eagerly imported ones."""
    return sorted(set(globals()) | set(_LAZY_ATTRS))


__all__ = [
    # analysis (lazy)
    "RealTimeVerdict",
    "realtime_verdict",
    "compare_energy_strategies",
    "conclusions_summary",
    "find_minimum_power_configuration",
    "minimum_channels",
    "stage_breakdown",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_table2",
    "run_xdr_comparison",
    "simulate_use_case",
    "sweep_use_case",
    # oracle (lazy)
    "CostPlanner",
    "FeasibilityOracle",
    "OracleAnswer",
    "SurrogateSurface",
    # backends
    "ChannelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    # controller
    "AddressMultiplexing",
    "ChannelRun",
    "MasterTransaction",
    "Op",
    "PagePolicy",
    # core
    "AnalyticModel",
    "ChannelCluster",
    "ChannelInterleaver",
    "ClusteredMemorySystem",
    "MultiChannelMemorySystem",
    "SimulationResult",
    "SystemConfig",
    # dram
    "CONTEMPORARY_MOBILE_DDR",
    "ImmediatePowerDown",
    "NEXT_GEN_MOBILE_DDR",
    "NoPowerDown",
    "PowerModel",
    "ProtocolChecker",
    "STANDARD_DDR2",
    "TimeoutPowerDown",
    "next_gen_mobile_ddr",
    # load
    "VideoRecordingLoadModel",
    "choose_scale",
    "pace_transactions",
    "read_trace",
    "write_trace",
    # power
    "XDR_CELL_BE",
    "compute_frame_power",
    "interface_power_w",
    # resilience
    "JobFailure",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepReport",
    # telemetry (lazy)
    "CallbackProgressSink",
    "MetricsRegistry",
    "PhaseProfiler",
    "ProfileReport",
    "ProgressEvent",
    "ProgressSink",
    "StreamProgressSink",
    "Telemetry",
    "validate_metrics",
    "write_metrics",
    # usecase
    "FORMAT_1080P",
    "FORMAT_2160P",
    "FORMAT_720P",
    "FORMAT_WVGA",
    "H264Level",
    "PAPER_LEVELS",
    "VideoRecordingUseCase",
    "compute_table1",
    "level_by_name",
    "__version__",
]
