"""repro: multi-channel memory simulation for video recording.

A from-scratch Python reproduction of *"A case for multi-channel
memories in video recording"* (Aho, Nikara, Tuominen, Kuusilinna --
Nokia Research Center, DATE 2009): a transaction-level simulator for
multi-channel mobile-DDR execution memories, driven by a complete
model of a camcorder's processing chain (image pipeline + H.264/AVC
encoding), with Micron-methodology DRAM power and 3D-stacking
interface power models.

Quickstart::

    from repro import (
        SystemConfig, level_by_name, simulate_use_case,
    )

    level = level_by_name("4")          # 1080p @ 30 fps
    config = SystemConfig(channels=4, freq_mhz=400.0)
    point = simulate_use_case(level, config)
    print(f"access time {point.access_time_ms:.1f} ms, "
          f"power {point.total_power_mw:.0f} mW, verdict {point.verdict}")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.analysis import (
    RealTimeVerdict,
    compare_energy_strategies,
    conclusions_summary,
    find_minimum_power_configuration,
    minimum_channels,
    realtime_verdict,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_xdr_comparison,
    simulate_use_case,
    stage_breakdown,
    sweep_use_case,
)
from repro.controller import (
    AddressMultiplexing,
    ChannelRun,
    MasterTransaction,
    Op,
    PagePolicy,
)
from repro.core import (
    AnalyticModel,
    ChannelCluster,
    ChannelInterleaver,
    ClusteredMemorySystem,
    MultiChannelMemorySystem,
    SimulationResult,
    SystemConfig,
)
from repro.dram import (
    ImmediatePowerDown,
    NEXT_GEN_MOBILE_DDR,
    NoPowerDown,
    PowerModel,
    ProtocolChecker,
    TimeoutPowerDown,
    next_gen_mobile_ddr,
)
from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR, STANDARD_DDR2
from repro.load import (
    VideoRecordingLoadModel,
    choose_scale,
    pace_transactions,
    read_trace,
    write_trace,
)
from repro.power import (
    XDR_CELL_BE,
    compute_frame_power,
    interface_power_w,
)
from repro.resilience import (
    JobFailure,
    RetryPolicy,
    SweepCheckpoint,
    SweepReport,
)
from repro.telemetry import (
    CallbackProgressSink,
    MetricsRegistry,
    PhaseProfiler,
    ProfileReport,
    ProgressEvent,
    ProgressSink,
    StreamProgressSink,
    Telemetry,
    validate_metrics,
    write_metrics,
)
from repro.usecase import (
    FORMAT_1080P,
    FORMAT_2160P,
    FORMAT_720P,
    FORMAT_WVGA,
    H264Level,
    PAPER_LEVELS,
    VideoRecordingUseCase,
    compute_table1,
    level_by_name,
)

__version__ = "1.0.0"

__all__ = [
    # analysis
    "RealTimeVerdict",
    "realtime_verdict",
    "compare_energy_strategies",
    "conclusions_summary",
    "find_minimum_power_configuration",
    "minimum_channels",
    "stage_breakdown",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_table2",
    "run_xdr_comparison",
    "simulate_use_case",
    "sweep_use_case",
    # controller
    "AddressMultiplexing",
    "ChannelRun",
    "MasterTransaction",
    "Op",
    "PagePolicy",
    # core
    "AnalyticModel",
    "ChannelCluster",
    "ChannelInterleaver",
    "ClusteredMemorySystem",
    "MultiChannelMemorySystem",
    "SimulationResult",
    "SystemConfig",
    # dram
    "CONTEMPORARY_MOBILE_DDR",
    "ImmediatePowerDown",
    "NEXT_GEN_MOBILE_DDR",
    "NoPowerDown",
    "PowerModel",
    "ProtocolChecker",
    "STANDARD_DDR2",
    "TimeoutPowerDown",
    "next_gen_mobile_ddr",
    # load
    "VideoRecordingLoadModel",
    "choose_scale",
    "pace_transactions",
    "read_trace",
    "write_trace",
    # power
    "XDR_CELL_BE",
    "compute_frame_power",
    "interface_power_w",
    # resilience
    "JobFailure",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepReport",
    # telemetry
    "CallbackProgressSink",
    "MetricsRegistry",
    "PhaseProfiler",
    "ProfileReport",
    "ProgressEvent",
    "ProgressSink",
    "StreamProgressSink",
    "Telemetry",
    "validate_metrics",
    "write_metrics",
    # usecase
    "FORMAT_1080P",
    "FORMAT_2160P",
    "FORMAT_720P",
    "FORMAT_WVGA",
    "H264Level",
    "PAPER_LEVELS",
    "VideoRecordingUseCase",
    "compute_table1",
    "level_by_name",
    "__version__",
]
