"""Unit conversions and physical constants used throughout the simulator.

The paper mixes several unit conventions: memory traffic is quoted in
megabits (``Mb``, decimal, :math:`10^6` bits) per frame or per second,
bandwidth in ``MB/s``/``GB/s`` (decimal bytes), DRAM capacities in
binary megabits, times in milliseconds and nanoseconds, and power in
milliwatts.  Centralising the conversions here keeps every experiment
consistent with Table I's conventions and avoids the classic decimal vs
binary mixups.

All helpers are plain functions over ``float``/``int`` so they can be
used in performance-sensitive inner loops without object overhead.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Information quantities.
# ---------------------------------------------------------------------------

#: Bits per byte.
BITS_PER_BYTE = 8

#: Decimal prefixes (used by the paper for traffic and bandwidth numbers).
KILO = 10**3
MEGA = 10**6
GIGA = 10**9

#: Binary prefixes (used for DRAM capacities: a "512 Mb" device is 2**29 bits).
KIBI = 2**10
MEBI = 2**20
GIBI = 2**30


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes."""
    return bits / BITS_PER_BYTE


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * BITS_PER_BYTE


def bits_to_megabits(bits: float) -> float:
    """Convert bits to decimal megabits (the unit of Table I cells)."""
    return bits / MEGA


def megabits_to_bits(mbits: float) -> float:
    """Convert decimal megabits to bits."""
    return mbits * MEGA


def bytes_to_megabytes(nbytes: float) -> float:
    """Convert bytes to decimal megabytes (Table I's ``MB/s`` row)."""
    return nbytes / MEGA


def bytes_to_gigabytes(nbytes: float) -> float:
    """Convert bytes to decimal gigabytes (the prose quotes ``GB/s``)."""
    return nbytes / GIGA


# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------

NS_PER_S = 10**9
NS_PER_MS = 10**6
NS_PER_US = 10**3


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds (Fig. 3/4 plot access time in ms)."""
    return ns / NS_PER_MS


def ms_to_ns(ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return ms * NS_PER_MS


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * MEGA


def clock_period_ns(freq_mhz: float) -> float:
    """Return the clock period in nanoseconds for a frequency in MHz.

    >>> clock_period_ns(200.0)
    5.0
    """
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz} MHz")
    return 1000.0 / freq_mhz


def ns_to_cycles(ns: float, freq_mhz: float) -> int:
    """Convert a duration in ns to a (ceiling) number of clock cycles.

    DRAM timing constraints expressed in nanoseconds always round *up*
    to whole interface clock cycles — a controller cannot issue a
    command a fraction of a cycle early.

    >>> ns_to_cycles(15.0, 200.0)   # 15 ns at a 5 ns period
    3
    >>> ns_to_cycles(15.0, 266.0)   # 15 ns at ~3.76 ns -> 4 cycles
    4
    """
    if ns <= 0:
        return 0
    period = clock_period_ns(freq_mhz)
    cycles = int(ns / period)
    if cycles * period < ns - 1e-9:
        cycles += 1
    return cycles


def cycles_to_ns(cycles: float, freq_mhz: float) -> float:
    """Convert a cycle count at ``freq_mhz`` to nanoseconds."""
    return cycles * clock_period_ns(freq_mhz)


# ---------------------------------------------------------------------------
# Frame-rate helpers.
# ---------------------------------------------------------------------------


def frame_period_ms(fps: float) -> float:
    """Real-time budget for one frame in milliseconds.

    The paper's Fig. 3/4 draw this as the red "real-time requirement"
    line: 33.3 ms at 30 fps and 16.7 ms at 60 fps.
    """
    if fps <= 0:
        raise ValueError(f"frame rate must be positive, got {fps}")
    return 1000.0 / fps


def per_frame_to_per_second(bits_per_frame: float, fps: float) -> float:
    """Scale a per-frame traffic figure (bits) to a per-second one."""
    return bits_per_frame * fps


# ---------------------------------------------------------------------------
# Power.
# ---------------------------------------------------------------------------


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts (Fig. 5's unit)."""
    return watts * 1000.0


def milliwatts_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return mw / 1000.0
