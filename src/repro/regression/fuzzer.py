"""Differential fuzzing: every backend against the reference engine.

A seeded, wall-clock-free deterministic generator samples the
configuration space the paper sweeps -- channel counts, interface
clocks, page policies, address multiplexings, power-down policies --
crossed with synthetic traffic shapes (sequential streams, strided
walks, uniform random access, alternating read/write pairs, paced
arrivals) drawn from :mod:`repro.load.generators`, plus scaled-down
frames of the registered workload zoo (:mod:`repro.workloads`) so the
campaign also exercises the exact multi-buffer block-interleaved shape
the sweeps run.  Every case runs under the ``reference`` engine and
each backend under test:

- a backend declaring
  :attr:`~repro.backends.base.ChannelBackend.reference_tolerance` of
  ``0`` (``fast``) must be **bit-identical** -- access time, command
  counters, per-channel finish cycles, bank accesses and power-state
  residencies all compared exactly;
- a screening backend (``analytic``) must track the reference access
  time within its declared tolerance.  The closed-form model documents
  that tolerance *for streaming workloads only*, so screening checks
  run on the streaming traffic shapes and are skipped (not silently
  passed) on the row-locality worst cases.

A failing case is **shrunk** -- greedy delta-debugging over the
transaction list -- to a minimal still-failing input, and reported as
a one-line repro string (config fields plus trace-format transactions)
that :func:`run_repro` replays directly.

Determinism: the only entropy source is ``random.Random`` seeded from
``(seed, index)``; no wall clock, no host state.  The same seed and
case count always produce the same cases, on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.controller.mapping import AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.request import MasterTransaction, Op
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.system import MultiChannelMemorySystem
from repro.dram.powerstate import (
    ImmediatePowerDown,
    NoPowerDown,
    TimeoutPowerDown,
)
from repro.errors import RegressionError, TraceFormatError
from repro.load.generators import (
    alternating_rw_stream,
    random_stream,
    sequential_stream,
    strided_stream,
)
from repro.load.trace import parse_trace_line

#: Traffic shapes the generator samples.  The flag marks the shapes
#: that *can* qualify as streaming for the analytic screening check
#: (uniform random access never does; see :func:`generate_case` for
#: the further open-page and minimum-size conditions).
TRAFFIC_KINDS: Tuple[Tuple[str, bool], ...] = (
    ("sequential", True),
    # Large strides open a new row on every access, often in the same
    # bank (tRC-serialised), which the closed form's queue-hiding
    # assumption cannot see (observed up to ~80% deviation); and
    # alternating R/W ping-pongs direction on every block, far more
    # turnaround-dominated than the paper's workloads (observed
    # 28-40%).  Both are differential-checked against the bit-identical
    # backends only.
    ("strided", False),
    ("alternating", False),
    ("random", False),
    ("paced", True),
    # A scaled-down frame of a registered zoo workload (see
    # :mod:`repro.workloads`): block-interleaved multi-buffer streams
    # with per-stage direction switches, the shape the paper's sweeps
    # actually run.  At fuzzing scale the per-stage streams are short
    # enough that startup/turnaround costs dominate, outside the
    # analytic model's documented streaming regime, so these cases are
    # differential-checked against the bit-identical backends only.
    ("workload", False),
)

#: Zoo specs the ``workload`` traffic kind samples.  Deliberately a
#: frozen list of built-ins rather than ``available_workloads()``:
#: case generation must not depend on what a host process registered
#: at runtime (same seed, same cases, any machine).
FUZZ_WORKLOADS = (
    "h264_camcorder",
    "vvc_encoder",
    "h264_lossy_ec",
    "vdcm_display",
)

#: Minimum *per-channel* traffic (16-byte chunks) for the analytic
#: screening check: below this the fixed startup costs (first
#: activation, interconnect address phase) dominate and a *relative*
#: tolerance is meaningless -- a single-burst case is ~40 ns of fixed
#: overhead against a ~10 ns estimate, an "error" of 80% that says
#: nothing about the model.  Scaled by the channel count because the
#: startup cost is paid per channel stream.
ANALYTIC_MIN_CHUNKS_PER_CHANNEL = 64

#: Clocks sampled by the fuzzer (the device's supported range).
FUZZ_FREQUENCIES_MHZ = (200.0, 266.0, 333.0, 400.0, 466.0, 533.0)

#: Channel counts sampled (the paper's plus the 16-wide extrapolation).
FUZZ_CHANNELS = (1, 2, 4, 8, 16)

#: Upper bound on per-case traffic, in 16-byte chunks, so a 100-case
#: campaign stays interactive even on one CPU.
MAX_CASE_CHUNKS = 2_048


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential-test case."""

    index: int
    seed: int
    config: SystemConfig
    transactions: Tuple[MasterTransaction, ...]
    kind: str
    #: Whether screening backends (documented-tolerance) are checked
    #: on this case; the analytic tolerance only covers streaming.
    streaming: bool

    @property
    def chunks(self) -> int:
        """Total 16-byte chunks the case touches."""
        return sum(len(txn.chunk_span()) for txn in self.transactions)

    def describe(self) -> str:
        """One line: coordinates + traffic shape."""
        return (
            f"case {self.index} (seed {self.seed}): {self.kind}, "
            f"{len(self.transactions)} txns / {self.chunks} chunks on "
            f"{self.config.channels}ch @ {self.config.freq_mhz:g} MHz, "
            f"{self.config.multiplexing.value}, "
            f"{self.config.page_policy.value}-page, "
            f"pd={self.config.power_down.name}"
        )

    def repro(self) -> str:
        """Canonical repro string: config fields, then the transaction
        list in the trace-file format, ``;``-joined.  Replay with
        :func:`run_repro` or ``repro-sim fuzz --repro STRING``."""
        head = (
            f"channels={self.config.channels} freq={self.config.freq_mhz:g} "
            f"map={self.config.multiplexing.value} "
            f"page={self.config.page_policy.value} "
            f"pd={self.config.power_down.name}"
        )
        body = ";".join(_txn_line(txn) for txn in self.transactions)
        return f"{head} | {body}"


def _txn_line(txn: MasterTransaction) -> str:
    op = "R" if txn.op is Op.READ else "W"
    if txn.arrival_ns is not None:
        return f"{op} {txn.address:#x} {txn.size} {txn.arrival_ns!r}"
    return f"{op} {txn.address:#x} {txn.size}"


def _power_down_from_name(name: str):
    if name == "immediate":
        return ImmediatePowerDown()
    if name == "never":
        return NoPowerDown()
    if name.startswith("timeout-"):
        return TimeoutPowerDown(timeout_cycles=int(name.split("-", 1)[1]))
    raise RegressionError(f"unknown power-down policy {name!r} in repro string")


def parse_repro(spec: str) -> FuzzCase:
    """Parse a :meth:`FuzzCase.repro` string back into a case."""
    try:
        head, body = spec.split("|", 1)
        fields = dict(part.split("=", 1) for part in head.split())
        config = SystemConfig(
            channels=int(fields["channels"]),
            freq_mhz=float(fields["freq"]),
            multiplexing=AddressMultiplexing(fields["map"]),
            page_policy=PagePolicy(fields["page"]),
            power_down=_power_down_from_name(fields["pd"]),
        )
        transactions = tuple(
            parse_trace_line(line.strip(), lineno=i + 1)
            for i, line in enumerate(body.split(";"))
            if line.strip()
        )
    except RegressionError:
        raise
    except (ValueError, KeyError, TraceFormatError) as exc:
        raise RegressionError(f"malformed repro string {spec!r}: {exc}") from exc
    if not transactions:
        raise RegressionError(f"repro string {spec!r} carries no transactions")
    return FuzzCase(
        index=-1,
        seed=-1,
        config=config,
        transactions=transactions,
        kind="repro",
        streaming=False,
    )


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------


def _case_rng(seed: int, index: int) -> random.Random:
    # Mix with a large odd constant so neighbouring (seed, index) pairs
    # do not collide; pure integer arithmetic keeps it hash-free and
    # stable across platforms and PYTHONHASHSEED values.
    return random.Random(seed * 1_000_003 + index)


def _generate_traffic(
    rng: random.Random, kind: str, span_limit: int
) -> List[MasterTransaction]:
    if kind == "sequential":
        total = rng.randrange(1, MAX_CASE_CHUNKS) * 16
        return sequential_stream(
            total_bytes=total,
            block_bytes=rng.choice((64, 256, 1024, 4096)),
            op=rng.choice((Op.READ, Op.WRITE)),
            base_address=rng.randrange(0, span_limit // 2 // 16) * 16,
        )
    if kind == "strided":
        accesses = rng.randrange(4, 128)
        return strided_stream(
            accesses=accesses,
            stride_bytes=rng.choice((64, 256, 2048, 4096, 8192)),
            access_bytes=rng.choice((16, 64, 128)),
            op=rng.choice((Op.READ, Op.WRITE)),
            base_address=rng.randrange(0, 1024) * 16,
        )
    if kind == "alternating":
        return alternating_rw_stream(
            pairs=rng.randrange(2, 24),
            block_bytes=rng.choice((256, 1024, 4096)),
            read_base=0,
            write_base=span_limit // 2,
        )
    if kind == "random":
        return random_stream(
            accesses=rng.randrange(8, 192),
            span_bytes=rng.choice((1 << 16, 1 << 20, span_limit // 4)),
            access_bytes=rng.choice((16, 64, 256)),
            read_fraction=rng.choice((0.25, 0.5, 0.75)),
            seed=rng.randrange(1 << 30),
        )
    if kind == "workload":
        return _workload_traffic(rng, span_limit)
    if kind == "paced":
        # Sequential stream with monotonically increasing arrival
        # stamps: opens idle gaps, exercising power-down entry/exit.
        blocks = rng.randrange(4, 48)
        block = rng.choice((256, 1024, 4096))
        gap_ns = rng.choice((50.0, 500.0, 5000.0))
        out: List[MasterTransaction] = []
        arrival = 0.0
        for i in range(blocks):
            out.append(
                MasterTransaction(
                    op=Op.READ if i % 2 else Op.WRITE,
                    address=i * block,
                    size=block,
                    arrival_ns=arrival,
                )
            )
            arrival += gap_ns * (1 + rng.random())
        return out
    raise RegressionError(f"unknown traffic kind {kind!r}")


def _workload_traffic(
    rng: random.Random, span_limit: int
) -> List[MasterTransaction]:
    """One scaled-down frame of a deterministically drawn zoo workload.

    The spec, level and intra/inter variant come from ``rng``; the
    frame is scaled so the traffic stays within
    :data:`MAX_CASE_CHUNKS` and the buffer layout fits a single
    channel's capacity (the smallest configuration a repro may be
    replayed on).
    """
    from repro.load.model import VideoRecordingLoadModel
    from repro.usecase.levels import PAPER_LEVELS
    from repro.workloads.registry import get_workload

    spec = get_workload(rng.choice(FUZZ_WORKLOADS))
    params = {}
    if "intra_only" in spec.param_defaults():
        params["intra_only"] = rng.random() < 0.25
    block_bytes = rng.choice((256, 1024, 4096))
    # Try levels smallest-first from a random start: the drawn level
    # usually fits one channel, and when a big format's buffers do
    # not, the fallback is still deterministic in (seed, index).
    start = rng.randrange(len(PAPER_LEVELS))
    ordering = PAPER_LEVELS[start:] + PAPER_LEVELS[:start]
    for level in ordering:
        use_case = spec.instantiate(level, **params)
        model = VideoRecordingLoadModel(use_case, block_bytes=block_bytes)
        if not model.address_map.fits_in(span_limit):
            continue
        frame_bytes = use_case.total_bytes_per_frame()
        scale = min(1.0, (MAX_CASE_CHUNKS * 16) / frame_bytes)
        # A too-small scale can round every stage below one 16-byte
        # granule; grow it (deterministically) until traffic appears.
        for _ in range(8):
            transactions = model.generate_frame(scale=scale)
            if transactions:
                return transactions
            scale = min(1.0, scale * 4)
    raise RegressionError(
        f"workload {spec.name!r} fits no paper level in {span_limit} bytes"
    )


def generate_case(seed: int, index: int) -> FuzzCase:
    """Deterministically generate case ``index`` of campaign ``seed``."""
    rng = _case_rng(seed, index)
    channels = rng.choice(FUZZ_CHANNELS)
    config = SystemConfig(
        channels=channels,
        freq_mhz=rng.choice(FUZZ_FREQUENCIES_MHZ),
        multiplexing=rng.choice(tuple(AddressMultiplexing)),
        page_policy=rng.choice(tuple(PagePolicy)),
        power_down=rng.choice(
            (
                ImmediatePowerDown(),
                NoPowerDown(),
                TimeoutPowerDown(timeout_cycles=rng.choice((4, 16, 64))),
            )
        ),
    )
    kind, kind_streams = TRAFFIC_KINDS[rng.randrange(len(TRAFFIC_KINDS))]
    # Traffic must fit the smallest configuration it may be replayed
    # on (1 channel = one bank cluster), so invariant checks can move
    # it across channel counts freely.
    span_limit = SystemConfig(channels=1).total_capacity_bytes
    transactions = _generate_traffic(rng, kind, span_limit)
    case = FuzzCase(
        index=index,
        seed=seed,
        config=config,
        transactions=tuple(transactions),
        kind=kind,
        streaming=False,
    )
    # The analytic tolerance is documented for the paper's workloads:
    # streaming-shaped traffic, open page policy, enough data that the
    # per-stream startup costs amortise.  Closed-page serialises every
    # burst behind its own activate/precharge, a regime the closed
    # form does not model to screening fidelity.
    streaming = (
        kind_streams
        and config.page_policy.keeps_rows_open
        and case.chunks >= ANALYTIC_MIN_CHUNKS_PER_CHANNEL * config.channels
    )
    return replace(case, streaming=streaming)


def generate_cases(seed: int, count: int) -> List[FuzzCase]:
    """The first ``count`` cases of campaign ``seed``."""
    if count < 1:
        raise RegressionError(f"case count must be >= 1, got {count}")
    return [generate_case(seed, index) for index in range(count)]


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase, backend: str) -> SimulationResult:
    """Run one case's traffic under ``backend``."""
    system = MultiChannelMemorySystem(case.config.with_backend(backend))
    return system.run(list(case.transactions))


def _diff_exact(ref: SimulationResult, other: SimulationResult) -> List[str]:
    """Bit-identity diff: every timing/counter/state field."""
    problems: List[str] = []
    if other.sample_access_time_ns != ref.sample_access_time_ns:
        problems.append(
            f"access_time_ns {other.sample_access_time_ns!r} != "
            f"{ref.sample_access_time_ns!r}"
        )
    if other.merged_counters().as_dict() != ref.merged_counters().as_dict():
        problems.append(
            f"counters {other.merged_counters().as_dict()} != "
            f"{ref.merged_counters().as_dict()}"
        )
    for index, (ch_ref, ch_other) in enumerate(zip(ref.channels, other.channels)):
        for field in (
            "finish_cycle",
            "data_cycles",
            "counters",
            "bank_accesses",
            "states",
        ):
            ref_v, other_v = getattr(ch_ref, field), getattr(ch_other, field)
            if ref_v != other_v:
                problems.append(
                    f"channel {index} {field}: {other_v!r} != {ref_v!r}"
                )
    return problems


def _diff_tolerance(
    ref: SimulationResult, other: SimulationResult, rel_tol: float
) -> List[str]:
    """Screening diff: access time within ``rel_tol``, data movement
    exact (the closed form models timing, never traffic)."""
    problems: List[str] = []
    ref_t = ref.sample_access_time_ns
    deviation = (
        abs(other.sample_access_time_ns - ref_t) / ref_t if ref_t > 0 else 0.0
    )
    if deviation > rel_tol:
        problems.append(
            f"access time off by {deviation:.1%} (> {rel_tol:.0%}): "
            f"{other.sample_access_time_ns:.0f} ns vs {ref_t:.0f} ns"
        )
    ref_counters = ref.merged_counters()
    other_counters = other.merged_counters()
    if (other_counters.reads, other_counters.writes) != (
        ref_counters.reads,
        ref_counters.writes,
    ):
        problems.append(
            f"data movement differs: R/W {other_counters.reads}/"
            f"{other_counters.writes} vs {ref_counters.reads}/"
            f"{ref_counters.writes}"
        )
    return problems


def compare_case(case: FuzzCase, backend: str) -> List[str]:
    """Differential check of one case under one backend; returns the
    list of discrepancies (empty = agreement)."""
    from repro.backends.registry import get_backend

    resolved = get_backend(backend)
    ref = run_case(case, "reference")
    other = run_case(case, backend)
    if resolved.bit_identical:
        return _diff_exact(ref, other)
    return _diff_tolerance(ref, other, resolved.reference_tolerance)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_rounds: int = 8,
) -> FuzzCase:
    """Greedy delta-debugging: drop transaction blocks, then halve
    sizes, while the case keeps failing.  Deterministic and bounded."""
    txns = list(case.transactions)

    def candidate(new_txns: Sequence[MasterTransaction]) -> FuzzCase:
        return replace(case, transactions=tuple(new_txns))

    for _ in range(max_rounds):
        shrunk = False
        block = max(1, len(txns) // 2)
        while block >= 1:
            index = 0
            while index < len(txns):
                trial = txns[:index] + txns[index + block :]
                if trial and still_fails(candidate(trial)):
                    txns = trial
                    shrunk = True
                else:
                    index += block
            block //= 2
        # Size reduction: halve each transaction (chunk-aligned).
        for index, txn in enumerate(txns):
            half = max(16, (txn.size // 2) // 16 * 16)
            if half < txn.size:
                trial = list(txns)
                trial[index] = replace(txn, size=half)
                if still_fails(candidate(trial)):
                    txns = trial
                    shrunk = True
        if not shrunk:
            break
    return candidate(txns)


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzMismatch:
    """One backend disagreement, shrunk to a minimal repro."""

    case: FuzzCase
    backend: str
    problems: Tuple[str, ...]
    repro: str

    def describe(self) -> str:
        """Multi-line report: case, discrepancies, repro string."""
        lines = [f"{self.case.describe()} under backend={self.backend}:"]
        lines += [f"  {p}" for p in self.problems]
        lines.append(f"  repro: {self.repro}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    cases: int
    checks: int
    skipped_screening: int
    mismatches: Tuple[FuzzMismatch, ...]
    violations: Tuple["InvariantViolation", ...]  # noqa: F821 - fwd ref

    @property
    def passed(self) -> bool:
        """Whether the campaign found nothing."""
        return not self.mismatches and not self.violations

    def format(self) -> str:
        """Campaign summary plus every finding."""
        lines = [
            f"fuzz campaign seed={self.seed}: {self.cases} cases, "
            f"{self.checks} differential checks "
            f"({self.skipped_screening} screening checks skipped on "
            f"non-streaming traffic), {len(self.mismatches)} mismatch(es), "
            f"{len(self.violations)} invariant violation(s)"
        ]
        lines += [m.describe() for m in self.mismatches]
        lines += [v.describe() for v in self.violations]
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def run_fuzz(
    cases: int = 100,
    seed: int = 0,
    backends: Optional[Sequence[str]] = None,
    check_invariants: bool = True,
    shrink: bool = True,
    telemetry=None,
) -> FuzzReport:
    """Run a differential-fuzzing campaign.

    ``backends`` defaults to every built-in backend other than the
    reference itself: ``fast``, ``analytic``, and -- when the numpy
    optional extra is installed -- ``batch``.  ``check_invariants``
    additionally evaluates the metamorphic oracles of
    :mod:`repro.regression.invariants` on every case.  ``telemetry``
    counts ``regression.cases`` and ``regression.mismatches``.
    """
    import importlib.util

    from repro.regression.invariants import check_case_invariants

    if backends is None:
        backends = ("fast", "analytic")
        if importlib.util.find_spec("numpy") is not None:
            backends = backends + ("batch",)
    from repro.backends.registry import get_backend

    resolved = {name: get_backend(name) for name in backends}

    generated = generate_cases(seed, cases)
    mismatches: List[FuzzMismatch] = []
    violations: List = []
    checks = 0
    skipped = 0
    for case in generated:
        for name, backend in resolved.items():
            if not backend.bit_identical and not case.streaming:
                skipped += 1
                continue
            checks += 1
            problems = compare_case(case, name)
            if not problems:
                continue
            minimal = case
            if shrink:
                minimal = shrink_case(
                    case, lambda c, _n=name: bool(compare_case(c, _n))
                )
                problems = compare_case(minimal, name) or problems
            mismatches.append(
                FuzzMismatch(
                    case=minimal,
                    backend=name,
                    problems=tuple(problems),
                    repro=minimal.repro(),
                )
            )
        if check_invariants:
            violations.extend(check_case_invariants(case))
    report = FuzzReport(
        seed=seed,
        cases=len(generated),
        checks=checks,
        skipped_screening=skipped,
        mismatches=tuple(mismatches),
        violations=tuple(violations),
    )
    if telemetry is not None:
        telemetry.registry.counter("regression.cases").add(report.cases)
        telemetry.registry.counter("regression.mismatches").add(
            len(report.mismatches) + len(report.violations)
        )
    return report


def run_repro(spec: str, backend: str = "fast") -> List[str]:
    """Replay a repro string under ``backend``; returns discrepancies
    (empty = the repro no longer fails)."""
    return compare_case(parse_repro(spec), backend)
