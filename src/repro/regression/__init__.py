"""Regression subsystem: golden baselines, differential fuzzing,
metamorphic invariants.

Three complementary nets under the paper's numbers:

- :mod:`repro.regression.baseline` pins the Table I/II and Fig. 3/4/5
  artifacts to versioned JSON goldens with per-metric tolerances
  (``repro-sim verify-paper``);
- :mod:`repro.regression.fuzzer` differentially fuzzes every backend
  against the reference engine over the sampled configuration space
  (``repro-sim fuzz``);
- :mod:`repro.regression.invariants` checks metamorphic relations --
  monotonicity in channels and clock, prefix consistency -- that hold
  even if every backend shares a bug.
"""

from repro.regression.baseline import (
    GOLDEN_ARTIFACTS,
    GOLDEN_CHUNK_BUDGET,
    GOLDEN_SCHEMA,
    PACKAGED_GOLDENS_DIR,
    CellDiff,
    GoldenComparison,
    PaperVerification,
    Tolerance,
    capture_goldens,
    compare_grid,
    compare_results,
    compare_table1,
    compare_table2,
    golden_path,
    load_golden,
    load_goldens,
    update_goldens,
    verify_paper,
    write_goldens,
)
from repro.regression.fuzzer import (
    FuzzCase,
    FuzzMismatch,
    FuzzReport,
    compare_case,
    generate_case,
    generate_cases,
    parse_repro,
    run_fuzz,
    run_repro,
    shrink_case,
)
from repro.regression.invariants import (
    InvariantViolation,
    check_case_invariants,
    check_channel_monotonicity,
    check_frequency_monotonicity,
    check_prefix_consistency,
)

__all__ = [
    "GOLDEN_ARTIFACTS",
    "GOLDEN_CHUNK_BUDGET",
    "GOLDEN_SCHEMA",
    "PACKAGED_GOLDENS_DIR",
    "CellDiff",
    "GoldenComparison",
    "PaperVerification",
    "Tolerance",
    "capture_goldens",
    "compare_grid",
    "compare_results",
    "compare_table1",
    "compare_table2",
    "golden_path",
    "load_golden",
    "load_goldens",
    "update_goldens",
    "verify_paper",
    "write_goldens",
    "FuzzCase",
    "FuzzMismatch",
    "FuzzReport",
    "compare_case",
    "generate_case",
    "generate_cases",
    "parse_repro",
    "run_fuzz",
    "run_repro",
    "shrink_case",
    "InvariantViolation",
    "check_case_invariants",
    "check_channel_monotonicity",
    "check_frequency_monotonicity",
    "check_prefix_consistency",
]
