"""The golden-baseline store: versioned paper numbers with tolerances.

The paper's claims are numeric -- the Table I totals, the Table II
mapping and the Fig. 3/4/5 grids -- and with three backends and
parallel sweeps in the tree, nothing short of a pinned baseline
protects those numbers from silent drift.  This module stores them as
versioned JSON files under ``src/repro/regression/goldens/`` (schema
``repro-goldens/1``), one file per artifact, each carrying:

- a **provenance header**: the exact regeneration recipe (command,
  chunk budget, backend, package version) -- deliberately free of
  timestamps and host details so regenerating on an unchanged tree
  reproduces the files byte for byte;
- **per-metric tolerances** (absolute + relative): the engine is
  deterministic, so the committed defaults are tight, but they are
  data, not code -- a platform with different libm rounding can widen
  them in the files without touching the comparator;
- the **values**: per-level Table I totals, the Table II rows, and the
  Fig. 3/4/5 grids as flat per-cell records (``access_ms`` /
  ``verdict`` / ``power_mw`` per point).

:func:`compare_artifact` reports *per-cell* diffs -- every failing
cell with its expected/actual values and the tolerance it broke --
instead of stopping at the first mismatch, so one run of
``repro-sim verify-paper`` localises a regression to the exact grid
points it moved.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import RegressionError

PathLike = Union[str, Path]

#: Schema tag every golden file carries.
GOLDEN_SCHEMA = "repro-goldens/1"

#: Simulated-chunk budget the committed goldens are captured at.  The
#: same budget must be used to verify (the provenance header records
#: it); it matches ``examples/reproduce_paper.py --fast``.
GOLDEN_CHUNK_BUDGET = 60_000

#: Artifacts the store versions, in paper order.
GOLDEN_ARTIFACTS = ("table1", "table2", "fig3", "fig4", "fig5")

#: Packaged golden directory (the committed baselines).
PACKAGED_GOLDENS_DIR = Path(__file__).parent / "goldens"

#: Default per-metric tolerances written into captured goldens.  The
#: simulation is integer-cycle deterministic and the float reductions
#: are fixed-order, so exact reproduction is the expectation; the
#: relative term only absorbs cross-platform libm noise in the power
#: integration.
DEFAULT_TOLERANCES: Dict[str, Dict[str, float]] = {
    "access_ms": {"abs": 1e-9, "rel": 1e-9},
    "power_mw": {"abs": 1e-6, "rel": 1e-9},
    "raw_power_mw": {"abs": 1e-6, "rel": 1e-9},
    "interface_mw": {"abs": 1e-6, "rel": 1e-9},
    "frame_total_mbits": {"abs": 1e-9, "rel": 1e-9},
    "bandwidth_mb_per_s": {"abs": 1e-9, "rel": 1e-9},
}


@dataclass(frozen=True)
class Tolerance:
    """An absolute + relative tolerance for one metric."""

    abs_tol: float
    rel_tol: float

    def allows(self, expected: float, actual: float) -> bool:
        """Whether ``actual`` is within tolerance of ``expected``."""
        if not (math.isfinite(expected) and math.isfinite(actual)):
            return False
        return abs(actual - expected) <= self.abs_tol + self.rel_tol * abs(
            expected
        )

    def widened(self, extra_rel: float) -> "Tolerance":
        """A copy with ``extra_rel`` added to the relative term (used
        for screening backends and cross-budget comparisons)."""
        return Tolerance(self.abs_tol, self.rel_tol + extra_rel)

    def describe(self) -> str:
        """Human-readable rendition for diff reports."""
        return f"abs={self.abs_tol:g}, rel={self.rel_tol:g}"


@dataclass(frozen=True)
class CellDiff:
    """One compared cell: coordinates, values, verdict."""

    artifact: str
    cell: str
    metric: str
    expected: object
    actual: object
    within: bool
    detail: str = ""

    def describe(self) -> str:
        """One line: ``fig3[freq=400,channels=4].access_ms: ...``."""
        status = "ok" if self.within else "MISMATCH"
        line = (
            f"[{status}] {self.artifact}[{self.cell}].{self.metric}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )
        return line + (f" ({self.detail})" if self.detail else "")


@dataclass(frozen=True)
class GoldenComparison:
    """All compared cells of one artifact."""

    artifact: str
    diffs: Tuple[CellDiff, ...]

    @property
    def mismatches(self) -> List[CellDiff]:
        """The failing cells only."""
        return [d for d in self.diffs if not d.within]

    @property
    def passed(self) -> bool:
        """Whether every cell was within tolerance."""
        return not self.mismatches

    def format(self) -> str:
        """Summary line plus one line per failing cell."""
        bad = self.mismatches
        lines = [
            f"{self.artifact}: {len(self.diffs) - len(bad)}/{len(self.diffs)} "
            f"cells within tolerance"
        ]
        lines += ["  " + d.describe() for d in bad]
        return "\n".join(lines)


def _tolerance(
    golden: Mapping[str, object], metric: str, extra_rel: float = 0.0
) -> Tolerance:
    """The golden file's tolerance for ``metric`` (falling back to the
    code defaults), widened by ``extra_rel``."""
    table = dict(DEFAULT_TOLERANCES.get(metric, {"abs": 0.0, "rel": 0.0}))
    table.update(golden.get("tolerances", {}).get(metric, {}))  # type: ignore[union-attr]
    return Tolerance(float(table["abs"]), float(table["rel"])).widened(extra_rel)


# ---------------------------------------------------------------------------
# Load / store
# ---------------------------------------------------------------------------


def golden_path(artifact: str, directory: Optional[PathLike] = None) -> Path:
    """Path of one artifact's golden file."""
    if artifact not in GOLDEN_ARTIFACTS:
        raise RegressionError(
            f"unknown golden artifact {artifact!r}; have "
            f"{', '.join(GOLDEN_ARTIFACTS)}"
        )
    base = Path(directory) if directory is not None else PACKAGED_GOLDENS_DIR
    return base / f"{artifact}.json"


def load_golden(
    artifact: str, directory: Optional[PathLike] = None
) -> Dict[str, object]:
    """Load and schema-check one artifact's golden file."""
    path = golden_path(artifact, directory)
    if not path.exists():
        raise RegressionError(
            f"golden file {path} is missing; run "
            "'repro-sim verify-paper --update' to (re)capture the baselines"
        )
    try:
        payload = json.loads(path.read_text(encoding="ascii"))
    except (OSError, ValueError) as exc:
        raise RegressionError(f"golden file {path} is unreadable: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != GOLDEN_SCHEMA:
        raise RegressionError(
            f"golden file {path} does not carry schema {GOLDEN_SCHEMA!r} "
            f"(got {payload.get('schema') if isinstance(payload, dict) else payload!r})"
        )
    if payload.get("artifact") != artifact:
        raise RegressionError(
            f"golden file {path} claims artifact "
            f"{payload.get('artifact')!r}, expected {artifact!r}"
        )
    return payload


def load_goldens(
    directory: Optional[PathLike] = None,
) -> Dict[str, Dict[str, object]]:
    """Load every artifact's golden file from ``directory``."""
    return {name: load_golden(name, directory) for name in GOLDEN_ARTIFACTS}


def write_goldens(
    payloads: Mapping[str, Mapping[str, object]],
    directory: Optional[PathLike] = None,
) -> List[Path]:
    """Write golden payloads as pretty-printed, sorted-key JSON.

    Deterministic output (and a trailing newline) so regeneration on
    an unchanged tree is a no-op diff.
    """
    base = Path(directory) if directory is not None else PACKAGED_GOLDENS_DIR
    base.mkdir(parents=True, exist_ok=True)
    written = []
    for artifact, payload in payloads.items():
        path = golden_path(artifact, base)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def _provenance(chunk_budget: int, backend: str) -> Dict[str, object]:
    """The regeneration recipe stamped into every golden file.

    Deliberately timestamp- and host-free: the provenance names *how*
    to reproduce the file, and an unchanged tree must regenerate the
    bytes exactly.
    """
    from repro import __version__

    return {
        "command": (
            f"repro-sim --backend {backend} --budget {chunk_budget} "
            "verify-paper --update"
        ),
        "chunk_budget": chunk_budget,
        "backend": backend,
        "package_version": __version__,
    }


def capture_goldens(
    chunk_budget: int = GOLDEN_CHUNK_BUDGET,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    telemetry=None,
    progress=None,
    cache=None,
) -> Dict[str, Dict[str, object]]:
    """Regenerate every artifact and package it as golden payloads.

    ``backend`` must be bit-identical to the reference (``reference``
    or ``fast`` or a custom backend declaring
    ``reference_tolerance == 0``): baselines captured under a
    screening backend would pin approximations, not the paper.
    """
    from repro.analysis.experiments import run_fig3, run_fig5, run_table1, run_table2
    from repro.backends.registry import default_backend_name, get_backend

    name = backend if backend is not None else default_backend_name()
    resolved = get_backend(name)
    if not resolved.bit_identical:
        raise RegressionError(
            f"goldens must be captured under a bit-identical backend; "
            f"{name!r} declares a {resolved.reference_tolerance:.0%} "
            "screening tolerance"
        )

    sweep_kwargs = dict(
        chunk_budget=chunk_budget,
        workers=workers,
        backend=backend,
        telemetry=telemetry,
        progress=progress,
        cache=cache,
    )

    table1 = run_table1()
    table2 = run_table2(8)
    fig3 = run_fig3(**sweep_kwargs)
    fig5 = run_fig5(**sweep_kwargs)  # fig4 rides along (shared sweep)

    def payload(artifact: str, **body: object) -> Dict[str, object]:
        metrics = {
            "table1": ("frame_total_mbits", "bandwidth_mb_per_s"),
            "table2": (),
            "fig3": ("access_ms",),
            "fig4": ("access_ms",),
            "fig5": ("power_mw", "raw_power_mw", "interface_mw"),
        }[artifact]
        out: Dict[str, object] = {
            "schema": GOLDEN_SCHEMA,
            "artifact": artifact,
            "provenance": _provenance(chunk_budget, name),
            "tolerances": {m: dict(DEFAULT_TOLERANCES[m]) for m in metrics},
        }
        out.update(body)
        return out

    return {
        "table1": payload(
            "table1",
            levels={
                column.level.name: {
                    "frame_total_mbits": column.frame_total_bits / 1e6,
                    "bandwidth_mb_per_s": column.bandwidth_mb_per_s,
                }
                for column in table1.columns
            },
        ),
        "table2": payload(
            "table2",
            channels=table2.channels,
            rows=[list(row) for row in table2.rows],
        ),
        "fig3": payload("fig3", points=fig3.as_records()),
        "fig4": payload("fig4", points=fig5.fig4.as_records()),
        "fig5": payload("fig5", points=fig5.as_records()),
    }


# ---------------------------------------------------------------------------
# Compare
# ---------------------------------------------------------------------------


def _keyed(
    records: Sequence[Mapping[str, object]], key_fields: Tuple[str, ...]
) -> Dict[Tuple, Mapping[str, object]]:
    return {
        tuple(record[field] for field in key_fields): record
        for record in records
    }


def _cell_name(key_fields: Tuple[str, ...], key: Tuple) -> str:
    return ",".join(f"{f}={v}" for f, v in zip(key_fields, key))


def compare_grid(
    artifact: str,
    golden: Mapping[str, object],
    actual_records: Sequence[Mapping[str, object]],
    key_fields: Tuple[str, ...],
    metrics: Tuple[str, ...],
    extra_rel: float = 0.0,
    check_verdicts: bool = True,
) -> GoldenComparison:
    """Compare a flat record grid against its golden, cell by cell.

    ``extra_rel`` widens every metric tolerance (screening backends,
    cross-budget checks); ``check_verdicts=False`` skips the exact
    verdict comparison, which is meaningless once access times are
    allowed to drift across a PASS/MARGINAL boundary.
    """
    expected = _keyed(golden["points"], key_fields)  # type: ignore[index]
    got = _keyed(actual_records, key_fields)
    diffs: List[CellDiff] = []
    for key, exp in expected.items():
        cell = _cell_name(key_fields, key)
        act = got.get(key)
        if act is None:
            diffs.append(
                CellDiff(artifact, cell, "presence", "present", "missing", False)
            )
            continue
        for metric in metrics:
            tol = _tolerance(golden, metric, extra_rel)
            exp_v, act_v = float(exp[metric]), float(act[metric])  # type: ignore[arg-type]
            within = tol.allows(exp_v, act_v)
            diffs.append(
                CellDiff(
                    artifact,
                    cell,
                    metric,
                    exp_v,
                    act_v,
                    within,
                    detail=(
                        ""
                        if within
                        else f"|delta|={abs(act_v - exp_v):g} > {tol.describe()}"
                    ),
                )
            )
        if check_verdicts and "verdict" in exp:
            diffs.append(
                CellDiff(
                    artifact,
                    cell,
                    "verdict",
                    exp["verdict"],
                    act.get("verdict"),
                    exp["verdict"] == act.get("verdict"),
                )
            )
    for key in got:
        if key not in expected:
            diffs.append(
                CellDiff(
                    artifact,
                    _cell_name(key_fields, key),
                    "presence",
                    "absent",
                    "unexpected",
                    False,
                )
            )
    return GoldenComparison(artifact=artifact, diffs=tuple(diffs))


def compare_table1(
    golden: Mapping[str, object], table, extra_rel: float = 0.0
) -> GoldenComparison:
    """Compare a :class:`~repro.usecase.bandwidth.BandwidthTable`'s
    per-level totals against the ``table1`` golden."""
    diffs: List[CellDiff] = []
    expected_levels: Mapping[str, Mapping[str, float]] = golden["levels"]  # type: ignore[assignment]
    actual = {
        column.level.name: {
            "frame_total_mbits": column.frame_total_bits / 1e6,
            "bandwidth_mb_per_s": column.bandwidth_mb_per_s,
        }
        for column in table.columns
    }
    for level_name, metrics in expected_levels.items():
        cell = f"level={level_name}"
        if level_name not in actual:
            diffs.append(
                CellDiff(
                    "table1", cell, "presence", "present", "missing", False
                )
            )
            continue
        for metric, exp_v in metrics.items():
            tol = _tolerance(golden, metric, extra_rel)
            act_v = actual[level_name][metric]
            within = tol.allows(float(exp_v), act_v)
            diffs.append(
                CellDiff(
                    "table1",
                    cell,
                    metric,
                    float(exp_v),
                    act_v,
                    within,
                    detail=(
                        ""
                        if within
                        else f"|delta|={abs(act_v - float(exp_v)):g} > "
                        f"{tol.describe()}"
                    ),
                )
            )
    return GoldenComparison(artifact="table1", diffs=tuple(diffs))


def compare_table2(golden: Mapping[str, object], table2) -> GoldenComparison:
    """Compare a Table II mapping against the ``table2`` golden
    (structural: every row must match exactly)."""
    expected_rows = [tuple(row) for row in golden["rows"]]  # type: ignore[index]
    actual_rows = [tuple(row) for row in table2.rows]
    diffs = [
        CellDiff(
            "table2",
            "channels",
            "channels",
            golden["channels"],
            table2.channels,
            golden["channels"] == table2.channels,
        )
    ]
    for index in range(max(len(expected_rows), len(actual_rows))):
        exp = expected_rows[index] if index < len(expected_rows) else None
        act = actual_rows[index] if index < len(actual_rows) else None
        diffs.append(
            CellDiff("table2", f"row={index}", "mapping", exp, act, exp == act)
        )
    return GoldenComparison(artifact="table2", diffs=tuple(diffs))


#: Key fields and compared metrics per grid artifact.
GRID_LAYOUT: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "fig3": (("freq_mhz", "channels"), ("access_ms",)),
    "fig4": (("level", "channels"), ("access_ms",)),
    "fig5": (("level", "channels"), ("power_mw", "raw_power_mw", "interface_mw")),
}


def compare_results(
    table1=None,
    table2=None,
    fig3=None,
    fig4=None,
    fig5=None,
    directory: Optional[PathLike] = None,
    extra_rel: float = 0.0,
    check_verdicts: bool = True,
) -> List[GoldenComparison]:
    """Compare already-computed artifact results against the goldens.

    Pass whichever artifacts you have; each is compared against its
    golden file in ``directory`` (default: the committed baselines).
    Used by ``examples/reproduce_paper.py`` to assert its run against
    the store without re-simulating.
    """
    comparisons: List[GoldenComparison] = []
    if table1 is not None:
        comparisons.append(
            compare_table1(load_golden("table1", directory), table1, extra_rel)
        )
    if table2 is not None:
        comparisons.append(compare_table2(load_golden("table2", directory), table2))
    for artifact, result in (("fig3", fig3), ("fig4", fig4), ("fig5", fig5)):
        if result is None:
            continue
        key_fields, metrics = GRID_LAYOUT[artifact]
        comparisons.append(
            compare_grid(
                artifact,
                load_golden(artifact, directory),
                result.as_records(),
                key_fields,
                metrics,
                extra_rel=extra_rel,
                check_verdicts=check_verdicts,
            )
        )
    return comparisons


# ---------------------------------------------------------------------------
# End-to-end verification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PaperVerification:
    """Outcome of one ``verify-paper`` run."""

    comparisons: Tuple[GoldenComparison, ...]
    backend: str
    chunk_budget: int

    @property
    def passed(self) -> bool:
        """Whether every artifact matched its golden."""
        return all(c.passed for c in self.comparisons)

    @property
    def cells_checked(self) -> int:
        """Total compared cells across artifacts."""
        return sum(len(c.diffs) for c in self.comparisons)

    @property
    def cells_mismatched(self) -> int:
        """Total failing cells across artifacts."""
        return sum(len(c.mismatches) for c in self.comparisons)

    def format(self) -> str:
        """Per-artifact summaries plus the overall verdict."""
        lines = [
            f"goldens vs backend={self.backend} "
            f"(chunk_budget={self.chunk_budget}):"
        ]
        lines += [c.format() for c in self.comparisons]
        lines.append(
            f"{'PASS' if self.passed else 'FAIL'}: "
            f"{self.cells_checked - self.cells_mismatched}/"
            f"{self.cells_checked} cells within tolerance"
        )
        return "\n".join(lines)


def verify_paper(
    directory: Optional[PathLike] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    telemetry=None,
    progress=None,
    cache=None,
) -> PaperVerification:
    """Regenerate every artifact and check it against the goldens.

    The chunk budget comes from the goldens' own provenance headers,
    so the comparison always re-runs the exact recipe that captured
    the baselines.  A bit-identical backend (``reference``, ``fast``)
    is held to the committed tolerances; a screening backend widens
    every metric by its declared
    :attr:`~repro.backends.base.ChannelBackend.reference_tolerance`
    and skips verdict cells (feasibility near a boundary legitimately
    flips inside the screening band).

    ``telemetry`` (when given) counts every compared cell into
    ``regression.cases`` and every failing cell into
    ``regression.mismatches``.  ``cache`` names a persistent
    content-addressed result store directory (CLI ``--cache-dir``):
    cached points are bit-identical to fresh ones, so a warm cache
    verifies the paper in seconds without weakening the comparison.
    """
    from repro.analysis.experiments import run_fig3, run_fig5, run_table1, run_table2
    from repro.backends.registry import default_backend_name, get_backend

    goldens = load_goldens(directory)
    name = backend if backend is not None else default_backend_name()
    resolved = get_backend(name)
    extra_rel = resolved.reference_tolerance
    check_verdicts = resolved.bit_identical
    chunk_budget = int(
        goldens["fig3"]["provenance"]["chunk_budget"]  # type: ignore[index]
    )

    sweep_kwargs = dict(
        chunk_budget=chunk_budget,
        workers=workers,
        backend=backend,
        telemetry=telemetry,
        progress=progress,
        cache=cache,
    )
    fig3 = run_fig3(**sweep_kwargs)
    fig5 = run_fig5(**sweep_kwargs)

    comparisons = [
        compare_table1(goldens["table1"], run_table1(), 0.0),
        compare_table2(goldens["table2"], run_table2(8)),
    ]
    for artifact, result in (("fig3", fig3), ("fig4", fig5.fig4), ("fig5", fig5)):
        key_fields, metrics = GRID_LAYOUT[artifact]
        comparisons.append(
            compare_grid(
                artifact,
                goldens[artifact],
                result.as_records(),
                key_fields,
                metrics,
                extra_rel=extra_rel,
                check_verdicts=check_verdicts,
            )
        )

    verification = PaperVerification(
        comparisons=tuple(comparisons), backend=name, chunk_budget=chunk_budget
    )
    if telemetry is not None:
        telemetry.registry.counter("regression.cases").add(
            verification.cells_checked
        )
        telemetry.registry.counter("regression.mismatches").add(
            verification.cells_mismatched
        )
    return verification


def update_goldens(
    directory: Optional[PathLike] = None,
    chunk_budget: int = GOLDEN_CHUNK_BUDGET,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    telemetry=None,
    progress=None,
    cache=None,
) -> List[Path]:
    """Recapture and write the golden files (CLI ``--update``)."""
    payloads = capture_goldens(
        chunk_budget=chunk_budget,
        backend=backend,
        workers=workers,
        telemetry=telemetry,
        progress=progress,
        cache=cache,
    )
    return write_goldens(payloads, directory)
