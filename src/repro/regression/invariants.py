"""Metamorphic invariants: relations that must hold across runs.

Differential fuzzing catches backends disagreeing with the reference;
it cannot catch the reference being wrong in a way every backend
reproduces.  Metamorphic testing closes part of that gap with
relations between *pairs* of runs that follow from the system's
physics, not from any oracle's opinion of the right answer:

- **channel monotonicity** -- doubling the channel count splits every
  channel's access stream across two channels (the Table II
  interleaving refines ``chunk % c`` into ``chunk % 2c``), so no
  channel does more work and the slowest channel can only finish
  sooner.  Adding channels must never increase access time (beyond
  :data:`CHANNEL_SLACK_REL` of rounding headroom).  The relation is
  checked on *single-region contiguous* traffic shapes only: a
  degenerate stride can alias the whole stream onto one channel in
  both configurations, and the doubled config's re-mapped bank bits
  can then serialise accesses that previously pipelined across banks
  (tRC-limited instead of tRRD-limited) -- genuinely slower, not a
  simulator bug, so strided and uniform-random shapes are out of the
  invariant's domain.  Alternating R/W traffic is out for the same
  reason despite its per-region contiguity: its two blocks sit at
  distant base addresses, and halving the per-channel chunk index
  when channels double shifts which address bits select the bank, so
  regions that occupied distinct banks can collapse onto one and
  row-thrash (fuzz seed 5 case 302: 2ch pipelines the read and write
  regions across banks 0/1; 4ch maps both to bank 0, 35 conflicts
  per channel, 1879.8 ns -> 2188.8 ns).
- **frequency monotonicity** -- *doubling* the clock maps every
  timing parameter's cycle count through ``ceil(2x) <= 2*ceil(x)``,
  so each constraint's wall-clock cost can only shrink.  (Arbitrary
  clock steps do **not** carry this guarantee: stepping 200 to
  266 MHz re-rounds every ``ceil(t_ns * f)`` and a parameter can get
  fractionally *slower*, which is rounding, not a bug -- so the check
  only compares f against 2f.)
- **prefix consistency** -- a prefix of a traffic stream must not
  finish later than the full stream: per-channel service is FIFO and
  refresh fires on schedule regardless of future arrivals, so the
  prefix's commands are timed identically in both runs.  (A general
  *subset* carries no such guarantee -- removing a middle transaction
  changes which rows later accesses find open.)

Each case is additionally run through the cross-checking oracles of
:func:`repro.analysis.validate.check_traffic_oracles`: the protocol
audit always, the locality oracle only under the open page policy (the
static analyzer predicts row re-opens, which closed page makes
unconditional).  The coarse whole-stream analytic oracle is *not*
applied here -- the differential fuzzer already pins the analytic
*backend* (which models arrival gaps and per-channel streams) to the
reference on the workloads its tolerance is documented for, and the
whole-stream closed form is strictly cruder than that.

All checks run under the ``reference`` backend: invariants are about
the physics of the model, and the differential fuzzer separately pins
every other backend to the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.analysis.validate import check_traffic_oracles
from repro.core.system import MultiChannelMemorySystem
from repro.regression.fuzzer import FuzzCase

#: Highest channel count the doubling check will step up to.
MAX_CHECK_CHANNELS = 32

#: Highest clock the doubling check will step up to, MHz (the device's
#: validated range tops out at 533).
MAX_CHECK_FREQ_MHZ = 533.0

#: Relative rounding headroom on channel monotonicity for the
#: contiguous shapes (cycle quantisation at block boundaries).
CHANNEL_SLACK_REL = 0.05

#: Traffic shapes in the channel-doubling relation's domain: a single
#: contiguous block stream both spreads its chunks across channels
#: under the Table II interleaving *and* keeps its bank footprint
#: contiguous after the doubled config re-maps bank bits.  Strided and
#: uniform-random shapes can alias onto a channel subset, and
#: alternating R/W's two distant regions can collapse onto one bank
#: after the re-map (row-thrash, tRC-limited) -- genuinely slower, so
#: all three are out of the domain; see the module docstring.
CONTIGUOUS_KINDS = frozenset({"sequential", "paced"})


@dataclass(frozen=True)
class InvariantViolation:
    """One metamorphic relation that failed to hold."""

    invariant: str
    case: FuzzCase
    detail: str
    repro: str

    def describe(self) -> str:
        """Multi-line report: invariant, case, evidence, repro."""
        return (
            f"invariant '{self.invariant}' violated on {self.case.describe()}:\n"
            f"  {self.detail}\n"
            f"  repro: {self.repro}"
        )


def _access_time_ns(case: FuzzCase) -> float:
    system = MultiChannelMemorySystem(case.config.with_backend("reference"))
    return system.run(list(case.transactions)).sample_access_time_ns


def check_channel_monotonicity(case: FuzzCase) -> List[InvariantViolation]:
    """Doubling the channel count must not increase access time
    (contiguous traffic shapes; :data:`CHANNEL_SLACK_REL` headroom)."""
    if case.kind not in CONTIGUOUS_KINDS:
        return []
    if case.config.channels * 2 > MAX_CHECK_CHANNELS:
        return []
    base = _access_time_ns(case)
    doubled_case = replace(
        case, config=case.config.with_channels(case.config.channels * 2)
    )
    doubled = _access_time_ns(doubled_case)
    if doubled > base * (1.0 + CHANNEL_SLACK_REL):
        return [
            InvariantViolation(
                invariant="channel monotonicity",
                case=case,
                detail=(
                    f"{case.config.channels} -> {case.config.channels * 2} "
                    f"channels slowed the run: {base:.1f} ns -> {doubled:.1f} ns"
                ),
                repro=case.repro(),
            )
        ]
    return []


def check_frequency_monotonicity(case: FuzzCase) -> List[InvariantViolation]:
    """Doubling the interface clock must not increase access time."""
    if case.config.freq_mhz * 2 > MAX_CHECK_FREQ_MHZ:
        return []
    base = _access_time_ns(case)
    faster_case = replace(
        case, config=case.config.with_frequency(case.config.freq_mhz * 2)
    )
    faster = _access_time_ns(faster_case)
    if faster > base:
        return [
            InvariantViolation(
                invariant="frequency monotonicity",
                case=case,
                detail=(
                    f"{case.config.freq_mhz:g} -> {case.config.freq_mhz * 2:g} "
                    f"MHz slowed the run: {base:.1f} ns -> {faster:.1f} ns"
                ),
                repro=case.repro(),
            )
        ]
    return []


def check_prefix_consistency(case: FuzzCase) -> List[InvariantViolation]:
    """A traffic prefix must not finish later than the full stream."""
    if len(case.transactions) < 2:
        return []
    prefix_case = replace(
        case, transactions=case.transactions[: len(case.transactions) // 2]
    )
    full = _access_time_ns(case)
    prefix = _access_time_ns(prefix_case)
    if prefix > full:
        return [
            InvariantViolation(
                invariant="prefix consistency",
                case=case,
                detail=(
                    f"prefix of {len(prefix_case.transactions)} txns finished "
                    f"at {prefix:.1f} ns, after the full "
                    f"{len(case.transactions)}-txn stream's {full:.1f} ns"
                ),
                repro=case.repro(),
            )
        ]
    return []


def check_oracles(case: FuzzCase) -> List[InvariantViolation]:
    """Run the validation oracles on the case's own configuration.

    Protocol audit always; locality only under open page (the static
    analyzer's domain); the whole-stream analytic oracle never -- the
    fuzzer's backend differential covers the closed form with a model
    that actually sees per-channel streams and arrival gaps.
    """
    checks = check_traffic_oracles(
        case.transactions,
        case.config.with_backend("reference"),
        analytic_tolerance=None,
        include_locality=case.config.page_policy.keeps_rows_open,
    )
    return [
        InvariantViolation(
            invariant=f"oracle: {check.name}",
            case=case,
            detail=check.detail,
            repro=case.repro(),
        )
        for check in checks
        if not check.passed
    ]


def check_case_invariants(case: FuzzCase) -> List[InvariantViolation]:
    """Every metamorphic relation and oracle for one case."""
    violations: List[InvariantViolation] = []
    violations.extend(check_channel_monotonicity(case))
    violations.extend(check_frequency_monotonicity(case))
    violations.extend(check_prefix_consistency(case))
    violations.extend(check_oracles(case))
    return violations
