"""The builtin workload zoo.

Four declarative :class:`~repro.workloads.spec.WorkloadSpec` builders,
resolved lazily by :mod:`repro.workloads.registry`:

``h264_camcorder``
    The paper's Fig. 1 video-recording pipeline, re-expressed as data.
    Every derived expression mirrors the legacy
    :class:`~repro.usecase.pipeline.VideoRecordingUseCase` formula in
    the same operation order, so the instantiated traffic is **bit
    identical** to the imperative class (pinned by
    ``tests/workloads/test_camcorder_exact.py`` and, transitively, by
    ``verify-paper`` staying exact at 186/186).

``vvc_encoder``
    A VVC/H.266-class capture-and-encode pipeline (PAPERS.md: *Memory
    Assessment of Versatile Video Coding*).  10-bit 4:2:0 frames,
    **two reference lists** multiplying the reference-buffer count,
    and a doubled implementation constant -- applied as the motion
    search stage's per-stage traffic ``scale`` factor -- make the
    reference-frame traffic dwarf the H.264 camcorder's.  A
    ``bitrate_scale`` knob models VVC's better compression (default
    half the level's H.264 bitrate ceiling).

``h264_lossy_ec``
    The camcorder's encoder loop with lossy **embedded compression**
    on the reference/reconstruction frame buffers (PAPERS.md:
    *Frame-level quality and memory traffic allocation for lossy
    embedded compression*).  The ``ec_ratio`` knob (0.25..1.0) scales
    both the frame-buffer footprints and the motion-search traffic;
    the documented ``quality_cost_db`` metric models the PSNR price of
    the traffic saved.

``vdcm_display``
    A VESA DSC/VDC-M-class display-stream **decoder**: a compressed
    stream is DMA'd in, decoded by ``slices`` parallel slice engines
    through counted line buffers, rastered to a frame buffer and
    scanned out at the panel refresh rate.  No reference frames and no
    GOP structure -- it exercises the analysis paths the encoder
    workloads never hit.
"""

from __future__ import annotations

from repro.workloads.spec import (
    BufferDecl,
    GopSpec,
    StageSpec,
    TrafficDecl,
    WorkloadParam,
    WorkloadSpec,
)


def h264_camcorder() -> WorkloadSpec:
    """The Fig. 1 H.264 camcorder, traffic-identical to the legacy class."""
    return WorkloadSpec(
        name="h264_camcorder",
        title="Fig. 1 H.264/AVC camcorder recording pipeline",
        description=(
            "The paper's video-recording use case: sensor capture with a "
            "stabilization border, Bayer-to-YUV conversion, stabilization, "
            "digital zoom, WVGA display refresh, H.264 encoding against "
            "n_ref reference frames (the implementation-dependent factor "
            "of six), audio multiplex and removable-media writeback."
        ),
        params=(
            WorkloadParam(
                "digizoom", 1.0, doc="Digital zoom factor z (emits ~N/z^2 pixels).",
                minimum=1.0,
            ),
            WorkloadParam(
                "display_pixels", 384000,
                doc="Device display raster size in pixels (WVGA 800x480).",
                minimum=1,
            ),
            WorkloadParam(
                "display_refresh_hz", 60.0,
                doc="Display controller refresh rate, Hz (refresh is "
                    "independent of the recording frame rate).",
                minimum=1.0,
            ),
            WorkloadParam(
                "stabilization_border", 1.2,
                doc="Linear sensor over-scan factor (1.2 = 20% border).",
                minimum=1.0,
            ),
            WorkloadParam(
                "encoder_factor", 6.0,
                doc="Implementation-dependent encoder constant: each "
                    "reference frame is read this many times over per "
                    "encoded frame.",
                minimum=0.0,
            ),
            WorkloadParam(
                "audio_bitrate_mbps", 0.192,
                doc="Accompanying audio stream bitrate, Mb/s.",
                minimum=0.0,
            ),
            WorkloadParam(
                "intra_only", False,
                doc="Model an intra-coded (I) frame: no reference reads.",
            ),
        ),
        derived=(
            # Same operation order as the legacy class, so the floats
            # agree bit for bit (see tests/workloads/test_camcorder_exact.py).
            ("nb", "round(frame_width * stabilization_border) * "
                   "round(frame_height * stabilization_border)"),
            ("nz", "max(1, round(n / (digizoom * digizoom)))"),
            ("v_frame", "bitrate_mbps * 1e6 / fps"),
            ("a_frame", "audio_bitrate_mbps * 1e6 / fps"),
            ("av_frame", "v_frame + a_frame"),
            ("display_bits", "rgb888 * display_pixels"),
            ("refreshes", "display_refresh_hz / fps"),
            ("stream_bytes", "max(16, int(av_frame / 8) + 16)"),
            ("audio_stream_bytes", "max(16, int(a_frame / 8) + 16)"),
            ("ref_read_each", "encoder_factor * yuv420 * n"),
        ),
        buffers=(
            BufferDecl("sensor_raw", "(nb * bayer + 7) // 8", conserved=True),
            BufferDecl("sensor_filtered", "(nb * bayer + 7) // 8", conserved=True),
            BufferDecl("yuv_full", "(nb * yuv422 + 7) // 8", conserved=True),
            BufferDecl("yuv_stab", "(n * yuv422 + 7) // 8", conserved=True),
            BufferDecl("yuv_zoom", "(nz * yuv422 + 7) // 8", conserved=True),
            BufferDecl("display_fb", "(display_pixels * rgb888 + 7) // 8"),
            BufferDecl("ref", "(n * yuv420 + 7) // 8", count="n_ref"),
            BufferDecl("recon", "(n * yuv420 + 7) // 8", conserved=True),
            BufferDecl("video_bs", "stream_bytes", conserved=True),
            BufferDecl("audio_bs", "audio_stream_bytes"),
            BufferDecl("mux_out", "stream_bytes", conserved=True),
        ),
        stages=(
            StageSpec(
                "Camera I/F", "image",
                writes=(TrafficDecl("sensor_raw", "bayer * nb"),),
            ),
            StageSpec(
                "Preprocess", "image",
                reads=(TrafficDecl("sensor_raw", "bayer * nb"),),
                writes=(TrafficDecl("sensor_filtered", "bayer * nb"),),
            ),
            StageSpec(
                "Bayer to YUV", "image",
                reads=(TrafficDecl("sensor_filtered", "bayer * nb"),),
                writes=(TrafficDecl("yuv_full", "yuv422 * nb"),),
            ),
            StageSpec(
                "Video stabilization", "image",
                reads=(TrafficDecl("yuv_full", "yuv422 * nb"),),
                writes=(TrafficDecl("yuv_stab", "yuv422 * n"),),
            ),
            StageSpec(
                "Post proc & digizoom", "image",
                reads=(TrafficDecl("yuv_stab", "yuv422 * n"),),
                writes=(TrafficDecl("yuv_zoom", "yuv422 * nz"),),
            ),
            StageSpec(
                "Scaling to display", "image",
                reads=(TrafficDecl("yuv_zoom", "yuv422 * nz"),),
                writes=(TrafficDecl("display_fb", "display_bits"),),
            ),
            StageSpec(
                "DisplayCtrl", "image",
                reads=(TrafficDecl("display_fb", "display_bits * refreshes"),),
            ),
            StageSpec(
                "Video encoder", "coding",
                reads=(
                    TrafficDecl("ref", "ref_read_each",
                                when="not intra_only", each=True),
                    TrafficDecl("recon", "yuv420 * n"),
                ),
                writes=(
                    TrafficDecl("recon", "yuv420 * n"),
                    TrafficDecl("video_bs", "v_frame"),
                ),
            ),
            StageSpec(
                "Multiplex", "coding",
                reads=(
                    TrafficDecl("video_bs", "v_frame"),
                    TrafficDecl("audio_bs", "a_frame"),
                ),
                writes=(TrafficDecl("mux_out", "av_frame"),),
            ),
            StageSpec(
                "Memory card", "coding",
                reads=(TrafficDecl("mux_out", "av_frame"),),
            ),
        ),
        gop=GopSpec(length=15, intra_param="intra_only"),
    )


def vvc_encoder() -> WorkloadSpec:
    """VVC-class encoder: two reference lists, scaled motion search."""
    return WorkloadSpec(
        name="vvc_encoder",
        title="VVC/H.266-class capture-and-encode pipeline",
        description=(
            "Versatile Video Coding inflates the decoded-picture-buffer "
            "traffic: 10-bit 4:2:0 frames, two reference lists (so "
            "n_ref * ref_lists reference buffers are swept per frame) "
            "and a larger implementation constant for the multi-tool "
            "motion search.  In exchange the output bitrate drops to "
            "bitrate_scale of the level's H.264 ceiling."
        ),
        params=(
            WorkloadParam(
                "ref_lists", 2,
                doc="Reference picture lists; buffers = n_ref * ref_lists.",
                minimum=1, maximum=4,
            ),
            WorkloadParam(
                "encoder_factor", 12.0,
                doc="Implementation constant of the VVC motion search "
                    "(applied as the stage's traffic scale factor).",
                minimum=0.0,
            ),
            WorkloadParam(
                "bit_depth", 10,
                doc="Sample bit depth; 4:2:0 storage is bit_depth*3/2 "
                    "bits per pixel.",
                minimum=8, maximum=16,
            ),
            WorkloadParam(
                "bitrate_scale", 0.5,
                doc="Output bitrate relative to the level's H.264 "
                    "ceiling (VVC's compression gain).",
                minimum=0.05, maximum=1.0,
            ),
            WorkloadParam(
                "intra_only", False,
                doc="Model an intra-coded frame: no reference reads.",
            ),
        ),
        derived=(
            ("pel_bits", "bit_depth * 3 / 2"),
            ("frame_bits", "pel_bits * n"),
            ("v_frame", "bitrate_mbps * 1e6 / fps * bitrate_scale"),
            ("stream_bytes", "max(16, int(v_frame / 8) + 16)"),
        ),
        buffers=(
            BufferDecl("yuv_src", "(n * pel_bits + 7) // 8", conserved=True),
            BufferDecl("yuv_proc", "(n * pel_bits + 7) // 8", conserved=True),
            BufferDecl("ref", "(n * pel_bits + 7) // 8",
                       count="n_ref * ref_lists"),
            BufferDecl("recon", "(n * pel_bits + 7) // 8", conserved=True),
            BufferDecl("video_bs", "stream_bytes", conserved=True),
        ),
        stages=(
            StageSpec(
                "Capture", "image",
                writes=(TrafficDecl("yuv_src", "frame_bits"),),
            ),
            StageSpec(
                "Preprocess", "image",
                reads=(TrafficDecl("yuv_src", "frame_bits"),),
                writes=(TrafficDecl("yuv_proc", "frame_bits"),),
            ),
            StageSpec(
                # The implementation constant is this stage's traffic
                # scale: every reference is swept encoder_factor times.
                "Motion search", "coding",
                scale="encoder_factor",
                reads=(
                    TrafficDecl("ref", "frame_bits",
                                when="not intra_only", each=True),
                ),
            ),
            StageSpec(
                "Encode & reconstruct", "coding",
                reads=(
                    TrafficDecl("yuv_proc", "frame_bits"),
                    TrafficDecl("recon", "frame_bits"),
                ),
                writes=(
                    TrafficDecl("recon", "frame_bits"),
                    TrafficDecl("video_bs", "v_frame"),
                ),
            ),
            StageSpec(
                "Bitstream out", "coding",
                reads=(TrafficDecl("video_bs", "v_frame"),),
            ),
        ),
        gop=GopSpec(length=32, intra_param="intra_only"),
        metrics=(
            ("dpb_bytes", "(n * pel_bits + 7) // 8 * (n_ref * ref_lists + 1)"),
        ),
    )


def h264_lossy_ec() -> WorkloadSpec:
    """H.264 encoder loop with lossy embedded frame-buffer compression."""
    return WorkloadSpec(
        name="h264_lossy_ec",
        title="H.264 encoder with lossy embedded reference compression",
        description=(
            "The camcorder's encoder loop with an embedded codec on the "
            "reference/reconstruction path: frame buffers shrink to "
            "ec_ratio of their raw footprint and the motion-search "
            "traffic scales down with them.  The quality_cost_db metric "
            "documents the PSNR price of the traffic saved "
            "(quality_slope_db dB per unit of traffic removed)."
        ),
        params=(
            WorkloadParam(
                "ec_ratio", 0.5,
                doc="Embedded-compression ratio: compressed frame-buffer "
                    "traffic / raw traffic (1.0 = lossless passthrough).",
                minimum=0.25, maximum=1.0,
            ),
            WorkloadParam(
                "encoder_factor", 6.0,
                doc="Implementation-dependent motion-search constant.",
                minimum=0.0,
            ),
            WorkloadParam(
                "quality_slope_db", 4.0,
                doc="PSNR cost in dB per unit of frame-buffer traffic "
                    "removed (the frame-level allocation model's slope).",
                minimum=0.0,
            ),
            WorkloadParam(
                "intra_only", False,
                doc="Model an intra-coded frame: no reference reads.",
            ),
        ),
        derived=(
            ("v_frame", "bitrate_mbps * 1e6 / fps"),
            ("stream_bytes", "max(16, int(v_frame / 8) + 16)"),
            ("ec_frame_bits", "yuv420 * n * ec_ratio"),
            ("ref_read_each", "encoder_factor * ec_frame_bits"),
        ),
        buffers=(
            BufferDecl("sensor_raw", "(n * bayer + 7) // 8", conserved=True),
            BufferDecl("yuv", "(n * yuv420 + 7) // 8", conserved=True),
            BufferDecl("ref", "max(16, int(((n * yuv420 + 7) // 8) * ec_ratio))",
                       count="n_ref"),
            BufferDecl("recon_c", "max(16, int(((n * yuv420 + 7) // 8) * ec_ratio))",
                       conserved=True),
            BufferDecl("video_bs", "stream_bytes", conserved=True),
        ),
        stages=(
            StageSpec(
                "Camera I/F", "image",
                writes=(TrafficDecl("sensor_raw", "bayer * n"),),
            ),
            StageSpec(
                "ISP", "image",
                reads=(TrafficDecl("sensor_raw", "bayer * n"),),
                writes=(TrafficDecl("yuv", "yuv420 * n"),),
            ),
            StageSpec(
                "Video encoder", "coding",
                reads=(
                    TrafficDecl("yuv", "yuv420 * n"),
                    TrafficDecl("ref", "ref_read_each",
                                when="not intra_only", each=True),
                    TrafficDecl("recon_c", "ec_frame_bits"),
                ),
                writes=(
                    TrafficDecl("recon_c", "ec_frame_bits"),
                    TrafficDecl("video_bs", "v_frame"),
                ),
            ),
            StageSpec(
                "Writeback", "coding",
                reads=(TrafficDecl("video_bs", "v_frame"),),
            ),
        ),
        gop=GopSpec(length=15, intra_param="intra_only"),
        metrics=(
            ("quality_cost_db", "(1.0 - ec_ratio) * quality_slope_db"),
            ("traffic_saved_ratio", "1.0 - ec_ratio"),
        ),
    )


def vdcm_display() -> WorkloadSpec:
    """VDC-M-class display-stream decoder with parallel slice buffers."""
    return WorkloadSpec(
        name="vdcm_display",
        title="VDC-M-class display-stream decoder",
        description=(
            "A VESA display-compression decoder: the compressed stream "
            "is DMA'd into a bitstream buffer, decoded by `slices` "
            "parallel slice engines through per-slice line buffers, "
            "rastered into an RGB888 frame buffer and scanned out at "
            "the panel refresh rate.  No reference frames, no GOP."
        ),
        params=(
            WorkloadParam(
                "slices", 4,
                doc="Parallel slice decoders (each gets its own line "
                    "buffer).",
                minimum=1, maximum=16,
            ),
            WorkloadParam(
                "compressed_bpp", 6.0,
                doc="Compressed stream rate, bits per pixel.",
                minimum=1.0, maximum=24.0,
            ),
            WorkloadParam(
                "line_buffer_lines", 4,
                doc="Raster lines held per slice line buffer.",
                minimum=1,
            ),
            WorkloadParam(
                "refresh_hz", 60.0,
                doc="Panel refresh rate, Hz.",
                minimum=1.0,
            ),
        ),
        derived=(
            ("cstream_bits", "compressed_bpp * n"),
            ("slice_pixels", "ceil(n / slices)"),
            ("slice_bits", "rgb888 * slice_pixels"),
            ("line_buffer_bytes",
             "(frame_width * rgb888 * line_buffer_lines + 7) // 8"),
            ("scanouts", "refresh_hz / fps"),
        ),
        buffers=(
            BufferDecl("bitstream", "max(16, int(cstream_bits / 8) + 16)",
                       conserved=True),
            BufferDecl("slice_buf", "line_buffer_bytes", count="slices",
                       conserved=True),
            BufferDecl("display_fb", "(n * rgb888 + 7) // 8"),
        ),
        stages=(
            StageSpec(
                "Stream DMA", "coding",
                writes=(TrafficDecl("bitstream", "cstream_bits"),),
            ),
            StageSpec(
                "Slice decode", "coding",
                reads=(TrafficDecl("bitstream", "cstream_bits"),),
                writes=(TrafficDecl("slice_buf", "slice_bits", each=True),),
            ),
            StageSpec(
                "Raster out", "image",
                reads=(TrafficDecl("slice_buf", "slice_bits", each=True),),
                writes=(TrafficDecl("display_fb", "rgb888 * n"),),
            ),
            StageSpec(
                "DisplayCtrl", "image",
                reads=(TrafficDecl("display_fb", "rgb888 * n * scanouts"),),
            ),
        ),
        gop=GopSpec(length=1, intra_param=None),
    )
