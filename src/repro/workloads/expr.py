"""Safe arithmetic expressions for declarative workload specs.

A :class:`~repro.workloads.spec.WorkloadSpec` describes traffic as
*data*: buffer sizes, per-stage read/write volumes and derived
quantities are small arithmetic expressions over named symbols
(``"encoder_factor * yuv420 * n"``) instead of Python code.  That is
what makes a workload serialisable, diffable and registrable at
runtime -- but it needs an evaluator that is

- **deterministic**: plain IEEE-754/integer arithmetic, evaluated
  left to right exactly as Python would, so a spec re-expressing an
  imperative pipeline reproduces its numbers *bit for bit* (the
  ``h264_camcorder`` spec is pinned bit-identical to the legacy
  :class:`~repro.usecase.pipeline.VideoRecordingUseCase` formulas);
- **closed**: no attribute access, no subscripts, no general calls,
  no comprehensions -- a workload spec loaded from a dict cannot touch
  anything outside its declared symbols.  Anything outside the
  whitelist raises :class:`~repro.errors.ConfigurationError` naming
  the offending construct.

Supported grammar: numeric literals, ``True``/``False``, names bound
in the environment, ``+ - * / // % **``, unary ``-``/``+``/``not``,
comparisons (including chains), ``and``/``or``, conditional
expressions (``a if cond else b``) and calls to the whitelisted
functions ``min``, ``max``, ``abs``, ``round``, ``int``, ``float``,
``ceil`` and ``floor``.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, Mapping, Tuple, Union

from repro.errors import ConfigurationError

#: Values an expression may produce or consume.
Number = Union[bool, int, float]

#: Callables reachable from workload expressions.  Deliberately tiny:
#: pure, deterministic, total on numbers.
FUNCTIONS: Mapping[str, object] = {
    "min": min,
    "max": max,
    "abs": abs,
    "round": round,
    "int": int,
    "float": float,
    "ceil": math.ceil,
    "floor": math.floor,
}

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


class _Evaluator(ast.NodeVisitor):
    """Evaluates one parsed expression over a symbol environment."""

    def __init__(self, source: str, env: Mapping[str, Number]) -> None:
        self.source = source
        self.env = env

    def _fail(self, node: ast.AST, what: str) -> ConfigurationError:
        return ConfigurationError(
            f"workload expression {self.source!r}: {what} is not allowed "
            "(supported: numbers, named symbols, arithmetic, comparisons, "
            "and/or/not, conditional expressions, and calls to "
            f"{', '.join(sorted(FUNCTIONS))})"
        )

    def visit(self, node: ast.AST) -> Number:  # noqa: D102 - dispatcher
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise self._fail(node, type(node).__name__)
        return method(node)

    def _eval_Expression(self, node: ast.Expression) -> Number:
        return self.visit(node.body)

    def _eval_Constant(self, node: ast.Constant) -> Number:
        if isinstance(node.value, bool) or isinstance(node.value, (int, float)):
            return node.value
        raise self._fail(node, f"literal {node.value!r}")

    def _eval_Name(self, node: ast.Name) -> Number:
        try:
            return self.env[node.id]
        except KeyError:
            raise ConfigurationError(
                f"workload expression {self.source!r} references unknown "
                f"symbol {node.id!r}; known symbols: "
                f"{', '.join(sorted(self.env))}"
            ) from None

    def _eval_BinOp(self, node: ast.BinOp) -> Number:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise self._fail(node, f"operator {type(node.op).__name__}")
        left = self.visit(node.left)
        right = self.visit(node.right)
        try:
            return op(left, right)
        except ZeroDivisionError:
            raise ConfigurationError(
                f"workload expression {self.source!r} divides by zero"
            ) from None

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Number:
        operand = self.visit(node.operand)
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        if isinstance(node.op, ast.Not):
            return not operand
        raise self._fail(node, f"operator {type(node.op).__name__}")

    def _eval_BoolOp(self, node: ast.BoolOp) -> Number:
        if isinstance(node.op, ast.And):
            value: Number = True
            for clause in node.values:
                value = self.visit(clause)
                if not value:
                    return value
            return value
        value = False
        for clause in node.values:
            value = self.visit(clause)
            if value:
                return value
        return value

    def _eval_Compare(self, node: ast.Compare) -> Number:
        left = self.visit(node.left)
        for op_node, comparator in zip(node.ops, node.comparators):
            op = _CMPOPS.get(type(op_node))
            if op is None:
                raise self._fail(node, f"comparison {type(op_node).__name__}")
            right = self.visit(comparator)
            if not op(left, right):
                return False
            left = right
        return True

    def _eval_IfExp(self, node: ast.IfExp) -> Number:
        return self.visit(node.body) if self.visit(node.test) else self.visit(node.orelse)

    def _eval_Call(self, node: ast.Call) -> Number:
        if not isinstance(node.func, ast.Name) or node.func.id not in FUNCTIONS:
            raise self._fail(node, "calling anything but the whitelisted functions")
        if node.keywords:
            raise self._fail(node, "keyword arguments")
        args = [self.visit(arg) for arg in node.args]
        return FUNCTIONS[node.func.id](*args)


def evaluate(source: str, env: Mapping[str, Number]) -> Number:
    """Evaluate one workload expression over ``env``.

    Raises :class:`~repro.errors.ConfigurationError` on syntax errors,
    unknown symbols or constructs outside the supported grammar; the
    message always quotes the offending expression, so a broken spec
    fails loudly at instantiation, never deep inside a sweep.
    """
    if not isinstance(source, str) or not source.strip():
        raise ConfigurationError(
            f"workload expression must be a non-empty string, got {source!r}"
        )
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(
            f"workload expression {source!r} is not valid: {exc.msg}"
        ) from None
    value = _Evaluator(source, env).visit(tree)
    if isinstance(value, bool) or isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            raise ConfigurationError(
                f"workload expression {source!r} evaluated to non-finite "
                f"{value!r}"
            )
        return value
    raise ConfigurationError(
        f"workload expression {source!r} evaluated to {type(value).__name__}, "
        "expected a number"
    )


def validate_symbols(source: str) -> Tuple[str, ...]:
    """Parse ``source`` and return the symbols it references.

    Used by spec validation to check expressions *structurally* at
    construction time (grammar and referenced names) without needing a
    full evaluation environment yet.
    """
    if not isinstance(source, str) or not source.strip():
        raise ConfigurationError(
            f"workload expression must be a non-empty string, got {source!r}"
        )
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(
            f"workload expression {source!r} is not valid: {exc.msg}"
        ) from None
    names = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id not in FUNCTIONS:
                names.append(node.id)
        elif isinstance(
            node,
            (
                ast.Expression, ast.Constant, ast.BinOp, ast.UnaryOp,
                ast.BoolOp, ast.Compare, ast.IfExp, ast.Call, ast.Load,
            ),
        ):
            continue
        elif isinstance(node, (ast.operator, ast.unaryop, ast.boolop, ast.cmpop)):
            continue
        else:
            raise ConfigurationError(
                f"workload expression {source!r}: "
                f"{type(node).__name__} is not allowed"
            )
    seen: Dict[str, None] = {}
    for name in names:
        seen.setdefault(name, None)
    return tuple(seen)
