"""Declarative workload specifications.

ROADMAP item 3: the load model originally spoke exactly one dialect --
the paper's 2009 H.264 camcorder pipeline, hardcoded as imperative
Python in :class:`~repro.usecase.pipeline.VideoRecordingUseCase`.  A
:class:`WorkloadSpec` re-expresses such a pipeline as *data*:

- a **parameter schema** (:class:`WorkloadParam`): the knobs a caller
  may turn, with defaults, bounds and documentation;
- **derived symbols**: named arithmetic expressions (evaluated by
  :mod:`repro.workloads.expr`) over the parameters and the per-level
  intrinsics (frame pixels, fps, bitrate, reference-frame count,
  pixel-format bit depths);
- **buffer declarations** (:class:`BufferDecl`): the execution-memory
  frame/stream buffers, with expression-valued sizes and instance
  counts (``ref_0 .. ref_{n_ref-1}``) and an optional ``conserved``
  flag declaring that reads and writes of the buffer must balance --
  a per-spec traffic oracle the tests check on every zoo member;
- **stages** (:class:`StageSpec`): the pipeline stages in order, each
  with read/write traffic declarations (:class:`TrafficDecl`,
  expression-valued bits per frame, optionally gated by a ``when``
  condition or fanned out over a counted buffer's instances) and a
  per-stage traffic ``scale`` factor;
- **frame/GOP structure** (:class:`GopSpec`): the steady-state GOP
  length and which parameter flips the spec into its intra-coded
  variant, so :mod:`repro.analysis.steadystate` works on any workload;
- optional **metrics**: named derived quantities that are *about* the
  workload rather than traffic (e.g. the documented quality cost of a
  lossy embedded-compression ratio).

``spec.instantiate(level, **params)`` binds the spec to one
H.264-style level (the source of frame geometry, frame rate, bitrate
and reference count) and yields a :class:`WorkloadInstance` -- the
duck type :class:`~repro.load.model.VideoRecordingLoadModel` and the
sweep machinery consume: ``buffers()``, ``stages()``,
``total_bytes_per_frame()``.  The builtin ``h264_camcorder`` spec
(:mod:`repro.workloads.zoo`) reproduces the legacy class bit for bit;
``verify-paper`` staying exact is the proof the refactor preserved the
paper's numbers.

Specs round-trip losslessly through :meth:`WorkloadSpec.to_dict` /
:meth:`WorkloadSpec.from_dict`, so new pipelines can be loaded as
JSON, registered (:mod:`repro.workloads.registry`) and swept without
touching the engines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workloads.expr import Number, evaluate, validate_symbols

#: Serialisation schema tag of :meth:`WorkloadSpec.to_dict`.
SPEC_SCHEMA = "repro-workload/1"

#: Stage categories, the Table I split: image processing vs video
#: coding.  Decode-oriented zoo members map their bitstream/recon
#: stages onto "coding" and their raster stages onto "image".
STAGE_CATEGORIES = ("image", "coding")

#: Symbols every instantiation environment provides before parameters
#: and derived expressions are layered on top -- the per-level
#: intrinsics and the pixel-format bit depths of
#: :class:`~repro.usecase.formats.PixelFormat`.
INTRINSIC_SYMBOLS = (
    "n",             # frame pixels of the level
    "frame_width",
    "frame_height",
    "fps",
    "bitrate_mbps",  # the level's maximum output bitrate
    "n_ref",         # the level's reference-frame count
    "bayer",         # bits/pel, Bayer RGB
    "yuv422",        # bits/pel, YUV422
    "yuv420",        # bits/pel, YUV420
    "rgb888",        # bits/pel, RGB888
)


# ---------------------------------------------------------------------------
# Instantiated traffic model (the duck type the load model consumes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufferSpec:
    """One execution-memory frame/stream buffer."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("buffer name must be non-empty")
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"buffer {self.name!r} must have positive size, got {self.size_bytes}"
            )


@dataclass(frozen=True)
class StageTraffic:
    """Per-frame execution-memory traffic of one pipeline stage.

    ``reads``/``writes`` list ``(buffer_name, bits)`` pairs; Table I's
    cell for the stage is their combined total.
    """

    name: str
    #: ``"image"`` (image processing) or ``"coding"`` (video coding).
    category: str
    reads: Tuple[Tuple[str, float], ...] = ()
    writes: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.category not in STAGE_CATEGORIES:
            raise ConfigurationError(
                f"category must be 'image' or 'coding', got {self.category!r}"
            )
        for buf, bits in self.reads + self.writes:
            if bits < 0:
                raise ConfigurationError(
                    f"stage {self.name!r}: negative traffic on {buf!r}"
                )

    @property
    def read_bits(self) -> float:
        """Bits read from execution memory per frame."""
        return sum(bits for _, bits in self.reads)

    @property
    def write_bits(self) -> float:
        """Bits written to execution memory per frame."""
        return sum(bits for _, bits in self.writes)

    @property
    def total_bits(self) -> float:
        """Combined consumption + production (the Table I cell)."""
        return self.read_bits + self.write_bits


# ---------------------------------------------------------------------------
# Declarative spec vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadParam:
    """One knob of a workload's parameter schema."""

    name: str
    default: Number
    doc: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ConfigurationError(
                f"parameter name must be an identifier, got {self.name!r}"
            )
        self.check(self.default)

    def check(self, value: Any) -> Number:
        """Validate one supplied value against the schema."""
        if not isinstance(value, (bool, int, float)):
            raise ConfigurationError(
                f"parameter {self.name!r} must be a number, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {value}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ConfigurationError(
                f"parameter {self.name!r} must be <= {self.maximum}, got {value}"
            )
        return value


@dataclass(frozen=True)
class BufferDecl:
    """Declaration of one (possibly counted) execution-memory buffer.

    ``size`` is an expression in bytes.  An empty ``count`` declares a
    single buffer named ``name``; a non-empty ``count`` expression
    declares instances ``name_0 .. name_{count-1}`` (the reference-
    frame list idiom).  ``conserved=True`` declares the traffic oracle
    "everything written into this buffer is read back out": the
    instantiated stages' total read bits of the buffer must equal the
    total write bits (checked by :meth:`WorkloadInstance.check_traffic_oracles`).
    """

    name: str
    size: str
    count: str = ""
    conserved: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ConfigurationError(
                f"buffer name must be an identifier, got {self.name!r}"
            )
        validate_symbols(self.size)
        if self.count:
            validate_symbols(self.count)


@dataclass(frozen=True)
class TrafficDecl:
    """One read or write entry of a stage.

    ``bits`` is the per-frame traffic expression.  ``when`` (optional
    expression) gates the entry: a falsy value drops it from the
    instantiated stage.  ``each=True`` fans the entry out over every
    instance of a counted buffer, in instance order, ``bits`` each --
    the motion-estimation idiom of reading every reference frame.
    """

    buffer: str
    bits: str
    when: str = ""
    each: bool = False

    def __post_init__(self) -> None:
        if not self.buffer:
            raise ConfigurationError("traffic declaration needs a buffer name")
        validate_symbols(self.bits)
        if self.when:
            validate_symbols(self.when)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: name, category, traffic, scale factor.

    ``scale`` is a per-stage traffic scale-factor expression applied
    to every read/write of the stage (default ``"1"``, which is
    applied as the identity -- it never perturbs the arithmetic of an
    unscaled stage).
    """

    name: str
    category: str
    reads: Tuple[TrafficDecl, ...] = ()
    writes: Tuple[TrafficDecl, ...] = ()
    scale: str = "1"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("stage name must be non-empty")
        if self.category not in STAGE_CATEGORIES:
            raise ConfigurationError(
                f"stage {self.name!r}: category must be one of "
                f"{STAGE_CATEGORIES}, got {self.category!r}"
            )
        validate_symbols(self.scale)


@dataclass(frozen=True)
class GopSpec:
    """Frame/GOP structure of a workload.

    ``length`` is the steady-state GOP length (1 = every frame is
    identical, no prediction structure).  ``intra_param`` names the
    boolean parameter that flips the spec into its intra-coded (I)
    frame variant; ``None`` means the workload has no I/P distinction
    and the GOP analysis sees a flat profile.
    """

    length: int = 1
    intra_param: Optional[str] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(
                f"gop length must be >= 1, got {self.length}"
            )


# ---------------------------------------------------------------------------
# The spec itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative workload: the Fig. 1 idiom as data."""

    name: str
    title: str
    description: str = ""
    params: Tuple[WorkloadParam, ...] = ()
    #: Ordered ``(symbol, expression)`` pairs, evaluated over the
    #: intrinsics + parameters; later entries may use earlier ones.
    derived: Tuple[Tuple[str, str], ...] = ()
    buffers: Tuple[BufferDecl, ...] = ()
    stages: Tuple[StageSpec, ...] = ()
    gop: GopSpec = field(default_factory=GopSpec)
    #: Named derived quantities about the workload (not traffic), e.g.
    #: a lossy codec's documented quality cost.
    metrics: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise ConfigurationError(
                f"workload name must be a non-empty token, got {self.name!r}"
            )
        if not self.stages:
            raise ConfigurationError(
                f"workload {self.name!r} declares no stages"
            )
        if not self.buffers:
            raise ConfigurationError(
                f"workload {self.name!r} declares no buffers"
            )
        seen: Dict[str, str] = {sym: "intrinsic" for sym in INTRINSIC_SYMBOLS}
        for param in self.params:
            if param.name in seen:
                raise ConfigurationError(
                    f"workload {self.name!r}: parameter {param.name!r} "
                    f"shadows an existing {seen[param.name]} symbol"
                )
            seen[param.name] = "parameter"
        for symbol, expression in self.derived:
            if symbol in seen:
                raise ConfigurationError(
                    f"workload {self.name!r}: derived symbol {symbol!r} "
                    f"shadows an existing {seen[symbol]} symbol"
                )
            if not symbol.isidentifier():
                raise ConfigurationError(
                    f"workload {self.name!r}: derived symbol {symbol!r} "
                    "must be an identifier"
                )
            validate_symbols(expression)
            seen[symbol] = "derived"
        buffer_names = [decl.name for decl in self.buffers]
        if len(set(buffer_names)) != len(buffer_names):
            raise ConfigurationError(
                f"workload {self.name!r}: duplicate buffer names "
                f"{buffer_names}"
            )
        declared = {decl.name: decl for decl in self.buffers}
        stage_names = [stage.name for stage in self.stages]
        if len(set(stage_names)) != len(stage_names):
            raise ConfigurationError(
                f"workload {self.name!r}: duplicate stage names {stage_names}"
            )
        for stage in self.stages:
            for entry in stage.reads + stage.writes:
                decl = declared.get(entry.buffer)
                if decl is None:
                    raise ConfigurationError(
                        f"workload {self.name!r}, stage {stage.name!r}: "
                        f"unknown buffer {entry.buffer!r}; declared buffers: "
                        f"{', '.join(sorted(declared))}"
                    )
                if entry.each and not decl.count:
                    raise ConfigurationError(
                        f"workload {self.name!r}, stage {stage.name!r}: "
                        f"'each' traffic needs a counted buffer, but "
                        f"{entry.buffer!r} is a single buffer"
                    )
        if self.gop.intra_param is not None:
            if self.gop.intra_param not in {p.name for p in self.params}:
                raise ConfigurationError(
                    f"workload {self.name!r}: gop intra_param "
                    f"{self.gop.intra_param!r} is not a declared parameter"
                )
        metric_names = [name for name, _ in self.metrics]
        if len(set(metric_names)) != len(metric_names):
            raise ConfigurationError(
                f"workload {self.name!r}: duplicate metric names "
                f"{metric_names}"
            )
        for _, expression in self.metrics:
            validate_symbols(expression)

    # -- parameters ---------------------------------------------------------

    def param_defaults(self) -> Dict[str, Number]:
        """The schema's default parameter values."""
        return {param.name: param.default for param in self.params}

    def resolve_params(self, overrides: Mapping[str, Any]) -> Dict[str, Number]:
        """Defaults overlaid with ``overrides``, validated."""
        schema = {param.name: param for param in self.params}
        unknown = sorted(set(overrides) - set(schema))
        if unknown:
            raise ConfigurationError(
                f"workload {self.name!r} has no parameter(s) "
                f"{', '.join(repr(u) for u in unknown)}; schema: "
                f"{', '.join(sorted(schema)) or '(none)'}"
            )
        values = self.param_defaults()
        for key, value in overrides.items():
            values[key] = schema[key].check(value)
        return values

    # -- instantiation ------------------------------------------------------

    def instantiate(self, level: "H264Level", **params: Any) -> "WorkloadInstance":
        """Bind the spec to one level (and parameter overrides)."""
        return WorkloadInstance(self, level, self.resolve_params(params))

    def bind(self, **params: Any) -> "BoundWorkload":
        """Partially apply parameter overrides, leaving the level open
        (the form sweep jobs carry)."""
        resolved = self.resolve_params(params)
        return BoundWorkload(
            spec=self, params=tuple(sorted(resolved.items()))
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able projection (see :meth:`from_dict`)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "params": [
                {
                    "name": p.name,
                    "default": p.default,
                    "doc": p.doc,
                    "minimum": p.minimum,
                    "maximum": p.maximum,
                }
                for p in self.params
            ],
            "derived": [[symbol, expression] for symbol, expression in self.derived],
            "buffers": [
                {
                    "name": b.name,
                    "size": b.size,
                    "count": b.count,
                    "conserved": b.conserved,
                }
                for b in self.buffers
            ],
            "stages": [
                {
                    "name": s.name,
                    "category": s.category,
                    "scale": s.scale,
                    "reads": [
                        {
                            "buffer": t.buffer,
                            "bits": t.bits,
                            "when": t.when,
                            "each": t.each,
                        }
                        for t in s.reads
                    ],
                    "writes": [
                        {
                            "buffer": t.buffer,
                            "bits": t.bits,
                            "when": t.when,
                            "each": t.each,
                        }
                        for t in s.writes
                    ],
                }
                for s in self.stages
            ],
            "gop": {"length": self.gop.length, "intra_param": self.gop.intra_param},
            "metrics": [[name, expression] for name, expression in self.metrics],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Round trip is lossless: ``from_dict(spec.to_dict()) == spec``.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"workload payload must be a mapping, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != SPEC_SCHEMA:
            raise ConfigurationError(
                f"unsupported workload schema {schema!r} (expected "
                f"{SPEC_SCHEMA!r})"
            )
        try:
            gop_payload = payload.get("gop", {})
            return cls(
                name=payload["name"],
                title=payload["title"],
                description=payload.get("description", ""),
                params=tuple(
                    WorkloadParam(
                        name=p["name"],
                        default=p["default"],
                        doc=p.get("doc", ""),
                        minimum=p.get("minimum"),
                        maximum=p.get("maximum"),
                    )
                    for p in payload.get("params", ())
                ),
                derived=tuple(
                    (symbol, expression)
                    for symbol, expression in payload.get("derived", ())
                ),
                buffers=tuple(
                    BufferDecl(
                        name=b["name"],
                        size=b["size"],
                        count=b.get("count", ""),
                        conserved=b.get("conserved", False),
                    )
                    for b in payload.get("buffers", ())
                ),
                stages=tuple(
                    StageSpec(
                        name=s["name"],
                        category=s["category"],
                        scale=s.get("scale", "1"),
                        reads=tuple(
                            TrafficDecl(
                                buffer=t["buffer"],
                                bits=t["bits"],
                                when=t.get("when", ""),
                                each=t.get("each", False),
                            )
                            for t in s.get("reads", ())
                        ),
                        writes=tuple(
                            TrafficDecl(
                                buffer=t["buffer"],
                                bits=t["bits"],
                                when=t.get("when", ""),
                                each=t.get("each", False),
                            )
                            for t in s.get("writes", ())
                        ),
                    )
                    for s in payload.get("stages", ())
                ),
                gop=GopSpec(
                    length=gop_payload.get("length", 1),
                    intra_param=gop_payload.get("intra_param"),
                ),
                metrics=tuple(
                    (name, expression)
                    for name, expression in payload.get("metrics", ())
                ),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"workload payload is missing required field {exc.args[0]!r}"
            ) from None

    def structure_digest(self) -> str:
        """SHA-256 over the spec's *semantic* structure.

        Projects everything that determines generated traffic --
        parameter schema, derived expressions, buffers, stages, GOP --
        and nothing cosmetic (title, description, docs).  Embedded in
        every sweep job's canonical key, so two registered specs that
        share a name but differ in structure can never alias stored
        results.
        """
        import json

        fragment = {
            "params": [
                [p.name, p.default, p.minimum, p.maximum] for p in self.params
            ],
            "derived": [list(pair) for pair in self.derived],
            "buffers": [
                [b.name, b.size, b.count, b.conserved] for b in self.buffers
            ],
            "stages": [
                [
                    s.name,
                    s.category,
                    s.scale,
                    [[t.buffer, t.bits, t.when, t.each] for t in s.reads],
                    [[t.buffer, t.bits, t.when, t.each] for t in s.writes],
                ]
                for s in self.stages
            ],
            "gop": [self.gop.length, self.gop.intra_param],
        }
        blob = json.dumps(fragment, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One line for listings: name, stage/buffer/param counts."""
        return (
            f"{self.name}: {self.title} ({len(self.stages)} stages, "
            f"{len(self.buffers)} buffers, {len(self.params)} params)"
        )


# ---------------------------------------------------------------------------
# Bound and instantiated workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoundWorkload:
    """A spec with its parameters resolved, the level still open.

    This is the form sweep jobs carry: picklable, hashable into
    canonical keys, instantiable per level inside a pool worker.
    ``params`` is the *fully resolved* sorted parameter tuple
    (defaults filled in), so binding explicitly to a default value and
    not binding at all produce equal objects -- and equal cache keys.
    """

    spec: WorkloadSpec
    params: Tuple[Tuple[str, Number], ...] = ()

    @property
    def name(self) -> str:
        """The underlying spec's registry name."""
        return self.spec.name

    def param_dict(self) -> Dict[str, Number]:
        """The resolved parameters as a dict."""
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "BoundWorkload":
        """Re-bind with additional overrides on top of the current ones."""
        merged = self.param_dict()
        merged.update(overrides)
        return self.spec.bind(**merged)

    def instantiate(self, level: "H264Level") -> "WorkloadInstance":
        """Instantiate for one level."""
        return WorkloadInstance(self.spec, level, self.spec.resolve_params(self.param_dict()))

    def intra_variant(self, intra: bool) -> "BoundWorkload":
        """The bound workload with its GOP intra flag set to ``intra``.

        Returns ``self`` unchanged when the spec declares no
        ``intra_param`` (no I/P distinction).
        """
        if self.spec.gop.intra_param is None:
            return self
        return self.with_params(**{self.spec.gop.intra_param: intra})

    def identity(self) -> Dict[str, Any]:
        """Canonical-key material: everything that determines the
        workload's traffic, nothing that does not (see
        :func:`repro.keys.canonical_key` and
        :func:`repro.analysis.sweep._job_description`)."""
        return {
            "workload": self.spec.name,
            "params": self.param_dict(),
            "structure": self.spec.structure_digest(),
        }

    def describe(self) -> str:
        """One line: spec name plus non-default parameters."""
        defaults = self.spec.param_defaults()
        diffs = {
            key: value
            for key, value in self.params
            if defaults.get(key) != value
        }
        if not diffs:
            return self.spec.name
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(diffs.items()))
        return f"{self.spec.name}({rendered})"


class WorkloadInstance:
    """One spec bound to one level: the concrete traffic model.

    Quacks like the legacy
    :class:`~repro.usecase.pipeline.VideoRecordingUseCase` where the
    load model and the analyses need it to: :meth:`buffers`,
    :meth:`stages`, :meth:`total_bytes_per_frame` and the Table-I
    split totals.  Everything is computed eagerly at construction, so
    a broken expression fails here -- with the spec and expression
    named -- rather than deep inside a sweep.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        level: "H264Level",
        params: Mapping[str, Number],
    ) -> None:
        self.spec = spec
        self.level = level
        self.params = dict(params)

        from repro.usecase.formats import PixelFormat

        env: Dict[str, Number] = {
            "n": level.frame.pixels,
            "frame_width": level.frame.width,
            "frame_height": level.frame.height,
            "fps": level.fps,
            "bitrate_mbps": level.max_bitrate_mbps,
            "n_ref": level.reference_frames,
            "bayer": PixelFormat.BAYER_RGB.bits_per_pixel,
            "yuv422": PixelFormat.YUV422.bits_per_pixel,
            "yuv420": PixelFormat.YUV420.bits_per_pixel,
            "rgb888": PixelFormat.RGB888.bits_per_pixel,
        }
        env.update(self.params)
        for symbol, expression in spec.derived:
            env[symbol] = evaluate(expression, env)
        self.env = env

        self._buffers = self._build_buffers()
        self._stages = self._build_stages()

    # -- construction helpers -----------------------------------------------

    def _buffer_int(self, decl: BufferDecl, expression: str, what: str) -> int:
        value = evaluate(expression, self.env)
        if isinstance(value, bool) or (
            isinstance(value, float) and value != int(value)
        ):
            raise ConfigurationError(
                f"workload {self.spec.name!r}, buffer {decl.name!r}: "
                f"{what} expression {expression!r} must yield an integer, "
                f"got {value!r}"
            )
        return int(value)

    def _build_buffers(self) -> Tuple[BufferSpec, ...]:
        out: List[BufferSpec] = []
        self._instances: Dict[str, Tuple[str, ...]] = {}
        for decl in self.spec.buffers:
            size = self._buffer_int(decl, decl.size, "size")
            if decl.count:
                count = self._buffer_int(decl, decl.count, "count")
                if count < 0:
                    raise ConfigurationError(
                        f"workload {self.spec.name!r}, buffer {decl.name!r}: "
                        f"count must be >= 0, got {count}"
                    )
                names = tuple(f"{decl.name}_{i}" for i in range(count))
            else:
                names = (decl.name,)
            self._instances[decl.name] = names
            for instance in names:
                out.append(BufferSpec(instance, size))
        return tuple(out)

    def _resolve_traffic(
        self, stage: StageSpec, entries: Sequence[TrafficDecl], scale: Number
    ) -> Tuple[Tuple[str, float], ...]:
        resolved: List[Tuple[str, float]] = []
        for entry in entries:
            if entry.when and not evaluate(entry.when, self.env):
                continue
            bits = evaluate(entry.bits, self.env)
            if scale != 1:
                bits = bits * scale
            if entry.each:
                for instance in self._instances[entry.buffer]:
                    resolved.append((instance, bits))
            else:
                names = self._instances[entry.buffer]
                if len(names) != 1:
                    raise ConfigurationError(
                        f"workload {self.spec.name!r}, stage {stage.name!r}: "
                        f"buffer {entry.buffer!r} has {len(names)} instances; "
                        "use each=True to fan traffic over them"
                    )
                resolved.append((names[0], bits))
        return tuple(resolved)

    def _build_stages(self) -> Tuple[StageTraffic, ...]:
        out: List[StageTraffic] = []
        for stage in self.spec.stages:
            scale = evaluate(stage.scale, self.env)
            if scale < 0:
                raise ConfigurationError(
                    f"workload {self.spec.name!r}, stage {stage.name!r}: "
                    f"scale must be >= 0, got {scale!r}"
                )
            out.append(
                StageTraffic(
                    name=stage.name,
                    category=stage.category,
                    reads=self._resolve_traffic(stage, stage.reads, scale),
                    writes=self._resolve_traffic(stage, stage.writes, scale),
                )
            )
        return tuple(out)

    # -- the load-model duck type -------------------------------------------

    def buffers(self) -> List[BufferSpec]:
        """Execution-memory buffers, in declaration (= layout) order."""
        return list(self._buffers)

    def stages(self) -> List[StageTraffic]:
        """The pipeline stages in order, with per-frame traffic."""
        return list(self._stages)

    def image_processing_bits_per_frame(self) -> float:
        """Table I: the image-processing category total."""
        return sum(s.total_bits for s in self._stages if s.category == "image")

    def video_coding_bits_per_frame(self) -> float:
        """Table I: the video-coding category total."""
        return sum(s.total_bits for s in self._stages if s.category == "coding")

    def total_bits_per_frame(self) -> float:
        """Per-frame execution-memory traffic in bits."""
        return self.image_processing_bits_per_frame() + self.video_coding_bits_per_frame()

    def total_bytes_per_frame(self) -> float:
        """Per-frame execution-memory traffic in bytes."""
        return self.total_bits_per_frame() / 8.0

    def bandwidth_bytes_per_s(self) -> float:
        """Sustained execution-memory bandwidth in bytes/s."""
        return self.total_bytes_per_frame() * self.level.fps

    # -- introspection ------------------------------------------------------

    def value(self, symbol: str) -> Number:
        """Look up one environment symbol (intrinsic, parameter or
        derived)."""
        try:
            return self.env[symbol]
        except KeyError:
            raise ConfigurationError(
                f"workload {self.spec.name!r} has no symbol {symbol!r}; "
                f"known symbols: {', '.join(sorted(self.env))}"
            ) from None

    def metric(self, name: str) -> Number:
        """Evaluate one declared metric (e.g. a quality-cost figure)."""
        for metric_name, expression in self.spec.metrics:
            if metric_name == name:
                return evaluate(expression, self.env)
        raise ConfigurationError(
            f"workload {self.spec.name!r} declares no metric {name!r}; "
            f"declared: {', '.join(n for n, _ in self.spec.metrics) or '(none)'}"
        )

    def metrics(self) -> Dict[str, Number]:
        """All declared metrics, evaluated."""
        return {
            name: evaluate(expression, self.env)
            for name, expression in self.spec.metrics
        }

    def check_traffic_oracles(self) -> List[str]:
        """Evaluate the spec's declared invariants; returns violations.

        - every stage's per-buffer traffic is non-negative (enforced
          structurally by :class:`StageTraffic`, re-checked here so a
          custom spec gets one entry point for all oracles);
        - every ``conserved`` buffer's total read bits equal its total
          write bits across the whole pipeline.
        """
        problems: List[str] = []
        read_totals: Dict[str, float] = {}
        write_totals: Dict[str, float] = {}
        for stage in self._stages:
            for buffer_name, bits in stage.reads:
                if bits < 0:
                    problems.append(
                        f"stage {stage.name!r} reads negative bits on "
                        f"{buffer_name!r}"
                    )
                read_totals[buffer_name] = read_totals.get(buffer_name, 0.0) + bits
            for buffer_name, bits in stage.writes:
                if bits < 0:
                    problems.append(
                        f"stage {stage.name!r} writes negative bits on "
                        f"{buffer_name!r}"
                    )
                write_totals[buffer_name] = write_totals.get(buffer_name, 0.0) + bits
        for decl in self.spec.buffers:
            if not decl.conserved:
                continue
            for instance in self._instances[decl.name]:
                reads = read_totals.get(instance, 0.0)
                writes = write_totals.get(instance, 0.0)
                if reads != writes:
                    problems.append(
                        f"buffer {instance!r} is declared conserved but "
                        f"reads {reads!r} bits vs writes {writes!r} bits"
                    )
        return problems

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.spec.name} {self.level.column_title}: "
            f"{self.total_bits_per_frame() / 1e6:.1f} Mb/frame, "
            f"{self.bandwidth_bytes_per_s() / 1e9:.2f} GB/s"
        )


# typing-only import placed last to avoid a cycle at module load
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.usecase.levels import H264Level
