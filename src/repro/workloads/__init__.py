"""Declarative workload specs and the builtin workload zoo.

ROADMAP item 3: pipelines as *data*, not code.  A
:class:`~repro.workloads.spec.WorkloadSpec` declares buffers, stages
with expression-valued read/write traffic, a parameter schema and
frame/GOP structure; :mod:`repro.workloads.registry` resolves specs by
name exactly like :mod:`repro.backends.registry` resolves backends;
:mod:`repro.workloads.zoo` ships the builtins (the paper's
``h264_camcorder``, bit-identical to the legacy imperative class, plus
``vvc_encoder``, ``h264_lossy_ec`` and ``vdcm_display``).

See ``docs/architecture.md`` (Workloads) and the cookbook recipe
"Sweeping a VVC-class workload".
"""

from repro.workloads.expr import evaluate, validate_symbols
from repro.workloads.registry import (
    WorkloadLike,
    available_workloads,
    default_workload_name,
    get_workload,
    register_workload,
    resolve_workload,
    set_default_workload,
    unregister_workload,
    validate_workload_name,
)
from repro.workloads.spec import (
    BoundWorkload,
    BufferDecl,
    BufferSpec,
    GopSpec,
    StageSpec,
    StageTraffic,
    TrafficDecl,
    WorkloadInstance,
    WorkloadParam,
    WorkloadSpec,
)

__all__ = [
    "BoundWorkload",
    "BufferDecl",
    "BufferSpec",
    "GopSpec",
    "StageSpec",
    "StageTraffic",
    "TrafficDecl",
    "WorkloadInstance",
    "WorkloadLike",
    "WorkloadParam",
    "WorkloadSpec",
    "available_workloads",
    "default_workload_name",
    "evaluate",
    "get_workload",
    "register_workload",
    "resolve_workload",
    "set_default_workload",
    "unregister_workload",
    "validate_symbols",
    "validate_workload_name",
]
