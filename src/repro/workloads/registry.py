"""Workload registry: name -> :class:`~repro.workloads.spec.WorkloadSpec`.

Mirrors :mod:`repro.backends.registry`: import-light, built-ins
resolved lazily on first :func:`get_workload` (``import repro`` never
pays for a spec nobody selected), loud
:class:`~repro.errors.ConfigurationError` listing the registered names
on a typo, and a process-wide default the CLI/sweeps fall back to.

Custom workloads -- including ones loaded from JSON via
:meth:`WorkloadSpec.from_dict` -- register at runtime::

    from repro.workloads import WorkloadSpec, register_workload

    spec = WorkloadSpec.from_dict(json.load(open("my_pipeline.json")))
    register_workload(spec)
    # repro-sim sweep --workload my_pipeline ...
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.workloads.spec import BoundWorkload, WorkloadSpec

#: Built-in zoo specs, resolved lazily: name -> (module, builder).
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "h264_camcorder": ("repro.workloads.zoo", "h264_camcorder"),
    "vvc_encoder": ("repro.workloads.zoo", "vvc_encoder"),
    "h264_lossy_ec": ("repro.workloads.zoo", "h264_lossy_ec"),
    "vdcm_display": ("repro.workloads.zoo", "vdcm_display"),
}

#: Instantiated specs (built-ins land here on first resolution).
_REGISTRY: Dict[str, WorkloadSpec] = {}

#: What sweeps and the CLI use when no workload is passed -- the
#: paper's own pipeline, so every historical entry point is unchanged.
_DEFAULT_WORKLOAD = "h264_camcorder"


def available_workloads() -> Tuple[str, ...]:
    """Sorted names of every registered workload (built-in + custom)."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTRY)))


def validate_workload_name(name: str) -> str:
    """Check that ``name`` is a registered workload and return it.

    Raises :class:`~repro.errors.ConfigurationError` naming the
    registered workloads otherwise -- the error a typo'd
    ``--workload vcc_encoder`` hits, eagerly in the CLI.
    """
    if not isinstance(name, str):
        raise ConfigurationError(
            f"workload must be a workload name (str), got {name!r}; "
            f"registered workloads: {', '.join(available_workloads())}"
        )
    if name not in _BUILTIN and name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown workload {name!r}; registered workloads: "
            f"{', '.join(available_workloads())}"
        )
    return name


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a workload name to its registered spec.

    Built-in zoo specs are imported and built on first use and cached.
    Unknown names raise :class:`~repro.errors.ConfigurationError`
    listing what is registered.
    """
    validate_workload_name(name)
    spec = _REGISTRY.get(name)
    if spec is None:
        import importlib

        module_name, builder_name = _BUILTIN[name]
        builder = getattr(importlib.import_module(module_name), builder_name)
        spec = builder()
        if spec.name != name:
            raise ConfigurationError(
                f"builtin workload builder {builder_name!r} produced spec "
                f"named {spec.name!r}, expected {name!r}"
            )
        _REGISTRY[name] = spec
    return spec


def register_workload(spec: WorkloadSpec, replace: bool = False) -> None:
    """Register a workload spec under ``spec.name``.

    ``replace=True`` allows shadowing an existing registration
    (including a built-in); without it a name collision raises
    :class:`~repro.errors.ConfigurationError` -- silently replacing
    the paper's camcorder would invalidate every golden.
    """
    if not isinstance(spec, WorkloadSpec):
        raise ConfigurationError(
            f"expected a WorkloadSpec, got {type(spec).__name__}"
        )
    if not replace and (spec.name in _BUILTIN or spec.name in _REGISTRY):
        raise ConfigurationError(
            f"workload name {spec.name!r} is already registered "
            "(pass replace=True to shadow it)"
        )
    _REGISTRY[spec.name] = spec


def unregister_workload(name: str) -> None:
    """Remove a runtime registration (built-ins reappear lazily)."""
    _REGISTRY.pop(name, None)


def default_workload_name() -> str:
    """The workload sweeps select when none is passed."""
    return _DEFAULT_WORKLOAD


def set_default_workload(name: str) -> str:
    """Set the process-wide default workload; returns the previous one."""
    global _DEFAULT_WORKLOAD
    validate_workload_name(name)
    previous = _DEFAULT_WORKLOAD
    _DEFAULT_WORKLOAD = name
    return previous


#: What callers may hand to :func:`resolve_workload`.
WorkloadLike = Union[None, str, WorkloadSpec, BoundWorkload]


def resolve_workload(
    workload: WorkloadLike = None,
    params: Optional[Mapping[str, Any]] = None,
) -> BoundWorkload:
    """Normalise any accepted workload designation to a
    :class:`~repro.workloads.spec.BoundWorkload`.

    - ``None`` -> the process default (:func:`default_workload_name`),
      so every legacy call site routes through the spec machinery;
    - a registered name (``"vvc_encoder"``);
    - a :class:`WorkloadSpec` (registered or not);
    - an already-bound workload (``params`` are layered on top).

    ``params`` are parameter overrides validated against the spec's
    schema -- unknown names or out-of-range values raise
    :class:`~repro.errors.ConfigurationError`.
    """
    overrides = dict(params or {})
    if workload is None:
        workload = default_workload_name()
    if isinstance(workload, str):
        workload = get_workload(workload)
    if isinstance(workload, WorkloadSpec):
        return workload.bind(**overrides)
    if isinstance(workload, BoundWorkload):
        if overrides:
            return workload.with_params(**overrides)
        return workload
    raise ConfigurationError(
        f"workload must be a name, WorkloadSpec or BoundWorkload, "
        f"got {type(workload).__name__}; registered workloads: "
        f"{', '.join(available_workloads())}"
    )
