"""The paper's primary contribution: the multi-channel memory system.

Combines the per-channel controller/DRAM models into the Fig. 2
architecture: *M* parallel channels fed through the Table II
interleaving, simulated independently (the interleaving guarantees a
sequential master stream decomposes into independent per-channel
streams), with access time reported as the latest channel completion.

- :mod:`repro.core.config` -- system configuration,
- :mod:`repro.core.interleave` -- Table II channel interleaving,
- :mod:`repro.core.channel` -- one channel (MC + interconnect + bank
  cluster) with its power model,
- :mod:`repro.core.system` -- the multi-channel system,
- :mod:`repro.core.results` -- simulation results,
- :mod:`repro.core.analytic` -- closed-form cross-check model,
- :mod:`repro.core.clusters` -- the channel-cluster extension from the
  paper's conclusions.
"""

from repro.core.config import SystemConfig
from repro.core.interleave import ChannelInterleaver
from repro.core.channel import Channel
from repro.core.system import MultiChannelMemorySystem
from repro.core.results import SimulationResult
from repro.core.analytic import AnalyticModel, AnalyticEstimate
from repro.core.clusters import ChannelCluster, ClusteredMemorySystem

__all__ = [
    "SystemConfig",
    "ChannelInterleaver",
    "Channel",
    "MultiChannelMemorySystem",
    "SimulationResult",
    "AnalyticModel",
    "AnalyticEstimate",
    "ChannelCluster",
    "ClusteredMemorySystem",
]
