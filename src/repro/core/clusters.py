"""Channel clusters: the paper's proposed extension.

Section V: *"it may be necessary to divide very large multi-channel
memories into independent channel clusters, each consisting of
reasonable number of channels"* -- so that each use case (or each
concurrent master) interleaves only over its own cluster and idle
clusters can power down wholesale.

A :class:`ClusteredMemorySystem` is a set of independent
:class:`~repro.core.system.MultiChannelMemorySystem` instances, each
with its own workload.  The benchmark ``bench_ext_clusters`` uses it to
show the energy argument: running a light workload on a 2-channel
cluster of an 8-channel memory beats interleaving it across all eight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.controller.request import MasterTransaction
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelCluster:
    """One independent cluster: a name and its channel configuration."""

    name: str
    config: SystemConfig

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("cluster name must be non-empty")


class ClusteredMemorySystem:
    """A multi-channel memory partitioned into independent clusters."""

    def __init__(self, clusters: Sequence[ChannelCluster]) -> None:
        if not clusters:
            raise ConfigurationError("need at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cluster names in {names}")
        freqs = {c.config.freq_mhz for c in clusters}
        if len(freqs) != 1:
            raise ConfigurationError(
                "clusters must share one interface clock in this model, got "
                f"{sorted(freqs)}"
            )
        self.clusters = list(clusters)
        self.systems = {c.name: MultiChannelMemorySystem(c.config) for c in clusters}

    @property
    def total_channels(self) -> int:
        """Channels across all clusters."""
        return sum(c.config.channels for c in self.clusters)

    def run(
        self,
        workloads: Dict[str, Iterable[MasterTransaction]],
        scale: float = 1.0,
    ) -> Dict[str, SimulationResult]:
        """Run each cluster's workload concurrently and independently.

        ``workloads`` maps cluster names to transaction streams; a
        cluster without an entry stays idle (it contributes only
        power-down energy, which the power report layer accounts for).
        """
        unknown = set(workloads) - set(self.systems)
        if unknown:
            raise ConfigurationError(f"unknown cluster names: {sorted(unknown)}")
        results: Dict[str, SimulationResult] = {}
        for name, txns in workloads.items():
            results[name] = self.systems[name].run(txns, scale=scale)
        return results

    def describe(self) -> str:
        """Human-readable summary of the partitioning."""
        parts = ", ".join(
            f"{c.name}:{c.config.channels}ch" for c in self.clusters
        )
        return f"clustered memory [{parts}] @ {self.clusters[0].config.freq_mhz:g} MHz"
