"""The multi-channel memory system (Fig. 2).

Master transactions enter through the Table II interleaver, which
splits them into per-channel access runs; each channel then simulates
independently.  Independence is exact for the paper's workload: the
interleaving is a perfect round-robin, the master stream is processed
in order per channel, and the access-time metric is the completion of
the *last* channel -- there is no cross-channel ordering the split
could violate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.controller.request import MasterTransaction
from repro.core.channel import Channel
from repro.core.config import SystemConfig
from repro.core.interleave import ChannelInterleaver
from repro.core.results import SimulationResult
from repro.errors import AddressError, ConfigurationError
from repro.units import clock_period_ns


class MultiChannelMemorySystem:
    """Simulates the paper's M-channel memory subsystem."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.interleaver = ChannelInterleaver(config.channels)
        self.channels: List[Channel] = [
            Channel(config, index=i) for i in range(config.channels)
        ]
        self._tck_ns = clock_period_ns(config.freq_mhz)

    # ------------------------------------------------------------------

    def run(
        self,
        transactions: Iterable[MasterTransaction],
        scale: float = 1.0,
        wrap_capacity: bool = True,
        command_logs: Optional[List[list]] = None,
    ) -> SimulationResult:
        """Simulate a stream of master transactions.

        Parameters
        ----------
        transactions:
            The load model's master transactions, in program order.
        scale:
            Fraction of the full workload the stream represents (see
            :mod:`repro.load.scaling`); recorded on the result so the
            full-workload metrics can be recovered.
        wrap_capacity:
            Treat the address space as cyclic: addresses wrap modulo
            the total capacity.  The paper sweeps the 2160p use case
            over a *single* 512 Mb channel whose buffers cannot all
            fit, so its timing study implicitly ignores capacity; the
            wrap preserves each stream's sequentiality and bank/row
            locality, which is all the timing model observes.  Set to
            ``False`` to enforce capacity strictly.
        command_logs:
            Pass an empty list to collect one per-channel command log
            (lists of :class:`~repro.dram.protocol.CommandRecord`) for
            protocol auditing; see :meth:`audit`.
        """
        per_channel: List[list] = [[] for _ in range(self.config.channels)]
        capacity = self.config.total_capacity_bytes
        total_chunks = capacity >> 4
        tck = self._tck_ns
        split_span = self.interleaver.split_span

        for txn in transactions:
            if txn.end_address > capacity and not wrap_capacity:
                raise AddressError(
                    f"transaction [{txn.address:#x}, {txn.end_address:#x}) "
                    f"exceeds total capacity {capacity:#x}"
                )
            arrival_cycle = int(txn.arrival_ns / tck) if txn.arrival_ns else 0
            span = txn.chunk_span()
            op = int(txn.op)
            first = span.start % total_chunks
            remaining = len(span)
            if remaining > total_chunks:
                raise AddressError(
                    f"transaction of {txn.size} bytes exceeds the whole "
                    f"memory capacity {capacity:#x}"
                )
            while remaining > 0:
                take = min(remaining, total_chunks - first)
                for ch, start, count in split_span(first, first + take - 1):
                    per_channel[ch].append((op, start, count, arrival_cycle))
                first = 0
                remaining -= take

        if command_logs is not None:
            command_logs.clear()
            command_logs.extend([] for _ in range(self.config.channels))
            results = [
                channel.engine.run(runs, command_log=log)
                for channel, runs, log in zip(
                    self.channels, per_channel, command_logs
                )
            ]
        else:
            results = [
                channel.run(runs) for channel, runs in zip(self.channels, per_channel)
            ]
        return SimulationResult(
            channels=results, freq_mhz=self.config.freq_mhz, scale=scale
        )

    def audit(self, command_logs: List[list]) -> List[str]:
        """Protocol-audit per-channel command logs from :meth:`run`.

        Returns human-readable violation strings (empty = clean).
        """
        problems: List[str] = []
        for index, (channel, log) in enumerate(zip(self.channels, command_logs)):
            for violation in channel.engine.make_checker().check(log):
                problems.append(f"channel {index}: {violation}")
        return problems

    # ------------------------------------------------------------------

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Raw aggregate bandwidth of the configuration."""
        return self.config.peak_bandwidth_bytes_per_s

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return self.config.describe()
