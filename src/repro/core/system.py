"""The multi-channel memory system (Fig. 2).

Master transactions enter through the Table II interleaver, which
splits them into per-channel access runs; each channel then simulates
independently.  Independence is exact for the paper's workload: the
interleaving is a perfect round-robin, the master stream is processed
in order per channel, and the access-time metric is the completion of
the *last* channel -- there is no cross-channel ordering the split
could violate.

That exact independence is what the parallel execution layer exploits:
:meth:`MultiChannelMemorySystem.run` can fan the per-channel streams
out over worker processes (``config.parallelism`` or ``workers=``) and
the results are bit-identical to the sequential path.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.controller.engine import ChannelResult
from repro.controller.request import MasterTransaction
from repro.core.channel import Channel
from repro.core.config import SystemConfig
from repro.core.interleave import ChannelInterleaver
from repro.core.results import SimulationResult
from repro.errors import AddressError, ConfigurationError
from repro.parallel import parallel_map, resolve_workers
from repro.telemetry.session import Telemetry
from repro.units import clock_period_ns

#: Below this many queued bursts a run stays in-process even when
#: parallelism is enabled: worker start-up (tens of milliseconds)
#: would dominate the few milliseconds of simulation.  The fallback is
#: deterministic -- it produces the identical result, just without the
#: pool.
PARALLEL_MIN_CHUNKS = 32_768

#: Sub-cycle slack for the arrival-time conversion: an arrival within
#: this many cycles of a clock edge (femtoseconds of real time) is
#: treated as on the edge, absorbing float rounding in ns arithmetic.
_ARRIVAL_EPSILON_CYCLES = 1e-6


def _run_channel_job(
    job: Tuple[SystemConfig, int, list]
) -> ChannelResult:
    """Simulate one channel's access stream (pool worker entry point).

    Module-level so it pickles by reference; the channel is rebuilt
    inside the worker from the (picklable) configuration.
    """
    config, index, runs = job
    return Channel(config, index=index).run(runs)


def _run_channel_job_timed(
    job: Tuple[SystemConfig, int, list]
) -> Tuple[float, ChannelResult]:
    """Like :func:`_run_channel_job`, but ships the worker-side engine
    wall-clock back with the result so telemetry can attribute pooled
    runs to ``system.engine`` vs ``system.pool`` dispatch overhead.

    Only selected when telemetry is live: the extra tuple costs a few
    bytes per channel on the pickle path and nothing else, and the
    :class:`ChannelResult` itself is bit-identical.
    """
    start = time.perf_counter()
    result = _run_channel_job(job)
    return (time.perf_counter() - start, result)


class MultiChannelMemorySystem:
    """Simulates the paper's M-channel memory subsystem."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.interleaver = ChannelInterleaver(config.channels)
        self.channels: List[Channel] = [
            Channel(config, index=i) for i in range(config.channels)
        ]
        self._tck_ns = clock_period_ns(config.freq_mhz)

    # ------------------------------------------------------------------

    def run(
        self,
        transactions: Iterable[MasterTransaction],
        scale: float = 1.0,
        wrap_capacity: bool = True,
        command_logs: Optional[List[list]] = None,
        workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> SimulationResult:
        """Simulate a stream of master transactions.

        Parameters
        ----------
        transactions:
            The load model's master transactions, in program order.
        scale:
            Fraction of the full workload the stream represents (see
            :mod:`repro.load.scaling`); recorded on the result so the
            full-workload metrics can be recovered.
        wrap_capacity:
            Treat the address space as cyclic: addresses wrap modulo
            the total capacity.  The paper sweeps the 2160p use case
            over a *single* 512 Mb channel whose buffers cannot all
            fit, so its timing study implicitly ignores capacity; the
            wrap preserves each stream's sequentiality and bank/row
            locality, which is all the timing model observes.  Set to
            ``False`` to enforce capacity strictly.
        command_logs:
            Pass an empty list to collect one per-channel command log
            (lists of :class:`~repro.dram.protocol.CommandRecord`) for
            protocol auditing; see :meth:`audit`.
        workers:
            Worker processes for simulating the per-channel streams
            concurrently; overrides ``config.parallelism`` when given
            (``None`` defers to the config, 0 = one per CPU).  The
            channels are exactly independent (see the module
            docstring), so parallel results are bit-identical to
            sequential ones.  Small runs (< ``PARALLEL_MIN_CHUNKS``
            bursts) and audit runs (``command_logs``) always execute
            in-process -- see :mod:`repro.parallel` for the rationale.
        telemetry:
            A live :class:`~repro.telemetry.Telemetry` session records
            the interleave/engine/pool phase wall-clock and the
            ``system.*`` / ``engine.*`` metrics (see
            docs/architecture.md, Observability).  ``None`` (the
            default) keeps the untapped fast path; results are
            bit-identical either way.
        """
        per_channel: List[list] = [[] for _ in range(self.config.channels)]
        capacity = self.config.total_capacity_bytes
        total_chunks = capacity >> 4
        tck = self._tck_ns
        split_span = self.interleaver.split_span

        def split_transactions() -> Tuple[int, int]:
            """Interleave the master stream; returns (txns, chunks)."""
            queued_chunks = 0
            n_txns = 0
            for txn in transactions:
                n_txns += 1
                if txn.end_address > capacity and not wrap_capacity:
                    raise AddressError(
                        f"transaction [{txn.address:#x}, {txn.end_address:#x}) "
                        f"exceeds total capacity {capacity:#x}"
                    )
                # Explicit None test: an arrival of exactly 0.0 ns is a
                # timestamp, not a missing one (both map to cycle 0, but
                # truthiness would also swallow a future Optional misuse).
                # The conversion rounds *up*: an arrival strictly inside
                # cycle k cannot issue at k -- truncation placed it one
                # cycle early.  Negative arrivals must be rejected here:
                # int() truncates toward zero, so a negative value would
                # round the wrong way and silently land at cycle 0/-1.
                if txn.arrival_ns is None:
                    arrival_cycle = 0
                else:
                    if txn.arrival_ns < 0:
                        raise ConfigurationError(
                            f"transaction arrival_ns must be >= 0, got "
                            f"{txn.arrival_ns!r}"
                        )
                    arrival_f = txn.arrival_ns / tck
                    arrival_cycle = int(arrival_f)
                    if arrival_f - arrival_cycle > _ARRIVAL_EPSILON_CYCLES:
                        arrival_cycle += 1
                span = txn.chunk_span()
                op = int(txn.op)
                first = span.start % total_chunks
                remaining = len(span)
                if remaining > total_chunks:
                    raise AddressError(
                        f"transaction of {txn.size} bytes exceeds the whole "
                        f"memory capacity {capacity:#x}"
                    )
                while remaining > 0:
                    take = min(remaining, total_chunks - first)
                    for ch, start, count in split_span(first, first + take - 1):
                        per_channel[ch].append((op, start, count, arrival_cycle))
                    first = 0
                    remaining -= take
                queued_chunks += len(span)
            return n_txns, queued_chunks

        if telemetry is None:
            n_txns, queued_chunks = split_transactions()
        else:
            with telemetry.phase("system.interleave"):
                n_txns, queued_chunks = split_transactions()

        if command_logs is not None:
            # Audit path: always in-process.  Per-command logs are
            # orders of magnitude larger than the ChannelResults, so
            # shipping them back across a process boundary would cost
            # more than the simulation itself; protocol auditing
            # therefore deliberately bypasses the pool.
            command_logs.clear()
            command_logs.extend([] for _ in range(self.config.channels))

            def run_audited() -> List[ChannelResult]:
                return [
                    channel.run(runs, command_log=log)
                    for channel, runs, log in zip(
                        self.channels, per_channel, command_logs
                    )
                ]

            if telemetry is None:
                results = run_audited()
            else:
                with telemetry.phase("system.engine"):
                    results = run_audited()
        else:
            requested = self.config.parallelism if workers is None else workers
            effective = resolve_workers(requested, self.config.channels)
            if effective > 1 and queued_chunks >= PARALLEL_MIN_CHUNKS:
                jobs = [
                    (self.config, i, runs)
                    for i, runs in enumerate(per_channel)
                ]
                if telemetry is None:
                    results = parallel_map(
                        _run_channel_job, jobs, workers=effective
                    )
                else:
                    # The timed job ships each worker's engine seconds
                    # back with its result: "system.pool" is the
                    # dispatch wall-clock (containing the workers) and
                    # "system.engine" the summed worker-side engine
                    # time, so pool overhead is readable as the
                    # difference.
                    with telemetry.phase("system.pool"):
                        timed = parallel_map(
                            _run_channel_job_timed, jobs, workers=effective
                        )
                    telemetry.profiler.add(
                        "system.engine",
                        sum(seconds for seconds, _ in timed),
                        calls=len(timed),
                    )
                    results = [result for _, result in timed]
            else:
                if telemetry is None:
                    results = [
                        channel.run(runs)
                        for channel, runs in zip(self.channels, per_channel)
                    ]
                else:
                    with telemetry.phase("system.engine"):
                        results = [
                            channel.run(runs)
                            for channel, runs in zip(self.channels, per_channel)
                        ]
        result = SimulationResult(
            channels=results, freq_mhz=self.config.freq_mhz, scale=scale
        )
        if telemetry is not None:
            self._tap_metrics(telemetry, result, n_txns, queued_chunks)
        return result

    def _tap_metrics(
        self,
        telemetry: Telemetry,
        result: SimulationResult,
        n_txns: int,
        queued_chunks: int,
    ) -> None:
        """Fold one run's statistics into the telemetry registry.

        Tapped once per *run* (never per burst): the engine collects
        its per-burst statistics as plain integers regardless, so the
        registry cost is a handful of counter additions per simulation.
        """
        registry = telemetry.registry
        registry.counter("system.runs").add(1)
        registry.counter(f"system.backend.{self.config.backend}").add(1)
        registry.counter("system.transactions").add(n_txns)
        registry.counter("system.chunks_queued").add(queued_chunks)
        for name, value in result.engine_stats().items():
            registry.counter(f"engine.{name}").add(value)
        finish_hist = registry.histogram("system.channel_finish_cycles")
        for channel in result.channels:
            finish_hist.record(channel.finish_cycle)

    def audit(self, command_logs: List[list]) -> List[str]:
        """Protocol-audit per-channel command logs from :meth:`run`.

        Returns human-readable violation strings (empty = clean).
        """
        problems: List[str] = []
        for index, (channel, log) in enumerate(zip(self.channels, command_logs)):
            checker_factory = getattr(channel.simulator, "make_checker", None)
            if checker_factory is None:
                raise ConfigurationError(
                    f"backend {self.config.backend!r} does not support "
                    "protocol auditing (no command logs); use the "
                    "'reference' or 'fast' backend"
                )
            for violation in checker_factory().check(log):
                problems.append(f"channel {index}: {violation}")
        return problems

    # ------------------------------------------------------------------

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Raw aggregate bandwidth of the configuration."""
        return self.config.peak_bandwidth_bytes_per_s

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return self.config.describe()
