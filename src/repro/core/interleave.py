"""Channel interleaving: the paper's Table II memory mapping.

Section III: *"the data for the channels is interleaved in such a way
that all the channels can be used in a single master transaction. ...
Byte addressable memory is used, minimum DRAM burst size is four, and
word length is 32 bits (4 bytes).  This makes minimum practical
interleaving granularity 16 (= 4x4).  For example, addresses from 0 to
15 are located in bank cluster zero and addresses from 16 to 31 in
bank cluster one."*

So global chunk *g* (16-byte granule) lives on channel ``g mod M`` at
local chunk ``g div M``.  Because the mapping is a perfect round-robin,
a contiguous global range decomposes into one *contiguous local* run
per channel -- the property that lets the system simulate channels
independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.controller.request import CHUNK_BYTES, CHUNK_SHIFT, MasterTransaction
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelInterleaver:
    """Round-robin interleaving of 16-byte granules over M channels."""

    channels: int
    granularity: int = CHUNK_BYTES

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError(
                f"channel count must be >= 1, got {self.channels}"
            )
        if self.granularity != CHUNK_BYTES:
            raise ConfigurationError(
                "the paper's minimum practical interleaving granularity is "
                f"{CHUNK_BYTES} bytes (burst 4 x 32-bit word); got "
                f"{self.granularity}"
            )

    # -- single-address mapping (Table II) ---------------------------------

    def channel_of(self, address: int) -> int:
        """Bank cluster holding global byte ``address`` (Table II)."""
        if address < 0:
            raise ConfigurationError(f"address must be >= 0, got {address}")
        return (address >> CHUNK_SHIFT) % self.channels

    def local_address(self, address: int) -> int:
        """Channel-local byte address of global byte ``address``."""
        if address < 0:
            raise ConfigurationError(f"address must be >= 0, got {address}")
        chunk = address >> CHUNK_SHIFT
        return ((chunk // self.channels) << CHUNK_SHIFT) | (address & (CHUNK_BYTES - 1))

    def global_address(self, channel: int, local_addr: int) -> int:
        """Inverse mapping: reconstruct the global byte address."""
        if not 0 <= channel < self.channels:
            raise ConfigurationError(f"channel {channel} out of range")
        if local_addr < 0:
            raise ConfigurationError(f"local address must be >= 0, got {local_addr}")
        local_chunk = local_addr >> CHUNK_SHIFT
        chunk = local_chunk * self.channels + channel
        return (chunk << CHUNK_SHIFT) | (local_addr & (CHUNK_BYTES - 1))

    # -- transaction splitting ----------------------------------------------

    def split_span(
        self, first_chunk: int, last_chunk: int
    ) -> List[Tuple[int, int, int]]:
        """Split a global chunk span into per-channel local runs.

        Returns ``(channel, local_start_chunk, count)`` triples for
        every channel that receives at least one chunk of the span
        ``[first_chunk, last_chunk]`` (inclusive).
        """
        if first_chunk < 0 or last_chunk < first_chunk:
            raise ConfigurationError(
                f"invalid chunk span [{first_chunk}, {last_chunk}]"
            )
        m = self.channels
        out: List[Tuple[int, int, int]] = []
        for ch in range(m):
            offset = (ch - first_chunk) % m
            first_g = first_chunk + offset
            if first_g > last_chunk:
                continue
            count = (last_chunk - first_g) // m + 1
            out.append((ch, first_g // m, count))
        return out

    def split_transaction(
        self, txn: MasterTransaction
    ) -> List[Tuple[int, int, int, int]]:
        """Split a master transaction into per-channel run tuples.

        Returns ``(channel, op, local_start_chunk, count)``; the
        arrival time is handled by the caller because it needs the
        channel clock to convert nanoseconds into cycles.
        """
        span = txn.chunk_span()
        return [
            (ch, int(txn.op), start, count)
            for ch, start, count in self.split_span(span.start, span.stop - 1)
        ]

    def table2_rows(self, columns: int = 6) -> List[Tuple[str, str]]:
        """Regenerate Table II: address ranges and their bank clusters.

        Returns ``(address_range, bank_cluster)`` string pairs covering
        ``columns`` granules and the wrap-around entry, mirroring the
        paper's presentation (``0 -> BC 0``, ``16 -> BC 1``, ...,
        ``16 x (M-1) -> BC M-1``, ``16 x M -> BC 0``).
        """
        rows = []
        for i in range(min(columns, self.channels)):
            base = i * CHUNK_BYTES
            rows.append(
                (f"{base}..{base + CHUNK_BYTES - 1}", f"BC {self.channel_of(base)}")
            )
        wrap = self.channels * CHUNK_BYTES
        rows.append((f"{wrap}..{wrap + CHUNK_BYTES - 1}", f"BC {self.channel_of(wrap)}"))
        return rows
