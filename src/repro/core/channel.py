"""One memory channel: controller + DRAM interconnect + bank cluster.

Section III: *"A memory controller, DRAM interconnect, and bank
cluster form an entity called channel model.  The delay and power
consumption figures in the simulations are attained from the channel
model."*  This class is that entity: it owns a timing engine and the
matching power model and evaluates both over an access stream.
"""

from __future__ import annotations

from typing import Iterable

from repro.controller.engine import ChannelEngine, ChannelResult, RunLike
from repro.core.config import SystemConfig
from repro.dram.power import EnergyBreakdown, PowerModel


class Channel:
    """A simulatable channel built from a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig, index: int = 0) -> None:
        self.config = config
        self.index = index
        self.engine = ChannelEngine(
            device=config.device,
            freq_mhz=config.freq_mhz,
            multiplexing=config.multiplexing,
            page_policy=config.page_policy,
            power_down=config.power_down,
            interconnect=config.interconnect,
            queue=config.queue,
            check_invariants=config.check_invariants,
        )
        self.power_model = PowerModel(config.device, config.freq_mhz)

    def run(self, runs: Iterable[RunLike]) -> ChannelResult:
        """Simulate an access stream on this channel."""
        return self.engine.run(runs)

    def energy_of(self, result: ChannelResult) -> EnergyBreakdown:
        """DRAM core energy of a previously simulated stream."""
        return self.power_model.energy(result.counters, result.states)

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Raw bandwidth of this single channel."""
        return self.config.device.peak_bandwidth_bytes_per_s(self.config.freq_mhz)
