"""One memory channel: controller + DRAM interconnect + bank cluster.

Section III: *"A memory controller, DRAM interconnect, and bank
cluster form an entity called channel model.  The delay and power
consumption figures in the simulations are attained from the channel
model."*  This class is that entity: it owns a channel simulator
(built by the configured :class:`~repro.backends.base.ChannelBackend`)
and the matching power model and evaluates both over an access stream.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.backends.base import ChannelSimulator
from repro.backends.registry import get_backend
from repro.controller.engine import ChannelResult, RunLike
from repro.core.config import SystemConfig
from repro.dram.power import EnergyBreakdown, PowerModel


class Channel:
    """A simulatable channel built from a :class:`SystemConfig`.

    The timing side is whatever ``config.backend`` selects -- the
    event-driven reference engine by default; the power model is
    backend-independent (it integrates the counters and state
    residencies every backend reports).
    """

    def __init__(self, config: SystemConfig, index: int = 0) -> None:
        self.config = config
        self.index = index
        self.backend = get_backend(config.backend)
        self.simulator: ChannelSimulator = self.backend.create(config, index)
        self.power_model = PowerModel(config.device, config.freq_mhz)

    @property
    def engine(self) -> ChannelSimulator:
        """The channel's simulator (historical name).

        Under the ``reference`` and ``fast`` backends this is a
        :class:`~repro.controller.engine.ChannelEngine` (or subclass)
        with the full engine surface (``make_checker``,
        ``check_invariants``, ...); other backends only guarantee the
        :class:`~repro.backends.base.ChannelSimulator` contract.
        """
        return self.simulator

    def run(
        self,
        runs: Iterable[RunLike],
        command_log: Optional[list] = None,
    ) -> ChannelResult:
        """Simulate an access stream on this channel."""
        if command_log is not None:
            return self.simulator.run(runs, command_log=command_log)
        return self.simulator.run(runs)

    def energy_of(self, result: ChannelResult) -> EnergyBreakdown:
        """DRAM core energy of a previously simulated stream."""
        return self.power_model.energy(result.counters, result.states)

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Raw bandwidth of this single channel."""
        return self.config.device.peak_bandwidth_bytes_per_s(self.config.freq_mhz)
