"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.controller.engine import ChannelResult
from repro.dram.commands import CommandCounters, StateDurations
from repro.errors import ConfigurationError
from repro.units import ns_to_ms


@dataclass
class SimulationResult:
    """Outcome of running a traffic sample through the memory system.

    ``scale`` records the fraction of the full workload that was
    actually simulated (see :mod:`repro.load.scaling`); the
    ``*_full`` accessors rescale to the full workload, which is valid
    because the use-case traffic is statistically uniform over a frame
    (the paper calls it "very regular and foreseeable memory access
    behaviour").
    """

    #: Per-channel outcomes, indexed by channel id.
    channels: List[ChannelResult]
    #: Interface clock used, MHz.
    freq_mhz: float
    #: Fraction of the full workload simulated (0 < scale <= 1).
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.channels:
            raise ConfigurationError("a simulation result needs >= 1 channel")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")

    # -- raw (simulated-sample) metrics -------------------------------------

    @property
    def sample_access_time_ns(self) -> float:
        """Completion time of the simulated sample: the latest channel."""
        return max(ch.finish_ns for ch in self.channels)

    @property
    def sample_bytes(self) -> int:
        """Bytes actually moved in the simulated sample."""
        return sum(ch.bytes_moved for ch in self.channels)

    # -- full-workload metrics ----------------------------------------------

    @property
    def access_time_ns(self) -> float:
        """Estimated access time of the *full* workload, ns."""
        return self.sample_access_time_ns / self.scale

    @property
    def access_time_ms(self) -> float:
        """Estimated full-workload access time in ms (Fig. 3/4's unit)."""
        return ns_to_ms(self.access_time_ns)

    @property
    def total_bytes(self) -> float:
        """Estimated bytes moved by the full workload."""
        return self.sample_bytes / self.scale

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Achieved aggregate bandwidth while the transfer was active."""
        t_ns = self.sample_access_time_ns
        if t_ns <= 0:
            return 0.0
        return self.sample_bytes / (t_ns * 1e-9)

    @property
    def bus_efficiency(self) -> float:
        """Aggregate data-bus efficiency across channels.

        The elapsed window is the *slowest* channel's finish cycle --
        the same convention as the access-time metric -- so the
        denominator is ``finish_cycle(slowest) * channels`` total
        channel-cycles, and faster channels' tail idle counts against
        the aggregate.  An empty run (``finish <= 0``) moved no data
        and reports 0.0; an idle system is not a perfectly efficient
        one.
        """
        finish = max(ch.finish_cycle for ch in self.channels)
        if finish <= 0:
            return 0.0
        data = sum(ch.data_cycles for ch in self.channels)
        return data / (finish * len(self.channels))

    # -- aggregates -----------------------------------------------------------

    def merged_counters(self) -> CommandCounters:
        """Command counters summed over channels (simulated sample)."""
        total = CommandCounters()
        for ch in self.channels:
            total = total.merged_with(ch.counters)
        return total

    def merged_states(self) -> StateDurations:
        """State residencies summed over channels (simulated sample)."""
        total = StateDurations()
        for ch in self.channels:
            total = total.merged_with(ch.states)
        return total

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate over all channels."""
        return self.merged_counters().row_hit_rate()

    # -- engine statistics (telemetry taps) -----------------------------------

    @property
    def row_hits(self) -> int:
        """Column accesses that hit an open row, over all channels."""
        return sum(ch.row_hits for ch in self.channels)

    @property
    def row_misses(self) -> int:
        """Column accesses that required an ACTIVATE, over all channels."""
        return sum(ch.row_misses for ch in self.channels)

    @property
    def bank_conflicts(self) -> int:
        """Row misses that had to close another open row first."""
        return sum(ch.bank_conflicts for ch in self.channels)

    @property
    def queue_stalls(self) -> int:
        """Accesses delayed by the command-queue depth bound."""
        return sum(ch.queue_stalls for ch in self.channels)

    @property
    def power_state_transitions(self) -> int:
        """CKE transitions (power-down entries + exits), all channels."""
        return sum(ch.power_state_transitions for ch in self.channels)

    def engine_stats(self) -> Dict[str, int]:
        """The telemetry-facing engine statistics as one flat dict.

        These are the ``engine.*`` metrics the telemetry registry
        exports (see docs/architecture.md, Observability).
        """
        merged = self.merged_counters()
        return {
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "bank_conflicts": self.bank_conflicts,
            "queue_stalls": self.queue_stalls,
            "power_state_transitions": self.power_state_transitions,
            "refreshes": merged.refreshes,
            "activates": merged.activates,
            "precharges": merged.precharges,
            "reads": merged.reads,
            "writes": merged.writes,
        }

    def describe(self) -> str:
        """Compact human-readable summary line."""
        return (
            f"{len(self.channels)}ch @ {self.freq_mhz:g} MHz: "
            f"access {self.access_time_ms:.2f} ms, "
            f"eff {self.bus_efficiency * 100:.1f} %, "
            f"row-hit {self.row_hit_rate * 100:.1f} %"
        )
