"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.controller.engine import ChannelResult
from repro.dram.commands import CommandCounters, StateDurations
from repro.errors import ConfigurationError
from repro.units import ns_to_ms


@dataclass
class SimulationResult:
    """Outcome of running a traffic sample through the memory system.

    ``scale`` records the fraction of the full workload that was
    actually simulated (see :mod:`repro.load.scaling`); the
    ``*_full`` accessors rescale to the full workload, which is valid
    because the use-case traffic is statistically uniform over a frame
    (the paper calls it "very regular and foreseeable memory access
    behaviour").
    """

    #: Per-channel outcomes, indexed by channel id.
    channels: List[ChannelResult]
    #: Interface clock used, MHz.
    freq_mhz: float
    #: Fraction of the full workload simulated (0 < scale <= 1).
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.channels:
            raise ConfigurationError("a simulation result needs >= 1 channel")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")

    # -- raw (simulated-sample) metrics -------------------------------------

    @property
    def sample_access_time_ns(self) -> float:
        """Completion time of the simulated sample: the latest channel."""
        return max(ch.finish_ns for ch in self.channels)

    @property
    def sample_bytes(self) -> int:
        """Bytes actually moved in the simulated sample."""
        return sum(ch.bytes_moved for ch in self.channels)

    # -- full-workload metrics ----------------------------------------------

    @property
    def access_time_ns(self) -> float:
        """Estimated access time of the *full* workload, ns."""
        return self.sample_access_time_ns / self.scale

    @property
    def access_time_ms(self) -> float:
        """Estimated full-workload access time in ms (Fig. 3/4's unit)."""
        return ns_to_ms(self.access_time_ns)

    @property
    def total_bytes(self) -> float:
        """Estimated bytes moved by the full workload."""
        return self.sample_bytes / self.scale

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Achieved aggregate bandwidth while the transfer was active."""
        t_ns = self.sample_access_time_ns
        if t_ns <= 0:
            return 0.0
        return self.sample_bytes / (t_ns * 1e-9)

    @property
    def bus_efficiency(self) -> float:
        """Aggregate data-bus efficiency across channels.

        Weighted by elapsed time of the slowest channel: the fraction
        of total channel-cycles that carried data.
        """
        finish = max(ch.finish_cycle for ch in self.channels)
        if finish <= 0:
            return 1.0
        data = sum(ch.data_cycles for ch in self.channels)
        return data / (finish * len(self.channels))

    # -- aggregates -----------------------------------------------------------

    def merged_counters(self) -> CommandCounters:
        """Command counters summed over channels (simulated sample)."""
        total = CommandCounters()
        for ch in self.channels:
            total = total.merged_with(ch.counters)
        return total

    def merged_states(self) -> StateDurations:
        """State residencies summed over channels (simulated sample)."""
        total = StateDurations()
        for ch in self.channels:
            total = total.merged_with(ch.states)
        return total

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate over all channels."""
        return self.merged_counters().row_hit_rate()

    def describe(self) -> str:
        """Compact human-readable summary line."""
        return (
            f"{len(self.channels)}ch @ {self.freq_mhz:g} MHz: "
            f"access {self.access_time_ms:.2f} ms, "
            f"eff {self.bus_efficiency * 100:.1f} %, "
            f"row-hit {self.row_hit_rate * 100:.1f} %"
        )
