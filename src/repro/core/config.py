"""System-level configuration of the multi-channel memory subsystem."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.backends.registry import default_backend_name, validate_backend_name
from repro.controller.interconnect import InterconnectModel
from repro.controller.mapping import AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.queue import CommandQueueModel
from repro.dram.datasheet import DeviceDescriptor, NEXT_GEN_MOBILE_DDR
from repro.dram.powerstate import ImmediatePowerDown, PowerDownPolicy
from repro.errors import ConfigurationError

#: Channel counts the paper evaluates (Figs. 3-5).
PAPER_CHANNEL_COUNTS = (1, 2, 4, 8)

#: DDR2-derived interface clocks the paper sweeps in Fig. 3, MHz.
PAPER_FREQUENCIES_MHZ = (200.0, 266.0, 333.0, 400.0, 466.0, 533.0)


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of one multi-channel memory subsystem.

    The defaults reproduce the paper's evaluated design point apart
    from the channel count and clock, which every experiment sweeps:
    next-generation mobile DDR bank clusters, RBC multiplexing, open
    page policy, and power-down after the first idle cycle.
    """

    #: Number of parallel channels (the paper evaluates 1, 2, 4, 8).
    channels: int = 1
    #: Interface clock frequency, MHz (the paper sweeps 200-533).
    freq_mhz: float = 400.0
    #: The DRAM device in each channel's bank cluster.
    device: DeviceDescriptor = field(default_factory=lambda: NEXT_GEN_MOBILE_DDR)
    #: Address multiplexing type (Section IV: RBC performs best).
    multiplexing: AddressMultiplexing = AddressMultiplexing.RBC
    #: Row-buffer policy (Section IV: open page everywhere).
    page_policy: PagePolicy = PagePolicy.OPEN
    #: Idle-gap power-down policy (Section III: immediate).
    power_down: PowerDownPolicy = field(default_factory=ImmediatePowerDown)
    #: DRAM interconnect overhead model.
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    #: Controller command-queue model.
    queue: CommandQueueModel = field(default_factory=CommandQueueModel)
    #: Worker processes :meth:`~repro.core.system.MultiChannelMemorySystem.run`
    #: may use to simulate channels concurrently.  1 (default) runs
    #: everything in-process; 0 means one worker per available CPU; N
    #: caps the pool at N processes.  Results are bit-identical either
    #: way -- see :mod:`repro.parallel` and docs/architecture.md.
    parallelism: int = 1
    #: Simulation backend evaluating each channel's access stream:
    #: ``"reference"`` (event-driven engine, exact), ``"fast"``
    #: (run-length batching, bit-identical to reference and several
    #: times faster on streaming traffic) or ``"analytic"``
    #: (closed-form, O(runs), screening fidelity) -- plus any backend
    #: registered via :func:`repro.backends.register_backend`.  The
    #: default is the process-wide default backend (``reference``
    #: unless overridden with
    #: :func:`repro.backends.set_default_backend`).
    backend: str = field(default_factory=default_backend_name)
    #: Audit every engine run's command stream against the datasheet
    #: timing constraints, raising :class:`~repro.errors.ProtocolError`
    #: on any violation.  Roughly doubles per-burst simulation cost;
    #: intended for validation runs, not large sweeps.
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.channels < 1 or self.channels > 64:
            raise ConfigurationError(
                f"channel count must be in [1, 64], got {self.channels}"
            )
        if self.channels & (self.channels - 1):
            raise ConfigurationError(
                "channel count must be a power of two for the Table II "
                f"interleaving, got {self.channels}"
            )
        if self.parallelism < 0 or self.parallelism > 256:
            raise ConfigurationError(
                f"parallelism must be in [0, 256] (0 = one worker per "
                f"CPU), got {self.parallelism}"
            )
        validate_backend_name(self.backend)
        self.device.timing.validate_frequency(self.freq_mhz)

    # -- derived quantities -------------------------------------------------

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Raw aggregate bandwidth: channels x 2 x word bytes x clock.

        25.6 GB/s for eight 32-bit channels at 400 MHz, the number the
        paper compares against the XDR interface's 25.6 GB/s.
        """
        return self.channels * self.device.peak_bandwidth_bytes_per_s(self.freq_mhz)

    @property
    def total_capacity_bytes(self) -> int:
        """Total memory capacity across channels."""
        return self.channels * self.device.geometry.capacity_bytes

    def with_channels(self, channels: int) -> "SystemConfig":
        """Return a copy with a different channel count."""
        return replace(self, channels=channels)

    def with_frequency(self, freq_mhz: float) -> "SystemConfig":
        """Return a copy with a different interface clock."""
        return replace(self, freq_mhz=freq_mhz)

    def with_parallelism(self, parallelism: int) -> "SystemConfig":
        """Return a copy with a different simulation worker count."""
        return replace(self, parallelism=parallelism)

    def with_backend(self, backend: str) -> "SystemConfig":
        """Return a copy selecting a different simulation backend."""
        return replace(self, backend=backend)

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return (
            f"{self.channels}ch x {self.device.name} @ {self.freq_mhz:g} MHz, "
            f"{self.multiplexing}, {self.page_policy}-page, "
            f"power-down={self.power_down.name}, backend={self.backend}"
        )
