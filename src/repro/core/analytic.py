"""Closed-form cross-check model.

The event-driven engine is the reference; this module predicts its
results analytically so tests can catch regressions in either.  For
the paper's sequential traffic the per-channel time decomposes into:

- **data cycles**: bursts x BL/2,
- **interconnect exposure**: bursts x the average address-phase cost,
- **read/write turnaround**: each direction switch exposes roughly the
  write-to-read gap plus the read latency refill on one side and the
  bus-turnaround bubble on the other,
- **row misses**: each precharge+activate pair costs tRP+tRCD minus
  whatever the command queue hides behind in-flight data,
- **refresh**: a multiplicative tRFC/tREFI duty loss.

The workload statistics (bytes, switches, row misses per channel) come
from the load model's traffic summary; agreement with the simulator is
asserted to within a tolerance by ``tests/core/test_analytic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.controller.request import CHUNK_BYTES
from repro.core.config import SystemConfig
from repro.dram.power import PowerModel
from repro.errors import ConfigurationError
from repro.units import clock_period_ns


@dataclass(frozen=True)
class AnalyticEstimate:
    """Predicted behaviour of one configuration on one workload."""

    #: Predicted access time for the full workload, ns.
    access_time_ns: float
    #: Predicted per-channel data-bus efficiency (0..1).
    bus_efficiency: float
    #: Predicted effective aggregate bandwidth, bytes/s.
    effective_bandwidth_bytes_per_s: float
    #: Predicted average power while streaming, W (all channels).
    streaming_power_w: float

    @property
    def access_time_ms(self) -> float:
        """Access time in milliseconds."""
        return self.access_time_ns / 1e6


def direction_switch_cost_cycles(timing) -> float:
    """Average cycles one read/write direction switch exposes.

    The write->read side exposes tWTR plus the read-latency refill
    beyond the write latency; the read->write side exposes the
    configured bus-turnaround gap.  Switches alternate, so this is the
    per-switch average.  Shared by :meth:`AnalyticModel.estimate` and
    the ``analytic`` backend so the cost algebra exists exactly once.
    """
    wr_cost = timing.t_wtr + max(0, timing.cas_latency - timing.write_latency)
    return (wr_cost + timing.t_rtw_gap) / 2.0


def row_miss_cost_cycles(timing, queue_depth: int) -> float:
    """Exposed cycles per row miss after command-queue hiding.

    A precharge+activate pair costs tRP+tRCD, but the command queue
    lets it issue while up to ``depth - 1`` earlier bursts still drain
    on the data bus; only the remainder is exposed.
    """
    hidden = (queue_depth - 1) * timing.burst_cycles
    return max(0, timing.t_rp + timing.t_rcd - hidden)


def refresh_inflation(timing) -> float:
    """Multiplicative busy-time inflation from the tRFC/tREFI duty loss."""
    return 1.0 / (1.0 - timing.t_rfc / timing.t_refi)


class AnalyticModel:
    """Closed-form predictor for a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.timing = config.device.timing.at_frequency(config.freq_mhz)
        self.power = PowerModel(config.device, config.freq_mhz)

    def estimate(
        self,
        total_bytes: float,
        rw_switches: int = 0,
        row_misses_per_channel: Optional[float] = None,
        read_fraction: float = 0.5,
    ) -> AnalyticEstimate:
        """Predict access time and power for a sequential workload.

        Parameters
        ----------
        total_bytes:
            Bytes moved across all channels.
        rw_switches:
            Read/write direction switches in the master stream (each
            hits every channel).
        row_misses_per_channel:
            Override for the expected activates per channel; when
            omitted, estimated from sequential locality (one miss per
            row's worth of local data).
        read_fraction:
            Read share of the traffic, for the power estimate.
        """
        if total_bytes <= 0:
            raise ConfigurationError(f"total_bytes must be positive: {total_bytes}")
        cfg = self.config
        t = self.timing
        m = cfg.channels
        bytes_per_channel = total_bytes / m
        accesses = bytes_per_channel / CHUNK_BYTES

        data_cycles = accesses * t.burst_cycles
        ic_cycles = accesses * cfg.interconnect.address_cycles_per_access

        switch_cycles = rw_switches * direction_switch_cost_cycles(t)

        if row_misses_per_channel is None:
            row_bytes = cfg.device.geometry.row_bytes
            row_misses_per_channel = bytes_per_channel / row_bytes
        miss_cycles = row_misses_per_channel * row_miss_cost_cycles(
            t, cfg.queue.depth
        )

        busy = data_cycles + ic_cycles + switch_cycles + miss_cycles
        total_cycles = busy * refresh_inflation(t)

        tck = clock_period_ns(cfg.freq_mhz)
        access_ns = total_cycles * tck
        efficiency = data_cycles / total_cycles if total_cycles > 0 else 1.0
        bandwidth = total_bytes / (access_ns * 1e-9)
        streaming_power = m * self.power.streaming_power_w(read_fraction) * efficiency
        return AnalyticEstimate(
            access_time_ns=access_ns,
            bus_efficiency=efficiency,
            effective_bandwidth_bytes_per_s=bandwidth,
            streaming_power_w=streaming_power,
        )
