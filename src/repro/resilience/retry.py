"""Retry policy for transient worker-pool failures.

The parallel layer distinguishes two failure classes (see
:func:`repro.parallel.parallel_map`):

- **transient pool failures** -- a worker process was killed (OOM
  killer, ``os._exit``, a crashed interpreter), the pool could not
  start, or the pool machinery itself raised.  The *jobs* are fine;
  re-executing them on a fresh pool is expected to succeed.  These are
  retried under a :class:`RetryPolicy` and, once the attempt budget is
  exhausted, completed in-process.
- **deterministic job failures** -- the mapped function raised.  Pure
  functions fail the same way every time, so retrying is waste; these
  are never retried and are instead propagated or captured as
  structured :class:`~repro.resilience.report.JobFailure` records.

Delays are **jitterless and deterministic**: attempt *k* waits exactly
``initial_delay_s * multiplier ** (k - 1)`` seconds.  Randomised jitter
exists to de-correlate many clients hammering one shared service; a
local process pool has no such contention, and deterministic delays
keep test runs and failure logs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule for transient pool failures.

    ``max_attempts`` counts *pool* attempts: 3 means the initial try
    plus two retries before the work falls back in-process.

    Under watchdog supervision
    (:mod:`repro.resilience.supervisor`) the same ``max_attempts``
    doubles as the default *per-job* strike budget: a job that hangs
    past its deadline (or takes its worker down) that many times is
    quarantined instead of requeued, unless the
    :class:`~repro.resilience.supervisor.Watchdog` overrides the
    budget with ``max_strikes``.
    """

    max_attempts: int = 3
    initial_delay_s: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.initial_delay_s < 0:
            raise ConfigurationError(
                f"initial_delay_s must be >= 0, got {self.initial_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay_s(self, failed_attempts: int) -> float:
        """Backoff before the next attempt, after ``failed_attempts``
        (>= 1) attempts have failed."""
        if failed_attempts < 1:
            raise ConfigurationError(
                f"failed_attempts must be >= 1, got {failed_attempts}"
            )
        return self.initial_delay_s * self.multiplier ** (failed_attempts - 1)

    def delays(self) -> Tuple[float, ...]:
        """The full deterministic delay schedule (one entry per retry)."""
        return tuple(
            self.delay_s(attempt) for attempt in range(1, self.max_attempts)
        )


#: Default schedule: initial try + two pool retries at 50 ms and 100 ms.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Retry disabled: one pool attempt, then the in-process fallback.
NO_RETRY = RetryPolicy(max_attempts=1)
