"""Structured failure records and the graceful-degradation sweep report.

A hundred-point sweep should not discard ninety-nine good results
because one point crashed.  :class:`JobFailure` captures everything a
post-mortem needs about one failed job -- exception type, message, the
worker-side traceback rendered to a string, and (for sweeps) the sweep
coordinates of the point -- and :class:`SweepReport` carries the
successful points *and* the failures side by side.

``SweepReport`` is a :class:`~collections.abc.Sequence` over the
successful points, so every existing caller that iterates, indexes or
``len()``s a sweep result keeps working unchanged; the failure records
ride along in :attr:`SweepReport.failures`.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

#: The mapped function raised -- the classic deterministic failure.
FAILURE_KIND_ERROR = "error"
#: The job hung past its watchdog deadline on every permitted attempt.
FAILURE_KIND_TIMEOUT = "timeout"
#: The job exhausted its transient-failure budget (e.g. the worker
#: running it died on every attempt) and was written off.
FAILURE_KIND_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class JobFailure:
    """One job that failed deterministically (the mapped function raised).

    ``coords`` is empty for plain :func:`~repro.parallel.parallel_map`
    jobs; the sweep runners fill it with the point's sweep coordinates
    (level name, channel count, clock, ...).

    ``kind`` distinguishes how the job was written off:
    :data:`FAILURE_KIND_ERROR` (the function raised),
    :data:`FAILURE_KIND_TIMEOUT` (hung past its deadline until
    quarantined) and :data:`FAILURE_KIND_QUARANTINED` (repeatedly took
    its worker down until quarantined).  Timeout/quarantine records are
    persisted into sweep checkpoints so a ``--resume`` does not re-hang
    on the same point.
    """

    #: Position of the job in the submitted sequence.
    index: int
    #: ``repr`` of the job item, truncated for report hygiene.
    item: str
    #: Exception class name (the class itself may not import cleanly
    #: in the parent process).
    error_type: str
    #: ``str(exception)``.
    message: str
    #: Full traceback rendered to a string.  For pooled jobs this
    #: includes the worker-side remote traceback.
    traceback: str
    #: Sweep coordinates of the failed point, when known.
    coords: Mapping[str, Any] = field(default_factory=dict)
    #: Failure class: one of :data:`FAILURE_KIND_ERROR`,
    #: :data:`FAILURE_KIND_TIMEOUT`, :data:`FAILURE_KIND_QUARANTINED`.
    kind: str = FAILURE_KIND_ERROR

    @property
    def quarantined(self) -> bool:
        """Whether this job was written off by the supervisor (and must
        not be re-attempted on resume)."""
        return self.kind != FAILURE_KIND_ERROR

    @classmethod
    def from_quarantine(
        cls,
        index: int,
        item: Any,
        kind: str,
        message: str,
        error_type: str = "JobTimeoutError",
    ) -> "JobFailure":
        """Build a quarantine record for a job the supervisor wrote off.

        There is no worker-side traceback: the worker was either killed
        by the watchdog mid-hang or died before it could report.
        """
        item_repr = repr(item)
        if len(item_repr) > 200:
            item_repr = item_repr[:197] + "..."
        return cls(
            index=index,
            item=item_repr,
            error_type=error_type,
            message=message,
            traceback="",
            kind=kind,
        )

    @classmethod
    def from_exception(
        cls, index: int, item: Any, exc: BaseException
    ) -> "JobFailure":
        """Build a failure record from a raised exception."""
        rendered = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        item_repr = repr(item)
        if len(item_repr) > 200:
            item_repr = item_repr[:197] + "..."
        return cls(
            index=index,
            item=item_repr,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=rendered,
        )

    def with_coords(self, coords: Mapping[str, Any]) -> "JobFailure":
        """Copy with sweep coordinates attached."""
        return replace(self, coords=dict(coords))

    def describe(self) -> str:
        """One-line human-readable summary."""
        where = (
            ", ".join(f"{k}={v}" for k, v in self.coords.items())
            if self.coords
            else f"job {self.index}"
        )
        tag = "" if self.kind == FAILURE_KIND_ERROR else f" ({self.kind})"
        return f"[{where}]{tag} {self.error_type}: {self.message}"


class SweepReport(Sequence):
    """Outcome of a sweep under graceful degradation.

    Sequence semantics cover the *successful* points in sweep order,
    which is exactly what the pre-resilience ``List[SweepPoint]``
    return value exposed; the per-point failure records are available
    through :attr:`failures`.
    """

    def __init__(
        self,
        points: Sequence[Any],
        failures: Sequence[JobFailure] = (),
        total: Optional[int] = None,
        resumed: int = 0,
        cached: int = 0,
    ) -> None:
        self.points: List[Any] = list(points)
        self.failures: List[JobFailure] = list(failures)
        #: Number of points the sweep was asked for.
        self.total: int = (
            total if total is not None else len(self.points) + len(self.failures)
        )
        #: How many points were restored from a checkpoint rather than
        #: recomputed.
        self.resumed: int = resumed
        #: How many points were served from the content-addressed
        #: result cache (see :mod:`repro.service.cache`) rather than
        #: recomputed.
        self.cached: int = cached

    # -- Sequence over the successful points ---------------------------

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: Union[int, slice]) -> Any:
        return self.points[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepReport({len(self.points)}/{self.total} points, "
            f"{len(self.failures)} failure(s), {self.resumed} resumed)"
        )

    # -- outcome accessors ---------------------------------------------

    @property
    def ok(self) -> bool:
        """True when every requested point completed."""
        return not self.failures and len(self.points) == self.total

    def summary(self) -> str:
        """One-line completion summary for logs and reports."""
        parts = [f"{len(self.points)}/{self.total} points completed"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed from checkpoint")
        if self.cached:
            parts.append(f"{self.cached} served from cache")
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        return ", ".join(parts)

    def format_failures(self) -> str:
        """Human-readable failure list (empty string when clean)."""
        return "\n".join(f.describe() for f in self.failures)
