"""Watchdog-supervised pooled execution: deadlines, hang detection,
quarantine.

The retry machinery in :mod:`repro.parallel` recovers from workers
that *die* -- the pool reports the death and the unfinished jobs are
requeued.  A worker that *hangs* reports nothing: before this module,
one livelocked simulation stalled an entire sweep forever.  The
supervisor closes that gap with three mechanisms:

**Deadlines.**  Every supervised job carries a wall-clock deadline
(``timeout_s`` on :func:`repro.parallel.parallel_map`,
``point_timeout`` on :func:`repro.analysis.sweep.sweep_use_case`,
``--point-timeout`` on the sweeping CLI subcommands), configured
through a :class:`Watchdog`.

**Hang detection and kill.**  Supervised jobs extend the sweep's
heartbeat plumbing down into the workers: each job announces its start
(pid + monotonic timestamp) through a per-job beat file the moment it
begins executing.  A parent-side monitor thread polls the beats; a job
still unfinished past its deadline gets its worker ``SIGKILL``\\ ed.
The kill surfaces to the parent as the familiar broken-pool transient
failure, so the existing requeue path rebuilds the pool and re-runs
every unfinished job -- except that the supervisor knows *which* job
hung and charges the strike to it alone.

**Quarantine.**  A job that exhausts its per-job strike budget
(``Watchdog.max_strikes``, defaulting to the
:class:`~repro.resilience.retry.RetryPolicy` attempt budget) -- by
hanging repeatedly, or by repeatedly taking its worker down -- is
written off as a quarantined
:class:`~repro.resilience.report.JobFailure`
(:data:`~repro.resilience.report.FAILURE_KIND_TIMEOUT` or
:data:`~repro.resilience.report.FAILURE_KIND_QUARANTINED`) instead of
being retried forever.  Quarantine folds into the existing
ERR-cell/``strict=`` sweep semantics, and the sweep runner records it
into the checkpoint so a ``--resume`` does not re-hang on the same
point.

The beat files double as a suspect list for genuine pool deaths: when
the pool breaks *without* a watchdog kill, only the jobs that had
started and not finished are charged a strike, so a job that crashes
its worker every time it runs is quarantined before the in-process
fallback would have run it in (and taken down) the parent.

Clock note: beat timestamps are ``time.monotonic()`` values compared
across processes, which is sound on the platforms that can run worker
pools at all -- CLOCK_MONOTONIC is system-wide, not per-process.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from typing import Callable, Dict, Optional, Set, TypeVar, Union

from repro.errors import ConfigurationError, JobTimeoutError
from repro.resilience.report import (
    FAILURE_KIND_QUARANTINED,
    FAILURE_KIND_TIMEOUT,
    JobFailure,
)
from repro.resilience.retry import RetryPolicy

T = TypeVar("T")
R = TypeVar("R")

#: Default monitor poll cadence; per-watchdog it is additionally
#: capped at a quarter of the deadline so short deadlines stay sharp.
DEFAULT_POLL_INTERVAL_S = 0.05

#: Signal used to remove a hung worker (SIGTERM where SIGKILL does not
#: exist -- a hung worker may mask SIGTERM, but such platforms cannot
#: do better).
_KILL_SIGNAL = getattr(signal, "SIGKILL", signal.SIGTERM)


class CallbackError(Exception):
    """Internal wrapper for an exception raised by a *caller* callback
    (``on_result``/``on_failure``).

    The wrapping exists purely so the retry machinery cannot mistake a
    failing callback (say, a checkpoint append hitting a full disk,
    which raises :class:`OSError` -- also a pool-failure type) for a
    transient pool failure and re-run jobs whose results were already
    delivered.  :func:`repro.parallel.parallel_map` unwraps it and
    re-raises the original at the boundary; user code never sees this
    type.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


def deliver(
    callback: Optional[Callable[[int, T], None]], index: int, value: T
) -> None:
    """Invoke a caller callback, wrapping any exception it raises.

    See :class:`CallbackError`: the wrapper is opaque to every
    ``except`` clause of the execution layer and is unwrapped only at
    the ``parallel_map`` boundary, so a raising callback is a *caller*
    error -- never retried, never captured as a job failure.
    """
    if callback is None:
        return
    try:
        callback(index, value)
    except Exception as exc:
        raise CallbackError(exc) from exc


class Watchdog:
    """Deadline policy plus run statistics for one supervised map.

    ``timeout_s`` is the per-job wall-clock deadline, measured from the
    moment the job starts executing in a worker (queue time does not
    count).  ``max_strikes`` is the per-job budget of deadline expiries
    or worker deaths before quarantine; ``None`` adopts the
    ``RetryPolicy.max_attempts`` of the run.  ``poll_interval_s``
    overrides the monitor cadence.

    The instance also accumulates the run's supervision statistics
    (parent-side only; it never crosses the process boundary):
    ``kills`` worker processes killed, ``timeouts`` deadline expiries
    observed, ``quarantined`` jobs written off.
    """

    def __init__(
        self,
        timeout_s: float,
        max_strikes: Optional[int] = None,
        poll_interval_s: Optional[float] = None,
    ) -> None:
        if not timeout_s > 0:
            raise ConfigurationError(
                f"watchdog timeout_s must be > 0, got {timeout_s!r}"
            )
        if max_strikes is not None and max_strikes < 1:
            raise ConfigurationError(
                f"watchdog max_strikes must be >= 1, got {max_strikes}"
            )
        if poll_interval_s is not None and not poll_interval_s > 0:
            raise ConfigurationError(
                f"watchdog poll_interval_s must be > 0, got {poll_interval_s!r}"
            )
        self.timeout_s = float(timeout_s)
        self.max_strikes = max_strikes
        self.poll_interval_s = (
            float(poll_interval_s)
            if poll_interval_s is not None
            else min(DEFAULT_POLL_INTERVAL_S, self.timeout_s / 4.0)
        )
        self.kills = 0
        self.timeouts = 0
        self.quarantined = 0

    def strike_budget(self, retry: RetryPolicy) -> int:
        """Per-job strikes before quarantine under ``retry``."""
        return self.max_strikes if self.max_strikes is not None else retry.max_attempts


def _beat_path(beat_dir: str, round_tag: str, index: int) -> str:
    return os.path.join(beat_dir, f"{round_tag}-{index}.beat")


def _watched_call(fn, job, index, beat_dir, round_tag):
    """Worker-side wrapper: announce the job start, then run it.

    Module-level so it pickles by reference.  The beat file carries
    ``"<pid> <monotonic-start>"``; a lost beat (unwritable directory)
    only degrades supervision for this job -- the job itself still
    runs.
    """
    try:
        with open(_beat_path(beat_dir, round_tag, index), "w") as handle:
            handle.write(f"{os.getpid()} {time.monotonic()}")
    except OSError:  # pragma: no cover - depends on filesystem state
        pass
    return fn(job)


def _read_beat(beat_dir, round_tag, index):
    """``(pid, started)`` from a beat file, or ``None``.

    ``None`` also covers the in-flight torn read (the worker is midway
    through writing the beat); the next poll sees the full line.
    """
    try:
        with open(_beat_path(beat_dir, round_tag, index), "r") as handle:
            pid_s, started_s = handle.read().split()
        return int(pid_s), float(started_s)
    except (OSError, ValueError):
        return None


class _Monitor(threading.Thread):
    """Parent-side watchdog thread for one pool round.

    Polls the round's beat files; any job started longer than the
    deadline ago whose future is still unresolved gets its worker
    killed.  Kills are recorded in :attr:`killed` so the round's
    broken-pool handler can tell a watchdog kill from a genuine worker
    death and charge the strike to the hung job alone.
    """

    def __init__(
        self,
        beat_dir: str,
        round_tag: str,
        futures_by_index: Dict[int, Future],
        watchdog: Watchdog,
    ) -> None:
        super().__init__(name="repro-watchdog", daemon=True)
        self._beat_dir = beat_dir
        self._round_tag = round_tag
        self._futures = futures_by_index
        self._watchdog = watchdog
        self._halt = threading.Event()
        self.killed: Set[int] = set()

    def run(self) -> None:
        while not self._halt.wait(self._watchdog.poll_interval_s):
            now = time.monotonic()
            for index, future in list(self._futures.items()):
                if index in self.killed or future.done():
                    continue
                beat = _read_beat(self._beat_dir, self._round_tag, index)
                if beat is None:
                    continue  # not started yet: queue time is free
                pid, started = beat
                if now - started < self._watchdog.timeout_s:
                    continue
                # Mark first: even if the process is already gone the
                # deadline expired and the job must be charged.
                self.killed.add(index)
                self._watchdog.kills += 1
                try:
                    os.kill(pid, _KILL_SIGNAL)
                except (ProcessLookupError, PermissionError):
                    pass

    def stop(self) -> None:
        self._halt.set()
        if self.is_alive():
            self.join()


def supervised_map(
    fn: Callable[[T], R],
    jobs,
    effective: int,
    retry: RetryPolicy,
    capture_failures: bool,
    on_result: Optional[Callable[[int, R], None]],
    on_failure: Optional[Callable[[int, JobFailure], None]],
    watchdog: Watchdog,
) -> Dict[int, Union[R, JobFailure]]:
    """Deadline-supervised variant of the pooled map.

    Same contract as ``repro.parallel._pooled_map`` plus supervision:
    jobs that hang past ``watchdog.timeout_s`` are killed and requeued,
    and any job exhausting its per-job strike budget (hangs or worker
    deaths) is quarantined -- captured as a
    :class:`~repro.resilience.report.JobFailure` when
    ``capture_failures`` is on, raised as
    :class:`~repro.errors.JobTimeoutError` otherwise.

    Pool-level failures that implicate no particular job still consume
    the global ``retry`` budget and end in the in-process fallback --
    which cannot preempt a hung function, so the fallback warning says
    deadlines are no longer enforced.
    """
    from repro import parallel as _parallel  # runtime import: no cycle

    results: Dict[int, Union[R, JobFailure]] = {}
    pending: Dict[int, T] = dict(enumerate(jobs))
    strikes: Dict[int, int] = {}
    budget = watchdog.strike_budget(retry)
    pool_failures = 0
    round_no = 0
    beat_dir = tempfile.mkdtemp(prefix="repro-watchdog-")

    def strike(index: int, kind: str, detail: str) -> None:
        """Charge one strike; quarantine on budget exhaustion."""
        strikes[index] = strikes.get(index, 0) + 1
        if strikes[index] < budget:
            return  # requeue: the job stays pending
        job = pending.pop(index)
        watchdog.quarantined += 1
        message = (
            f"{detail} on {strikes[index]} attempt(s) "
            f"(deadline {watchdog.timeout_s:g} s); quarantined"
        )
        if not capture_failures:
            raise JobTimeoutError(f"job {index} ({job!r}) {message}")
        failure = JobFailure.from_quarantine(
            index,
            job,
            kind=kind,
            message=message,
            error_type=(
                "JobTimeoutError" if kind == FAILURE_KIND_TIMEOUT else "WorkerLost"
            ),
        )
        results[index] = failure
        deliver(on_failure, index, failure)

    try:
        while pending:
            round_no += 1
            tag = str(round_no)
            monitor: Optional[_Monitor] = None
            try:
                max_workers = min(effective, len(pending))
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        pool.submit(
                            _watched_call, fn, job, index, beat_dir, tag
                        ): index
                        for index, job in pending.items()
                    }
                    monitor = _Monitor(
                        beat_dir,
                        tag,
                        {index: future for future, index in futures.items()},
                        watchdog,
                    )
                    monitor.start()
                    for future in as_completed(futures):
                        index = futures[future]
                        exc = future.exception()
                        if exc is None:
                            value = future.result()
                            results[index] = value
                            del pending[index]
                            deliver(on_result, index, value)
                        elif isinstance(exc, _parallel._TRANSIENT_FUTURE_ERRORS):
                            raise exc
                        else:
                            job = pending.pop(index)
                            if not capture_failures:
                                raise exc
                            failure = JobFailure.from_exception(index, job, exc)
                            results[index] = failure
                            deliver(on_failure, index, failure)
            except _parallel._POOL_ERRORS as exc:
                killed = (
                    monitor.killed & set(pending) if monitor is not None else set()
                )
                if killed:
                    # A watchdog round: the hung jobs alone are charged;
                    # every other unfinished job requeues for free and
                    # the global pool-failure budget is untouched.
                    for index in sorted(killed):
                        watchdog.timeouts += 1
                        strike(
                            index,
                            FAILURE_KIND_TIMEOUT,
                            "hung past the watchdog deadline",
                        )
                    continue
                # A genuine pool death: charge the started-but-
                # unfinished jobs (the beat files name the suspects) so
                # a job that kills its worker every time is quarantined
                # instead of ever reaching the in-process fallback.
                suspects = sorted(
                    index
                    for index in pending
                    if _read_beat(beat_dir, tag, index) is not None
                )
                for index in suspects:
                    strike(
                        index,
                        FAILURE_KIND_QUARANTINED,
                        f"worker died ({type(exc).__name__})",
                    )
                pool_failures += 1
                if not pending:
                    continue
                if pool_failures >= retry.max_attempts:
                    _parallel._warn_fallback(
                        f"{type(exc).__name__}: {exc} (after {pool_failures} "
                        f"pool attempt(s)); finishing {len(pending)} job(s) "
                        "in-process -- deadlines are NOT enforced in-process"
                    )
                    _parallel._serial_map(
                        fn, pending, results, capture_failures, on_result,
                        on_failure,
                    )
                else:
                    delay = retry.delay_s(pool_failures)
                    if delay > 0:
                        time.sleep(delay)
            finally:
                if monitor is not None:
                    monitor.stop()
    finally:
        shutil.rmtree(beat_dir, ignore_errors=True)
    return results
