"""Controlled fault injection for testing the resilience machinery.

Reliability code that is only exercised by real failures is reliability
code that has never been tested.  This module injects the three failure
classes the resilience subsystem claims to handle:

- **worker crash on the Nth job** (``mode="crash"``): the worker
  process hard-exits, killing its pool -- the transient failure
  :func:`repro.parallel.parallel_map` must retry with backoff;
- **worker hang on the Nth job** (``mode="stall"``): the worker sleeps
  forever at the injection site -- the hang the watchdog supervisor
  (:mod:`repro.resilience.supervisor`) must detect via the job's
  heartbeat, kill, and requeue or quarantine;
- **deterministic job failure** (``mode="raise"``): the job raises
  :class:`~repro.errors.SimulationError` -- the failure a sweep must
  capture as a :class:`~repro.resilience.report.JobFailure` instead of
  aborting;
- **torn checkpoint write** (``mode="torn-write"``): the Nth
  :meth:`~repro.resilience.checkpoint.SweepCheckpoint.record` call
  writes a truncated line and dies (:class:`TornWriteInjected`),
  modelling a process killed mid-append -- a later ``--resume`` must
  skip the torn tail and recompute only that point;
- **corrupted inputs**: :func:`corrupt_timing` skews one timing
  parameter (the invariant checker must flag the resulting illegal
  command stream) and :func:`malformed_runs` damages a request stream
  (the engine must reject it eagerly).

Fault plans cross the process boundary through an environment variable
(:data:`FAULT_PLAN_ENV`), because pool workers share the parent's
environment but not its module state.  One-shot plans (``once=True``,
the default for crashes) arm at most once across *all* processes via an
atomically created marker file -- without it, a deterministic crash
would re-fire on every pool retry and then take down the parent during
the in-process fallback.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace as _replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError

#: Environment variable carrying the serialized fault plan to workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of an injected worker crash (aids post-mortem in CI logs).
CRASH_EXIT_CODE = 113

#: Nap length of an injected stall; the stall is unbounded, the nap
#: just keeps the hung worker from burning a CPU while it waits for
#: the watchdog's SIGKILL.
STALL_NAP_S = 0.05

_FAULT_MODES = ("crash", "raise", "stall", "torn-write")

#: Modes whose one-shot plans need a cross-process marker file: they
#: either kill the process that fired them (crash, stall -- the next
#: attempt runs in a fresh worker that only sees the marker) or must
#: fire exactly once across resumed runs (torn-write).
_MARKER_MODES = ("crash", "stall", "torn-write")


class TornWriteInjected(SimulationError):
    """The injected torn checkpoint write fired.

    Models the process dying mid-append: the checkpoint file is left
    with a truncated final line and the sweep is torn down.  The chaos
    harness treats it as the interruption to resume from.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One armed fault: trigger ``mode`` at (``site``, ``index``).

    ``site`` names the injection point (the sweep runner uses
    ``"sweep"``); ``index`` is the job index to hit.  ``once`` plans
    need a ``marker_path`` in a writable directory; the marker file is
    created atomically by whichever process fires the fault first.
    """

    site: str
    index: int
    mode: str = "raise"
    once: bool = True
    marker_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _FAULT_MODES:
            raise ConfigurationError(
                f"fault mode must be one of {_FAULT_MODES}, got {self.mode!r}"
            )
        if self.index < 0:
            raise ConfigurationError(f"fault index must be >= 0, got {self.index}")
        if self.once and self.mode in _MARKER_MODES and not self.marker_path:
            raise ConfigurationError(
                f"a one-shot {self.mode} plan needs a marker_path"
            )

    def to_json(self) -> str:
        """Serialize for the environment variable."""
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls(**json.loads(payload))


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` for this process and all future worker processes."""
    os.environ[FAULT_PLAN_ENV] = plan.to_json()


def clear() -> None:
    """Disarm any installed fault plan."""
    os.environ.pop(FAULT_PLAN_ENV, None)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: arm ``plan``, disarm on exit."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def _claim_marker(path: str) -> bool:
    """Atomically claim a one-shot marker; True iff we fired first."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _armed_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or ``None`` (one env lookup)."""
    payload = os.environ.get(FAULT_PLAN_ENV)
    if payload is None:
        return None
    try:
        return FaultPlan.from_json(payload)
    except (ValueError, TypeError, ConfigurationError) as exc:
        raise ConfigurationError(
            f"unreadable fault plan in ${FAULT_PLAN_ENV}: {exc}"
        ) from exc


def maybe_inject(site: str, index: int) -> None:
    """Fire the armed fault if it targets (``site``, ``index``).

    Called from instrumented job entry points (for example
    :func:`repro.analysis.sweep._sweep_point_job`).  A single
    environment lookup when no plan is armed, so production sweeps pay
    nothing.  ``torn-write`` plans are inert here -- they target the
    checkpoint writer, which consults :func:`maybe_torn_write`.
    """
    plan = _armed_plan()
    if plan is None or plan.mode == "torn-write":
        return
    if plan.site != site or plan.index != index:
        return
    if plan.once and plan.marker_path and not _claim_marker(plan.marker_path):
        return
    if plan.mode == "crash":
        # A hard exit, not an exception: this models the OOM killer /
        # segfault class of failure the pool reports as
        # BrokenProcessPool.  Flush nothing, run no handlers.
        os._exit(CRASH_EXIT_CODE)
    if plan.mode == "stall":
        # Hang forever (until the watchdog's SIGKILL): this models the
        # livelocked / deadlocked worker class of failure that never
        # reports back and never dies on its own.
        while True:
            time.sleep(STALL_NAP_S)
    raise SimulationError(
        f"injected fault at site {plan.site!r}, job index {plan.index}"
    )


def maybe_torn_write(site: str, index: int) -> bool:
    """Whether the armed ``torn-write`` fault targets this append.

    Consulted by :meth:`repro.resilience.checkpoint.SweepCheckpoint.record`
    with ``index`` counting the record calls of the running process.
    Returns ``True`` exactly when the write must be torn (the caller
    writes a truncated line and raises :class:`TornWriteInjected`);
    one-shot plans claim their marker here so a resumed run is not
    torn again.
    """
    plan = _armed_plan()
    if plan is None or plan.mode != "torn-write":
        return False
    if plan.site != site or plan.index != index:
        return False
    if plan.once and plan.marker_path and not _claim_marker(plan.marker_path):
        return False
    return True


# ---------------------------------------------------------------------------
# Input corruption
# ---------------------------------------------------------------------------


def corrupt_timing(timing, field: str, delta_cycles: int):
    """Return ``timing`` with one cycle-count parameter skewed.

    Negative ``delta_cycles`` models the interesting corruption: a
    controller scheduling against a *smaller* tRCD/tRP/tRAS than the
    datasheet's issues commands early, which the protocol checker
    (deriving its constraints independently from the datasheet) must
    flag.  The result never goes below zero cycles.
    """
    try:
        current = getattr(timing, field)
    except AttributeError as exc:
        raise ConfigurationError(
            f"timing has no parameter {field!r}"
        ) from exc
    if not isinstance(current, int):
        raise ConfigurationError(
            f"timing parameter {field!r} is not a cycle count"
        )
    return _replace(timing, **{field: max(0, current + delta_cycles)})


def corrupt_engine_timing(engine, field: str, delta_cycles: int) -> None:
    """Skew one timing parameter of a built engine, in place.

    The engine schedules with the corrupted value while
    :meth:`~repro.controller.engine.ChannelEngine.make_checker` keeps
    deriving its reference constraints from the pristine datasheet --
    exactly the engine-bug scenario the runtime invariant checker
    exists to catch.
    """
    engine.timing = corrupt_timing(engine.timing, field, delta_cycles)


def malformed_runs(
    runs: Sequence[Tuple[int, int, int]], at: int
) -> List[Tuple[int, int, int]]:
    """Copy ``runs`` with the run at index ``at`` given an invalid op.

    Models a corrupted request stream; the engine's run validation
    must reject it with :class:`~repro.errors.ConfigurationError`
    before any state is touched.
    """
    if not 0 <= at < len(runs):
        raise ConfigurationError(
            f"malformed_runs index {at} outside [0, {len(runs)})"
        )
    damaged = list(runs)
    op, start, count = damaged[at][:3]
    damaged[at] = (7, start, count)
    return damaged
