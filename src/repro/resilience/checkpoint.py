"""JSON-lines checkpoint store for sweep resume.

A sweep checkpoint is an append-only JSON-lines file: one line per
completed sweep point, written (and flushed) the moment the point
finishes, so an interrupted 100-point sweep that died at point 70
resumes with exactly 30 points of work.

Line format (version 2)::

    {"v": 2, "key": "<canonical sha256 of the job description>",
     "coords": {"level": "4", "channels": 4, "freq_mhz": 400.0},
     "data": "<base64(zlib(pickle(result)))>"}

- ``key`` identifies the point: the :func:`repro.keys.canonical_key`
  of the full job description (level, configuration -- including its
  ``backend`` -- scale, budget, block size) plus the engine version.
  Two sweeps share work if and only if their job descriptions match
  exactly, so a checkpoint file can safely be shared between e.g. the
  Fig. 4 and Fig. 5 runners (which sweep identical points) while a
  changed configuration never aliases a stale result.  The same key
  function addresses the persistent result cache
  (:mod:`repro.service.cache`), so checkpoint and cache never disagree
  about what "the same point" means.  Version-1 files keyed by
  ``sha256(repr(job))`` -- which omitted the backend and engine
  version -- are refused with a :class:`~repro.errors.CheckpointError`
  explaining the migration (delete the file, or re-run without
  ``--resume``): serving a v1 point would trust a key that cannot
  distinguish backends.
- ``coords`` is a small human-readable coordinate dict, so a plain
  ``grep``/``jq`` over the file shows which points are done.
- ``data`` is the pickled result payload; pickling (rather than a
  lossy JSON projection) is what makes resumed sweeps bit-identical
  to uninterrupted ones.

A truncated final line -- the signature of a run killed mid-write --
is skipped with a warning rather than poisoning the resume, and the
next append repairs the torn tail (terminates it with a newline) so
later records never fuse with the debris.  The same benefit of the
doubt extends to a *final* line whose version field is unrecognised: a
line torn inside its ``data`` blob can still parse as JSON with
mangled fields, and punishing the whole file for its last half-written
line would make every crash-resume a manual repair job.  An
unrecognised version on an *interior* line keeps raising
:class:`~repro.errors.CheckpointError` -- that is a foreign format,
not damage -- and the error reports how many valid points precede it
so the operator knows what a manual truncation would preserve.

Durability: by default each append is flushed to the OS (survives the
*process* dying, the common sweep failure) but not fsynced to the
platter.  ``fsync=True`` adds an :func:`os.fsync` per append for
machine-crash durability, at a per-point latency cost that is pure
waste on the ordinary kill/OOM failure class -- which is why it is
opt-in (``--durable-checkpoint`` on the CLI).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import CheckpointError
from repro.keys import canonical_key
from repro.resilience.faults import TornWriteInjected, maybe_torn_write

PathLike = Union[str, Path]

#: Current checkpoint line format version.  Version 1 keyed points by
#: ``sha256(repr(job))``, which omitted the simulation backend and the
#: engine version; version 2 keys are :func:`repro.keys.canonical_key`
#: digests (sorted-JSON projection + ENGINE_VERSION), shared with the
#: result cache.
CHECKPOINT_VERSION = 2


class CheckpointWarning(UserWarning):
    """A checkpoint file contained lines that had to be skipped."""


class SweepCheckpoint:
    """Append-only store of completed sweep points (JSON lines).

    ``fsync=True`` makes every append machine-crash durable (one
    :func:`os.fsync` per point); the default only flushes to the OS,
    which already survives the process dying.
    """

    def __init__(self, path: PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._appends = 0

    @staticmethod
    def key_for(job: Any) -> str:
        """Stable content key for one job description.

        Delegates to :func:`repro.keys.canonical_key`: a SHA-256 over
        the sorted-JSON projection of the description plus the engine
        version -- deterministic across processes and runs (unlike
        ``hash()``, which is salted, or ``pickle``, whose byte stream
        is not guaranteed stable across versions) and robust to
        dataclass refactors that would silently change a ``repr``.
        The sweep runners pass a description that includes the
        simulation backend, so a backend switch can never alias a
        stale point.
        """
        return canonical_key(job)

    def load(self) -> Dict[str, Any]:
        """Read all completed points: ``{key: result}``.

        Returns an empty dict when the file does not exist.  Undecodable
        lines (truncated tail of a killed run) are skipped with a
        :class:`CheckpointWarning`.  A structurally valid line with an
        unknown version raises :class:`CheckpointError` -- that file is
        from a different format, not a damaged copy of this one -- and
        the error reports how many valid points precede the offender.
        The one exception is the *final* line: a line torn mid-write
        can parse as JSON with a mangled version field, so an unknown
        version there gets the same benefit of the doubt as a torn
        line (skipped with a warning, point recomputed).
        """
        if not self.path.exists():
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        last_lineno = max(
            (i + 1 for i, raw in enumerate(lines) if raw.strip()), default=0
        )
        done: Dict[str, Any] = {}
        skipped = 0
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(entry, dict) or "key" not in entry:
                raise CheckpointError(
                    f"{self.path}:{lineno}: not a checkpoint entry"
                )
            if entry.get("v") != CHECKPOINT_VERSION:
                if lineno == last_lineno:
                    # The torn tail of a killed run can still be valid
                    # JSON with a damaged version field; treat the last
                    # line like any other truncated write.
                    skipped += 1
                    continue
                if entry.get("v") == 1:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: version-1 checkpoint "
                        "entries are keyed by sha256(repr(job)), which "
                        "omits the simulation backend and the engine "
                        "version; resuming from them could alias stale "
                        "results.  Delete the file (or re-run without "
                        "--resume) to recompute under canonical v2 keys"
                    )
                raise CheckpointError(
                    f"{self.path}:{lineno}: unsupported checkpoint "
                    f"version {entry.get('v')!r} "
                    f"(expected {CHECKPOINT_VERSION}); "
                    f"{len(done)} valid point(s) precede this line"
                )
            try:
                payload = pickle.loads(
                    zlib.decompress(base64.b64decode(entry["data"]))
                )
            except Exception:
                skipped += 1
                continue
            done[entry["key"]] = payload
        if skipped:
            warnings.warn(
                CheckpointWarning(
                    f"{self.path}: skipped {skipped} unreadable checkpoint "
                    "line(s) (interrupted write?); those points will be "
                    "recomputed"
                ),
                stacklevel=2,
            )
        return done

    def _tail_torn(self) -> bool:
        """Whether the existing file ends mid-line (no final newline)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def record(self, key: str, coords: Dict[str, Any], result: Any) -> None:
        """Append one completed point and flush it to disk.

        The first append of this instance repairs a torn tail left by
        a previous run killed mid-write (terminates the half-line with
        a newline) so the new record cannot fuse with the debris.
        With ``fsync=True`` the append is also fsynced before
        returning.
        """
        try:
            data = base64.b64encode(
                zlib.compress(pickle.dumps(result))
            ).decode("ascii")
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint result for {coords} is not picklable: {exc}"
            ) from exc
        line = json.dumps(
            {"v": CHECKPOINT_VERSION, "key": key, "coords": coords, "data": data}
        )
        repair = (
            self._appends == 0 and self.path.exists() and self._tail_torn()
        )
        seq = self._appends
        self._appends += 1
        torn = maybe_torn_write("checkpoint", seq)
        with open(self.path, "a", encoding="utf-8") as handle:
            if repair:
                handle.write("\n")
            if torn:
                # Injected fault: emulate the process dying mid-append
                # by writing a truncated, newline-less line and tearing
                # the run down.
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
                raise TornWriteInjected(
                    f"injected torn checkpoint write at append #{seq} "
                    f"({self.path})"
                )
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def recorded_backends(self) -> set:
        """Simulation backends the on-disk points were recorded under.

        Scans the human-readable ``coords`` only (no payload decode).
        Entries predating backend tagging carry no ``backend`` coord
        and contribute nothing -- they were all recorded under the
        then-only reference engine and stay resumable.  Used by the
        sweep runners to refuse mixing backends in one checkpoint file
        unless forced.
        """
        backends: set = set()
        if not self.path.exists():
            return backends
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict):
                    continue
                coords = entry.get("coords")
                if isinstance(coords, dict) and "backend" in coords:
                    backends.add(coords["backend"])
        return backends

    def clear(self) -> None:
        """Delete the checkpoint file (start the sweep from scratch)."""
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        """Number of structurally valid completed points on disk.

        Counts checkpoint lines without touching their payloads: a
        line counts if it parses as JSON, carries the current version,
        a string ``key`` and a string ``data`` field.  The ``data``
        blob is *not* base64/zlib/pickle-decoded -- decoding every
        payload just to print a resume banner cost O(file) CPU, which
        on multi-thousand-point campaigns dwarfed the banner itself.
        Unreadable (truncated) lines are skipped silently, matching
        what :meth:`load` would recover.
        """
        if not self.path.exists():
            return 0
        count = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    isinstance(entry, dict)
                    and entry.get("v") == CHECKPOINT_VERSION
                    and isinstance(entry.get("key"), str)
                    and isinstance(entry.get("data"), str)
                ):
                    count += 1
        return count
