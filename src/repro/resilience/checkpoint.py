"""JSON-lines checkpoint store for sweep resume.

A sweep checkpoint is an append-only JSON-lines file: one line per
completed sweep point, written (and flushed) the moment the point
finishes, so an interrupted 100-point sweep that died at point 70
resumes with exactly 30 points of work.

Line format (version 1)::

    {"v": 1, "key": "<sha256 of the job description>",
     "coords": {"level": "4", "channels": 4, "freq_mhz": 400.0},
     "data": "<base64(zlib(pickle(result)))>"}

- ``key`` identifies the point: a SHA-256 over the ``repr`` of the
  full job description (level, configuration, scale, budget, block
  size).  Two sweeps share work if and only if their job descriptions
  match exactly, so a checkpoint file can safely be shared between
  e.g. the Fig. 4 and Fig. 5 runners (which sweep identical points)
  while a changed configuration never aliases a stale result.
- ``coords`` is a small human-readable coordinate dict, so a plain
  ``grep``/``jq`` over the file shows which points are done.
- ``data`` is the pickled result payload; pickling (rather than a
  lossy JSON projection) is what makes resumed sweeps bit-identical
  to uninterrupted ones.

A truncated final line -- the signature of a run killed mid-write --
is skipped with a warning rather than poisoning the resume.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import CheckpointError

PathLike = Union[str, Path]

#: Current checkpoint line format version.
CHECKPOINT_VERSION = 1


class CheckpointWarning(UserWarning):
    """A checkpoint file contained lines that had to be skipped."""


class SweepCheckpoint:
    """Append-only store of completed sweep points (JSON lines)."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    @staticmethod
    def key_for(job: Any) -> str:
        """Stable content key for one job description.

        ``repr`` of the plain dataclasses/enums/numbers making up a
        sweep job is deterministic across processes and runs (unlike
        ``hash()``, which is salted, or ``pickle``, whose byte stream
        is not guaranteed stable across versions).
        """
        return hashlib.sha256(repr(job).encode("utf-8")).hexdigest()

    def load(self) -> Dict[str, Any]:
        """Read all completed points: ``{key: result}``.

        Returns an empty dict when the file does not exist.  Undecodable
        lines (truncated tail of a killed run) are skipped with a
        :class:`CheckpointWarning`; a structurally valid line with an
        unknown version raises :class:`CheckpointError` -- that file is
        from a different format, not a damaged copy of this one.
        """
        if not self.path.exists():
            return {}
        done: Dict[str, Any] = {}
        skipped = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if not isinstance(entry, dict) or "key" not in entry:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: not a checkpoint entry"
                    )
                if entry.get("v") != CHECKPOINT_VERSION:
                    raise CheckpointError(
                        f"{self.path}:{lineno}: unsupported checkpoint "
                        f"version {entry.get('v')!r} "
                        f"(expected {CHECKPOINT_VERSION})"
                    )
                try:
                    payload = pickle.loads(
                        zlib.decompress(base64.b64decode(entry["data"]))
                    )
                except Exception:
                    skipped += 1
                    continue
                done[entry["key"]] = payload
        if skipped:
            warnings.warn(
                CheckpointWarning(
                    f"{self.path}: skipped {skipped} unreadable checkpoint "
                    "line(s) (interrupted write?); those points will be "
                    "recomputed"
                ),
                stacklevel=2,
            )
        return done

    def record(self, key: str, coords: Dict[str, Any], result: Any) -> None:
        """Append one completed point and flush it to disk."""
        try:
            data = base64.b64encode(
                zlib.compress(pickle.dumps(result))
            ).decode("ascii")
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint result for {coords} is not picklable: {exc}"
            ) from exc
        line = json.dumps(
            {"v": CHECKPOINT_VERSION, "key": key, "coords": coords, "data": data}
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def recorded_backends(self) -> set:
        """Simulation backends the on-disk points were recorded under.

        Scans the human-readable ``coords`` only (no payload decode).
        Entries predating backend tagging carry no ``backend`` coord
        and contribute nothing -- they were all recorded under the
        then-only reference engine and stay resumable.  Used by the
        sweep runners to refuse mixing backends in one checkpoint file
        unless forced.
        """
        backends: set = set()
        if not self.path.exists():
            return backends
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict):
                    continue
                coords = entry.get("coords")
                if isinstance(coords, dict) and "backend" in coords:
                    backends.add(coords["backend"])
        return backends

    def clear(self) -> None:
        """Delete the checkpoint file (start the sweep from scratch)."""
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        """Number of structurally valid completed points on disk.

        Counts checkpoint lines without touching their payloads: a
        line counts if it parses as JSON, carries the current version,
        a string ``key`` and a string ``data`` field.  The ``data``
        blob is *not* base64/zlib/pickle-decoded -- decoding every
        payload just to print a resume banner cost O(file) CPU, which
        on multi-thousand-point campaigns dwarfed the banner itself.
        Unreadable (truncated) lines are skipped silently, matching
        what :meth:`load` would recover.
        """
        if not self.path.exists():
            return 0
        count = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    isinstance(entry, dict)
                    and entry.get("v") == CHECKPOINT_VERSION
                    and isinstance(entry.get("key"), str)
                    and isinstance(entry.get("data"), str)
                ):
                    count += 1
        return count
