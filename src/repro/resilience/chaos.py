"""Seeded chaos campaign: a real sweep under randomized fault injection.

The resilience machinery makes a compound promise -- crashes are
retried, hangs are killed and requeued, torn checkpoint writes are
repaired on resume, and through all of it the final sweep result is
**bit-identical** to an undisturbed run.  Each mechanism has unit
tests; this module tests the *composition*, which is where resilience
systems actually break (a retry that re-runs a checkpointed point, a
repair that eats a neighbouring record, a kill that leaks into an
innocent job).

:func:`run_chaos_campaign` runs one small but real sweep per seed.
Each seed drives a :class:`random.Random` that draws a fresh fault
before every attempt -- a worker crash, a permanent stall, or a torn
checkpoint write, aimed at a random point -- and the sweep runs under
full supervision (``point_timeout``, checkpoint, strict mode).  Torn
writes tear the run down mid-checkpoint
(:class:`~repro.resilience.faults.TornWriteInjected`); the campaign
then *resumes* from the damaged checkpoint file, exactly as an
operator would.  A campaign passes only if every seed converges to a
report bit-identical to the fault-free baseline (dataclass equality
over every :class:`~repro.analysis.sweep.SweepPoint`) with zero
residual failures.

Determinism: everything is derived from the seed, so a CI failure
reproduces locally with the same seed -- which is why the CLI
(``repro chaos``) prints the seed of the first failing run.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import random

from repro.analysis.sweep import SweepPoint, sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import SimulationError
from repro.load.scaling import DEFAULT_CHUNK_BUDGET
from repro.resilience.faults import FaultPlan, TornWriteInjected, injected
from repro.telemetry.session import Telemetry
from repro.usecase.levels import H264Level, level_by_name

#: Default seeds of the CI campaign (see ``repro chaos --seeds``).
DEFAULT_CHAOS_SEEDS: Tuple[int, ...] = (1, 5, 17)

#: Fault modes the campaign draws from.  ``raise`` is excluded on
#: purpose: a deterministic job failure legitimately changes the sweep
#: outcome (an ERR cell), so it has no place in a bit-identity check.
CHAOS_FAULT_MODES: Tuple[str, ...] = ("crash", "stall", "torn-write")


@dataclass
class ChaosRun:
    """Outcome of one seeded run of the campaign."""

    seed: int
    #: Human-readable description of each injected fault, in order.
    faults: List[str] = field(default_factory=list)
    #: Sweep attempts used (1 = no resume was needed).
    attempts: int = 0
    #: Whether the final report matched the baseline bit-for-bit.
    identical: bool = False
    #: Residual failures in the final report (must be 0 to pass).
    residual_failures: int = 0
    #: Supervision counters accumulated across the run's attempts.
    watchdog_kills: int = 0
    timeouts: int = 0
    quarantined: int = 0

    @property
    def ok(self) -> bool:
        """Whether this seed's run converged to the baseline."""
        return self.identical and self.residual_failures == 0

    def describe(self) -> str:
        """One-line summary for campaign output."""
        status = "ok" if self.ok else "FAIL"
        return (
            f"seed {self.seed}: {status} after {self.attempts} attempt(s), "
            f"{len(self.faults)} fault(s) injected "
            f"[{', '.join(self.faults) or 'none fired'}], "
            f"kills={self.watchdog_kills} timeouts={self.timeouts} "
            f"quarantined={self.quarantined}"
        )


@dataclass
class ChaosReport:
    """Outcome of a whole chaos campaign."""

    runs: List[ChaosRun]
    points: int

    @property
    def passed(self) -> bool:
        """Whether every seeded run converged to the baseline."""
        return all(run.ok for run in self.runs)

    @property
    def first_failure(self) -> Optional[ChaosRun]:
        """The first failing run, for reproduction instructions."""
        for run in self.runs:
            if not run.ok:
                return run
        return None

    def format(self) -> str:
        """Multi-line human-readable campaign summary."""
        lines = [
            f"chaos campaign: {len(self.runs)} seed(s) over a "
            f"{self.points}-point sweep"
        ]
        lines.extend("  " + run.describe() for run in self.runs)
        if self.passed:
            lines.append("PASS: every run bit-identical to the fault-free sweep")
        else:
            failing = self.first_failure
            lines.append(
                f"FAIL: seed {failing.seed} diverged -- reproduce with "
                f"`repro chaos --seeds {failing.seed}`"
            )
        return "\n".join(lines)


def _draw_fault(rng: random.Random, n_jobs: int, marker_dir: str, serial: int) -> FaultPlan:
    """Draw the next fault of a seeded run.

    Every fault is one-shot (``once=True``) with a fresh marker file:
    the fault fires exactly once and the recovery machinery must then
    converge, which keeps each attempt's outcome decidable.  The
    ``site``/``index`` aim crash/stall at a random sweep point and
    torn-write at a random checkpoint append.
    """
    mode = rng.choice(CHAOS_FAULT_MODES)
    site = "checkpoint" if mode == "torn-write" else "sweep"
    index = rng.randrange(n_jobs)
    marker = os.path.join(marker_dir, f"fault-{serial}.marker")
    return FaultPlan(
        site=site, index=index, mode=mode, once=True, marker_path=marker
    )


def run_chaos_campaign(
    seeds: Sequence[int] = DEFAULT_CHAOS_SEEDS,
    levels: Optional[Sequence[H264Level]] = None,
    configs: Optional[Sequence[SystemConfig]] = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    backend: Optional[str] = None,
    workers: int = 2,
    point_timeout: float = 15.0,
    max_attempts: int = 8,
) -> ChaosReport:
    """Run the seeded chaos campaign and report per-seed outcomes.

    For every seed: run the sweep under supervision with a one-shot
    random fault armed; when a torn checkpoint write tears the run
    down, draw a fresh fault and *resume* from the (damaged)
    checkpoint file; repeat until the sweep completes or
    ``max_attempts`` runs out.  The final report must be bit-identical
    to the fault-free baseline.

    ``point_timeout`` bounds how long a stalled point can hold the
    campaign hostage; the default is deliberately generous so loaded
    CI machines do not kill *slow* (as opposed to hung) points --
    an injected stall is infinite, so any finite deadline catches it.
    """
    if levels is None:
        levels = [level_by_name("3.1")]
    if configs is None:
        configs = [SystemConfig(channels=m) for m in (1, 2, 4)]
    n_jobs = len(levels) * len(configs)

    baseline = sweep_use_case(
        list(levels),
        list(configs),
        chunk_budget=chunk_budget,
        backend=backend,
        strict=True,
    )
    baseline_points: List[SweepPoint] = list(baseline)

    runs: List[ChaosRun] = []
    for seed in seeds:
        rng = random.Random(seed)
        run = ChaosRun(seed=seed)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            ckpt = os.path.join(tmp, "chaos.ckpt")
            report = None
            for attempt in range(1, max_attempts + 1):
                run.attempts = attempt
                plan = _draw_fault(rng, n_jobs, tmp, attempt)
                run.faults.append(f"{plan.mode}@{plan.site}[{plan.index}]")
                telemetry = Telemetry()
                try:
                    with injected(plan):
                        report = sweep_use_case(
                            list(levels),
                            list(configs),
                            chunk_budget=chunk_budget,
                            backend=backend,
                            workers=workers,
                            checkpoint=ckpt,
                            strict=True,
                            point_timeout=point_timeout,
                            telemetry=telemetry,
                        )
                except TornWriteInjected:
                    # The injected mid-append death: resume from the
                    # torn checkpoint on the next attempt.
                    report = None
                finally:
                    registry = telemetry.registry
                    run.watchdog_kills += registry.counter(
                        "sweep.watchdog_kills"
                    ).value
                    run.timeouts += registry.counter("sweep.timeouts").value
                    run.quarantined += registry.counter(
                        "sweep.quarantined"
                    ).value
                if report is not None:
                    break
            if report is None:
                raise SimulationError(
                    f"chaos seed {seed} failed to converge within "
                    f"{max_attempts} attempts"
                )
            run.identical = list(report) == baseline_points
            run.residual_failures = len(report.failures)
        runs.append(run)
    return ChaosReport(runs=runs, points=n_jobs)
