"""Fault tolerance for sweeps and the parallel execution layer.

The paper's evaluation is a grid of dozens of independent simulation
points; at production scale a grid run must survive crashed workers,
pathological points and interruptions without discarding completed
work.  This package supplies the machinery:

- :mod:`repro.resilience.retry` -- deterministic exponential backoff
  for transient pool failures (:class:`RetryPolicy`);
- :mod:`repro.resilience.report` -- structured per-job failure records
  (:class:`JobFailure`) and the graceful-degradation sweep result
  (:class:`SweepReport`);
- :mod:`repro.resilience.checkpoint` -- the append-only JSON-lines
  checkpoint store behind ``sweep_use_case(checkpoint=...)`` and the
  CLI's ``--checkpoint``/``--resume`` (:class:`SweepCheckpoint`);
- :mod:`repro.resilience.faults` -- controlled fault injection (worker
  crash on the Nth job, deterministic job failure, corrupted timing
  parameters, malformed request streams) for testing all of the above.

The runtime DRAM-protocol invariant checker lives with the protocol
model (:class:`repro.dram.protocol.ProtocolChecker`) and is enabled
per-configuration via ``SystemConfig(check_invariants=True)``.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWarning,
    SweepCheckpoint,
)
from repro.resilience.report import JobFailure, SweepReport
from repro.resilience.retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointWarning",
    "DEFAULT_RETRY_POLICY",
    "JobFailure",
    "NO_RETRY",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepReport",
]
