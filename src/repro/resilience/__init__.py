"""Fault tolerance for sweeps and the parallel execution layer.

The paper's evaluation is a grid of dozens of independent simulation
points; at production scale a grid run must survive crashed workers,
hung workers, pathological points and interruptions without discarding
completed work.  This package supplies the machinery:

- :mod:`repro.resilience.retry` -- deterministic exponential backoff
  for transient pool failures (:class:`RetryPolicy`);
- :mod:`repro.resilience.report` -- structured per-job failure records
  (:class:`JobFailure`, with ``error``/``timeout``/``quarantined``
  kinds) and the graceful-degradation sweep result
  (:class:`SweepReport`);
- :mod:`repro.resilience.checkpoint` -- the append-only JSON-lines
  checkpoint store behind ``sweep_use_case(checkpoint=...)`` and the
  CLI's ``--checkpoint``/``--resume`` (:class:`SweepCheckpoint`, with
  opt-in per-append fsync durability);
- :mod:`repro.resilience.supervisor` -- the watchdog layer over
  :func:`repro.parallel.parallel_map`: per-job wall-clock deadlines,
  heartbeat-based hang detection, kill-and-requeue, and quarantine of
  jobs that exhaust their strike budget (:class:`Watchdog`);
- :mod:`repro.resilience.faults` -- controlled fault injection (worker
  crash or permanent stall on the Nth job, deterministic job failure,
  torn checkpoint writes, corrupted timing parameters, malformed
  request streams) for testing all of the above;
- :mod:`repro.resilience.chaos` -- the seeded chaos campaign that runs
  a real sweep under randomized crash/stall/torn-write injection and
  asserts the final report is bit-identical to an undisturbed run
  (imported directly, not re-exported here: it drives the sweep layer,
  which sits above this package).

The runtime DRAM-protocol invariant checker lives with the protocol
model (:class:`repro.dram.protocol.ProtocolChecker`) and is enabled
per-configuration via ``SystemConfig(check_invariants=True)``.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWarning,
    SweepCheckpoint,
)
from repro.resilience.faults import TornWriteInjected
from repro.resilience.report import (
    FAILURE_KIND_ERROR,
    FAILURE_KIND_QUARANTINED,
    FAILURE_KIND_TIMEOUT,
    JobFailure,
    SweepReport,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy
from repro.resilience.supervisor import Watchdog

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointWarning",
    "DEFAULT_RETRY_POLICY",
    "FAILURE_KIND_ERROR",
    "FAILURE_KIND_QUARANTINED",
    "FAILURE_KIND_TIMEOUT",
    "JobFailure",
    "NO_RETRY",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepReport",
    "TornWriteInjected",
    "Watchdog",
]
