"""Tests for power-down policies."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.powerstate import (
    ImmediatePowerDown,
    NoPowerDown,
    TimeoutPowerDown,
)
from repro.errors import ConfigurationError

T_CKE = 1
T_XP = 2


class TestImmediatePowerDown:
    """Section III: power down after the first idle clock cycle."""

    def test_zero_gap_stays_up(self):
        assert ImmediatePowerDown().powered_down_cycles(0, T_CKE, T_XP) == 0

    def test_single_cycle_gap_cannot_honour_tcke(self):
        # One idle cycle: the detection cycle consumes it.
        assert ImmediatePowerDown().powered_down_cycles(1, T_CKE, T_XP) == 0

    def test_two_cycle_gap_powers_down_one(self):
        assert ImmediatePowerDown().powered_down_cycles(2, T_CKE, T_XP) == 1

    def test_long_gap_mostly_powered_down(self):
        assert ImmediatePowerDown().powered_down_cycles(1000, T_CKE, T_XP) == 999

    def test_exit_penalty(self):
        policy = ImmediatePowerDown()
        assert policy.exit_penalty(10, T_XP) == T_XP
        assert policy.exit_penalty(0, T_XP) == 0

    def test_idles_powered_down(self):
        assert ImmediatePowerDown().idles_powered_down

    @given(st.integers(min_value=0, max_value=10**6))
    def test_residency_never_exceeds_gap(self, gap):
        down = ImmediatePowerDown().powered_down_cycles(gap, T_CKE, T_XP)
        assert 0 <= down <= max(0, gap)


class TestTimeoutPowerDown:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            TimeoutPowerDown(timeout_cycles=0)

    def test_short_gap_stays_up(self):
        policy = TimeoutPowerDown(timeout_cycles=16)
        assert policy.powered_down_cycles(16, T_CKE, T_XP) == 0

    def test_long_gap_powers_down_after_timeout(self):
        policy = TimeoutPowerDown(timeout_cycles=16)
        assert policy.powered_down_cycles(100, T_CKE, T_XP) == 84

    def test_name_includes_timeout(self):
        assert TimeoutPowerDown(timeout_cycles=32).name == "timeout-32"

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_never_more_aggressive_than_immediate(self, timeout, gap):
        lazy = TimeoutPowerDown(timeout_cycles=timeout)
        eager = ImmediatePowerDown()
        assert lazy.powered_down_cycles(gap, T_CKE, T_XP) <= (
            eager.powered_down_cycles(gap, T_CKE, T_XP)
        )


class TestNoPowerDown:
    def test_never_powers_down(self):
        policy = NoPowerDown()
        for gap in (0, 1, 100, 10**6):
            assert policy.powered_down_cycles(gap, T_CKE, T_XP) == 0

    def test_idles_in_standby(self):
        assert not NoPowerDown().idles_powered_down

    def test_no_exit_penalty_ever(self):
        policy = NoPowerDown()
        assert policy.exit_penalty(policy.powered_down_cycles(500, T_CKE, T_XP), T_XP) == 0
