"""Tests for DRAM timing parameters and frequency extrapolation."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError

TIMING = NEXT_GEN_MOBILE_DDR.timing


class TestValidation:
    def test_paper_device_is_valid(self):
        # Construction succeeded at import; spot-check key values.
        assert TIMING.t_rcd_ns == 15.0
        assert TIMING.burst_length == 4
        assert TIMING.f_min_mhz == 200.0
        assert TIMING.f_max_mhz == 533.0

    def test_rejects_negative_ns_parameter(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TIMING, t_rp_ns=-1.0)

    def test_rejects_odd_burst_length(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TIMING, burst_length=3)

    def test_rejects_trc_smaller_than_tras_plus_trp(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TIMING, t_rc_ns=30.0)  # < 40 + 15

    def test_rejects_inverted_frequency_range(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TIMING, f_min_mhz=500.0, f_max_mhz=300.0)

    def test_validate_frequency_inside_range(self):
        TIMING.validate_frequency(200.0)
        TIMING.validate_frequency(533.0)

    def test_validate_frequency_outside_range(self):
        with pytest.raises(ConfigurationError):
            TIMING.validate_frequency(150.0)
        with pytest.raises(ConfigurationError):
            TIMING.validate_frequency(600.0)


class TestExtrapolation:
    """The paper's rule: ns parameters fixed, cycle counts rescale."""

    def test_200mhz_matches_datasheet_cycles(self):
        t = TIMING.at_frequency(200.0)
        # 5 ns period: tRCD/tRP are 3 clocks, tRAS 8, tRC 11, CL 3.
        assert t.t_ck_ns == pytest.approx(5.0)
        assert t.t_rcd == 3
        assert t.t_rp == 3
        assert t.t_ras == 8
        assert t.t_rc == 11
        assert t.cas_latency == 3

    def test_400mhz_doubles_ns_cycle_counts(self):
        t = TIMING.at_frequency(400.0)
        assert t.t_rcd == 6
        assert t.t_rp == 6
        assert t.t_ras == 16
        assert t.t_rc == 22
        assert t.cas_latency == 6

    def test_cycle_valued_parameters_do_not_scale(self):
        t200 = TIMING.at_frequency(200.0)
        t400 = TIMING.at_frequency(400.0)
        assert t200.burst_cycles == t400.burst_cycles == 2
        assert t200.write_latency == t400.write_latency == 1
        assert t200.t_wtr == t400.t_wtr
        assert t200.t_xp == t400.t_xp

    def test_noninteger_period_rounds_up(self):
        # 266 MHz: 15 ns / 3.759 ns = 3.99 -> 4 cycles.
        t = TIMING.at_frequency(266.0)
        assert t.t_rcd == 4

    def test_refresh_interval_scales(self):
        t200 = TIMING.at_frequency(200.0)
        t400 = TIMING.at_frequency(400.0)
        assert t200.t_refi == 1560
        assert t400.t_refi == 3120

    @given(st.sampled_from([200.0, 266.0, 333.0, 400.0, 466.0, 533.0]))
    def test_ns_values_are_respected_at_every_frequency(self, freq):
        t = TIMING.at_frequency(freq)
        for cycles, ns in [
            (t.t_rcd, TIMING.t_rcd_ns),
            (t.t_rp, TIMING.t_rp_ns),
            (t.t_ras, TIMING.t_ras_ns),
            (t.t_rc, TIMING.t_rc_ns),
            (t.t_rfc, TIMING.t_rfc_ns),
            (t.cas_latency, TIMING.cas_ns),
        ]:
            assert cycles * t.t_ck_ns >= ns - 1e-6

    @given(
        st.sampled_from([200.0, 266.0, 333.0]),
        st.sampled_from([400.0, 466.0, 533.0]),
    )
    def test_cycle_counts_monotone_in_frequency(self, low, high):
        t_low = TIMING.at_frequency(low)
        t_high = TIMING.at_frequency(high)
        assert t_high.t_rcd >= t_low.t_rcd
        assert t_high.t_rc >= t_low.t_rc
        assert t_high.cas_latency >= t_low.cas_latency

    def test_out_of_range_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            TIMING.at_frequency(100.0)


class TestTimingCycles:
    def test_row_miss_penalty(self):
        t = TIMING.at_frequency(400.0)
        assert t.row_miss_penalty() == t.t_rp + t.t_rcd == 12

    def test_cycles_to_ns(self):
        t = TIMING.at_frequency(400.0)
        assert t.cycles_to_ns(4) == pytest.approx(10.0)

    def test_ns_to_cycle_count(self):
        t = TIMING.at_frequency(400.0)
        assert t.ns_to_cycle_count(15.0) == 6


class TestFourActivateWindow:
    def test_tfaw_resolves(self):
        t = TIMING.at_frequency(400.0)
        assert t.t_faw == 20  # 50 ns at 2.5 ns

    def test_tfaw_scales_with_clock(self):
        assert TIMING.at_frequency(200.0).t_faw == 10
        assert TIMING.at_frequency(533.0).t_faw == 27

    def test_tfaw_validated(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TIMING, t_faw_ns=0.0)
