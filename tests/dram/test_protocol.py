"""Tests for the DRAM protocol checker, and the engine/checker
cross-validation that anchors the simulator's correctness."""

import pytest

from repro.controller.engine import ChannelEngine
from repro.controller.interconnect import InterconnectModel
from repro.controller.mapping import AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.queue import CommandQueueModel
from repro.dram.commands import Command
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.dram.protocol import CommandRecord, ProtocolChecker
from repro.errors import ConfigurationError

TIMING = NEXT_GEN_MOBILE_DDR.timing.at_frequency(400.0)
GEO = NEXT_GEN_MOBILE_DDR.geometry
# At 400 MHz: tRCD=6, tRP=6, tRAS=16, tRC=22, tRRD=4, CL=6, WL=1,
# burst=2, tWTR=2, tRFC=29.


def checker():
    return ProtocolChecker(TIMING, GEO)


ACT = Command.ACTIVATE
PRE = Command.PRECHARGE
RD = Command.READ
WR = Command.WRITE
REF = Command.REFRESH
PREA = Command.PRECHARGE_ALL
PDE = Command.POWER_DOWN_ENTER
PDX = Command.POWER_DOWN_EXIT


class TestCleanSequences:
    def test_simple_read(self):
        log = [
            CommandRecord(0, ACT, 0, 5),
            CommandRecord(6, RD, 0, 5),
        ]
        assert checker().check(log) == []

    def test_row_cycle(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),
            CommandRecord(16, PRE, 0),
            CommandRecord(22, ACT, 0, 2),
            CommandRecord(28, RD, 0, 2),
        ]
        assert checker().check(log) == []

    def test_empty_log(self):
        assert checker().check([]) == []

    def test_power_down_cycle(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),
            CommandRecord(15, PDE),
            CommandRecord(100, PDX),
            CommandRecord(102, RD, 0, 1),
        ]
        assert checker().check(log) == []


class TestViolationsDetected:
    def _first_rule(self, log):
        violations = checker().check(log)
        assert violations, "expected a violation"
        return {v.rule for v in violations}

    def test_trcd_violation(self):
        rules = self._first_rule(
            [CommandRecord(0, ACT, 0, 1), CommandRecord(3, RD, 0, 1)]
        )
        assert "tRCD" in rules

    def test_read_to_closed_bank(self):
        rules = self._first_rule([CommandRecord(10, RD, 0, 1)])
        assert "state" in rules

    def test_read_wrong_row(self):
        rules = self._first_rule(
            [CommandRecord(0, ACT, 0, 1), CommandRecord(6, RD, 0, 2)]
        )
        assert "state" in rules

    def test_tras_violation(self):
        rules = self._first_rule(
            [
                CommandRecord(0, ACT, 0, 1),
                CommandRecord(6, RD, 0, 1),
                CommandRecord(10, PRE, 0),  # < tRAS=16 after ACT
            ]
        )
        assert "tRAS/tWR" in rules

    def test_trp_violation(self):
        rules = self._first_rule(
            [
                CommandRecord(0, ACT, 0, 1),
                CommandRecord(6, RD, 0, 1),
                CommandRecord(16, PRE, 0),
                CommandRecord(18, ACT, 0, 2),  # < tRP=6 after PRE
            ]
        )
        assert "tRP" in rules

    def test_trc_violation(self):
        # tRP is honoured (21 - 15 = 6) but ACT-to-ACT is 21 < tRC=22.
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),
            CommandRecord(15, PRE, 0),
            CommandRecord(21, ACT, 0, 2),
        ]
        violations = checker().check(log)
        assert any(v.rule == "tRC" for v in violations)

    def test_trrd_violation(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(2, ACT, 1, 1),  # < tRRD=4
        ]
        violations = checker().check(log)
        assert any(v.rule == "tRRD" for v in violations)

    def test_act_to_open_bank(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(25, ACT, 0, 2),  # bank never precharged
        ]
        violations = checker().check(log)
        assert any(v.rule == "state" for v in violations)

    def test_refresh_with_open_bank(self):
        log = [CommandRecord(0, ACT, 0, 1), CommandRecord(10, REF)]
        violations = checker().check(log)
        assert any(v.rule == "state" for v in violations)

    def test_command_during_trfc(self):
        log = [CommandRecord(0, REF), CommandRecord(10, ACT, 0, 1)]  # tRFC=29
        violations = checker().check(log)
        assert any(v.rule == "tRFC" for v in violations)

    def test_twtr_violation(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, WR, 0, 1),  # data [7, 9)
            CommandRecord(10, RD, 0, 1),  # < 9 + tWTR = 11
        ]
        violations = checker().check(log)
        assert any(v.rule == "tWTR" for v in violations)

    def test_data_bus_overlap(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),   # data [12, 14)
            CommandRecord(7, RD, 0, 1),   # data [13, 15) overlaps
        ]
        violations = checker().check(log)
        assert any(v.rule == "data-bus" for v in violations)

    def test_two_commands_same_cycle(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(0, ACT, 1, 1),
        ]
        violations = checker().check(log)
        assert any(v.rule == "command-bus" for v in violations)

    def test_command_while_powered_down(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),
            CommandRecord(20, PDE),
            CommandRecord(25, ACT, 1, 1),
        ]
        violations = checker().check(log)
        assert any(v.rule == "power-down" for v in violations)

    def test_txp_violation(self):
        log = [
            CommandRecord(0, ACT, 0, 1),
            CommandRecord(6, RD, 0, 1),
            CommandRecord(20, PDE),
            CommandRecord(50, PDX),
            CommandRecord(51, RD, 0, 1),  # < tXP=2 after exit
        ]
        violations = checker().check(log)
        assert any(v.rule == "tXP" for v in violations)

    def test_assert_clean_raises(self):
        with pytest.raises(ConfigurationError, match="protocol violation"):
            checker().assert_clean([CommandRecord(0, RD, 0, 1)])


class TestEngineCrossValidation:
    """The headline correctness property: every command stream the
    engine emits is protocol-clean, across every configuration axis."""

    STREAMS = {
        "sequential": [(0, 0, 3000)],
        "mixed-rw": [(0, 0, 256), (1, 4096, 256), (0, 512, 256), (1, 8192, 128)],
        "gappy": [(0, 0, 16, 0), (0, 64, 16, 2000), (1, 1024, 16, 6000)],
        "conflicty": [(0, i * 1024, 4) for i in range(64)],
    }

    @pytest.mark.parametrize("freq", [200.0, 333.0, 400.0, 533.0])
    @pytest.mark.parametrize("stream", sorted(STREAMS))
    def test_default_config_clean(self, freq, stream):
        engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, freq)
        log = []
        engine.run(self.STREAMS[stream], command_log=log)
        assert engine.make_checker().check(log) == []

    @pytest.mark.parametrize("stream", sorted(STREAMS))
    def test_brc_clean(self, stream):
        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0, multiplexing=AddressMultiplexing.BRC
        )
        log = []
        engine.run(self.STREAMS[stream], command_log=log)
        assert engine.make_checker().check(log) == []

    @pytest.mark.parametrize("stream", sorted(STREAMS))
    def test_closed_page_clean(self, stream):
        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0, page_policy=PagePolicy.CLOSED
        )
        log = []
        engine.run(self.STREAMS[stream], command_log=log)
        assert engine.make_checker().check(log) == []

    def test_shallow_queue_clean(self):
        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0, queue=CommandQueueModel(depth=1)
        )
        log = []
        engine.run([(0, 0, 2000)], command_log=log)
        assert engine.make_checker().check(log) == []

    def test_use_case_traffic_clean(self):
        """A real frame fragment through the full system is clean."""
        from repro.core.interleave import ChannelInterleaver
        from repro.load.model import VideoRecordingLoadModel
        from repro.usecase.levels import level_by_name
        from repro.usecase.pipeline import VideoRecordingUseCase

        load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
        txns = load.generate_frame(scale=1 / 128)
        inter = ChannelInterleaver(2)
        runs = []
        for txn in txns:
            span = txn.chunk_span()
            for ch, start, count in inter.split_span(span.start, span.stop - 1):
                if ch == 0:
                    runs.append((int(txn.op), start, count))
        engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0)
        log = []
        engine.run(runs, command_log=log)
        assert engine.make_checker().check(log) == []

    def test_log_matches_counters(self):
        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0, interconnect=InterconnectModel(0.0)
        )
        log = []
        result = engine.run([(0, 0, 600), (1, 8192, 100)], command_log=log)
        by_cmd = {}
        for rec in log:
            by_cmd[rec.command] = by_cmd.get(rec.command, 0) + 1
        assert by_cmd.get(Command.READ, 0) == result.counters.reads
        assert by_cmd.get(Command.WRITE, 0) == result.counters.writes
        assert by_cmd.get(Command.ACTIVATE, 0) == result.counters.activates
        assert by_cmd.get(Command.REFRESH, 0) == result.counters.refreshes

    def test_logging_does_not_change_timing(self):
        engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0)
        quiet = engine.run([(0, 0, 2000)])
        logged = engine.run([(0, 0, 2000)], command_log=[])
        assert quiet.finish_cycle == logged.finish_cycle


class TestProtocolFuzz:
    """Property test: *any* workload yields a protocol-clean stream."""

    import hypothesis.strategies as _st
    from hypothesis import given as _given, settings as _settings

    run_strategy = _st.lists(
        _st.tuples(
            _st.integers(min_value=0, max_value=1),       # op
            _st.integers(min_value=0, max_value=2**20),   # start chunk
            _st.integers(min_value=1, max_value=300),     # count
            _st.integers(min_value=0, max_value=50_000),  # arrival
        ),
        min_size=1,
        max_size=30,
    )

    @_given(
        runs=run_strategy,
        freq=_st.sampled_from([200.0, 333.0, 400.0, 533.0]),
        scheme=_st.sampled_from(list(AddressMultiplexing)),
        closed=_st.booleans(),
    )
    @_settings(max_examples=60, deadline=None)
    def test_random_workloads_are_protocol_clean(self, runs, freq, scheme, closed):
        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR,
            freq,
            multiplexing=scheme,
            page_policy=PagePolicy.CLOSED if closed else PagePolicy.OPEN,
        )
        log = []
        engine.run(runs, command_log=log)
        violations = engine.make_checker().check(log)
        assert violations == [], violations[:3]
