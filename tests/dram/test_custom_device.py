"""Generality test: a user-defined device through the whole stack.

The library must not be hard-wired to the paper's 512 Mb / 4-bank /
x32 part.  This suite builds an eight-bank device with 2 KB rows and
different currents, and drives it through the engine, the protocol
checker, the interleaver, the power model and a full use-case
simulation.  Eight banks also make the four-activate window (tFAW)
*bindable* — on the 4-bank default, tRC always dominates it — so this
is where tFAW's enforcement is genuinely exercised.
"""

import pytest

from repro.controller.engine import ChannelEngine
from repro.controller.interconnect import InterconnectModel
from repro.controller.mapping import AddressMapping, AddressMultiplexing
from repro.core.config import SystemConfig
from repro.dram.commands import Command
from repro.dram.datasheet import CurrentSet, DeviceDescriptor, NEXT_GEN_MOBILE_DDR
from repro.dram.device import BankClusterGeometry
from repro.dram.power import PowerModel
from repro.dram.refresh import RefreshParameters
from repro.dram.timing import TimingParameters

IDEAL = InterconnectModel(0.0)


def make_eight_bank_device() -> DeviceDescriptor:
    """A 1 Gb, eight-bank, 2 KB-row x32 device at DDR2 clocks."""
    return DeviceDescriptor(
        name="custom-1Gb-x32-8bank",
        geometry=BankClusterGeometry(
            capacity_bits=1024 * 2**20,  # 1 Gb = 128 MB
            banks=8,
            word_bits=32,
            row_bytes=2048,
        ),
        timing=TimingParameters(
            t_rcd_ns=15.0,
            t_rp_ns=15.0,
            t_ras_ns=40.0,
            t_rc_ns=55.0,
            t_rrd_ns=10.0,
            t_wr_ns=15.0,
            t_rfc_ns=110.0,  # bigger die, longer refresh
            t_refi_ns=7800.0,
            cas_ns=15.0,
            # A power-constrained die: the four-activate window is
            # twice the default so it genuinely binds (in-order issue
            # naturally spaces ACTs ~7 cycles apart at 400 MHz, so
            # 50 ns would never be the limiter).
            t_faw_ns=100.0,
        ),
        refresh=RefreshParameters(interval_ns=7800.0),
        currents=CurrentSet(
            reference_freq_mhz=200.0,
            reference_voltage_v=1.8,
            idd0_ma=80.0,
            idd2p_ma=5.0,
            idd2n_ma=20.0,
            idd3p_ma=8.0,
            idd3n_ma=25.0,
            idd4r_ma=150.0,
            idd4w_ma=140.0,
            idd5_ma=160.0,
            idd6_ma=0.5,
        ),
        core_voltage_v=1.5,
        io_voltage_v=1.2,
    )


@pytest.fixture(scope="module")
def device():
    return make_eight_bank_device()


class TestGeometry:
    def test_derived_structure(self, device):
        geo = device.geometry
        assert geo.capacity_bytes == 128 * 2**20
        assert geo.bank_bytes == 16 * 2**20
        assert geo.rows_per_bank == 8192
        assert geo.columns_per_row == 512

    def test_mapping_adapts(self, device):
        # 2 KB rows = 128 chunks; RBC bank bits sit above 7 chunk bits.
        mapping = AddressMapping.build(device.geometry, AddressMultiplexing.RBC)
        assert mapping.chunks_per_row == 128
        assert mapping.decode_chunk(0) == (0, 0)
        assert mapping.decode_chunk(128) == (1, 0)
        assert mapping.decode_chunk(128 * 8) == (0, 1)

    def test_peak_bandwidth(self, device):
        assert device.peak_bandwidth_bytes_per_s(400.0) == pytest.approx(3.2e9)


class TestTfawBinding:
    def test_activate_storm_limited_by_tfaw(self, device):
        """Eight single-burst reads to eight different banks: in-order
        issue would space ACTs ~7 cycles apart, but the 100 ns window
        (40 cycles at 400 MHz) forces the 5th ACT to wait."""
        engine = ChannelEngine(device, 400.0, interconnect=IDEAL)
        runs = [(0, bank * 128, 1) for bank in range(8)]
        log = []
        engine.run(runs, command_log=log)
        acts = [rec.cycle for rec in log if rec.command is Command.ACTIVATE]
        assert len(acts) == 8
        assert acts[4] - acts[0] >= 40
        assert acts[5] - acts[1] >= 40
        # Unconstrained, the first four flow at the natural rate.
        assert acts[3] - acts[0] < 40
        assert engine.make_checker().check(log) == []

    def test_tfaw_throttles_vs_relaxed_window(self, device):
        import dataclasses

        relaxed = dataclasses.replace(
            device, timing=dataclasses.replace(device.timing, t_faw_ns=10.0)
        )
        runs = [(0, bank * 128, 1) for bank in range(8)]
        tight = ChannelEngine(device, 400.0, interconnect=IDEAL).run(runs)
        loose = ChannelEngine(relaxed, 400.0, interconnect=IDEAL).run(runs)
        assert tight.finish_cycle > loose.finish_cycle


class TestEndToEnd:
    def test_sequential_stream_protocol_clean(self, device):
        engine = ChannelEngine(device, 400.0, interconnect=IDEAL)
        log = []
        result = engine.run([(0, 0, 4000)], command_log=log)
        assert engine.make_checker().check(log) == []
        # 2 KB rows rotate banks twice as often as the 4 KB default.
        assert result.counters.activates >= 4000 // 128

    def test_power_model_accepts_custom_currents(self, device):
        model = PowerModel(device, 400.0)
        assert model.read_burst_energy_j > 0
        assert model.precharge_powerdown_power_w < model.active_standby_power_w

    def test_full_use_case_runs(self, device):
        from repro.analysis.sweep import simulate_use_case
        from repro.usecase.levels import level_by_name

        config = SystemConfig(channels=2, freq_mhz=400.0, device=device)
        point = simulate_use_case(
            level_by_name("3.1"), config, chunk_budget=30_000
        )
        assert point.access_time_ms > 0
        assert point.total_power_mw > 0
        # Double the capacity per channel vs the default device.
        assert config.total_capacity_bytes == 2 * 128 * 2**20
