"""Tests for the command set and activity counters."""

import pytest

from repro.dram.commands import Command, CommandCounters, StateDurations


class TestCommand:
    def test_all_paper_operations_present(self):
        # Section III: "precharges, activations, reads, writes,
        # refreshes, and power downs".
        names = {c.value for c in Command}
        for required in ("PRE", "ACT", "RD", "WR", "REF", "PDE", "PDX"):
            assert required in names

    def test_str(self):
        assert str(Command.ACTIVATE) == "ACT"


class TestCommandCounters:
    def test_defaults_to_zero(self):
        c = CommandCounters()
        assert c.total_commands() == 0

    def test_total_commands(self):
        c = CommandCounters(activates=2, precharges=1, reads=10, writes=5,
                            refreshes=1, power_down_entries=1, power_down_exits=1)
        assert c.total_commands() == 21

    def test_row_hit_rate_all_hits(self):
        c = CommandCounters(activates=0, reads=100)
        assert c.row_hit_rate() == 1.0

    def test_row_hit_rate_mixed(self):
        c = CommandCounters(activates=10, reads=50, writes=50)
        assert c.row_hit_rate() == pytest.approx(0.9)

    def test_row_hit_rate_empty_is_vacuously_one(self):
        assert CommandCounters().row_hit_rate() == 1.0

    def test_row_hit_rate_never_negative(self):
        c = CommandCounters(activates=5, reads=2)
        assert c.row_hit_rate() == 0.0

    def test_as_dict_round_trip(self):
        c = CommandCounters(activates=1, reads=2, writes=3)
        d = c.as_dict()
        assert d["activates"] == 1
        assert d["reads"] == 2
        assert d["writes"] == 3
        assert set(d) == {
            "activates", "precharges", "reads", "writes", "refreshes",
            "power_down_entries", "power_down_exits",
        }

    def test_merged_with_adds_fields(self):
        a = CommandCounters(activates=1, reads=10)
        b = CommandCounters(activates=2, writes=4, refreshes=1)
        m = a.merged_with(b)
        assert m.activates == 3
        assert m.reads == 10
        assert m.writes == 4
        assert m.refreshes == 1
        # Inputs untouched.
        assert a.activates == 1 and b.activates == 2


class TestStateDurations:
    def test_total(self):
        s = StateDurations(
            precharge_standby_ns=1.0,
            active_standby_ns=2.0,
            precharge_powerdown_ns=3.0,
            active_powerdown_ns=4.0,
        )
        assert s.total_ns() == pytest.approx(10.0)

    def test_merged_with(self):
        a = StateDurations(active_standby_ns=5.0)
        b = StateDurations(active_standby_ns=7.0, precharge_powerdown_ns=1.0)
        m = a.merged_with(b)
        assert m.active_standby_ns == pytest.approx(12.0)
        assert m.precharge_powerdown_ns == pytest.approx(1.0)
        assert a.active_standby_ns == pytest.approx(5.0)
