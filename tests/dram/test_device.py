"""Tests for bank-cluster geometry and bank state."""

import dataclasses

import pytest

from repro.dram.device import (
    NO_OPEN_ROW,
    BankClusterGeometry,
    BankState,
    make_bank_states,
)
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.errors import AddressError, ConfigurationError

GEO = NEXT_GEN_MOBILE_DDR.geometry


class TestPaperGeometry:
    """The Section III bank cluster: 512 Mb, 4 banks, 32-bit words."""

    def test_capacity(self):
        assert GEO.capacity_bits == 512 * 2**20
        assert GEO.capacity_bytes == 64 * 2**20

    def test_banks(self):
        assert GEO.banks == 4

    def test_word_width(self):
        assert GEO.word_bits == 32
        assert GEO.word_bytes == 4

    def test_row_structure(self):
        assert GEO.row_bytes == 4096
        assert GEO.columns_per_row == 1024
        assert GEO.bank_bytes == 16 * 2**20
        assert GEO.rows_per_bank == 4096


class TestValidation:
    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GEO, banks=3)

    def test_rejects_bad_word_width(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GEO, word_bits=24)

    def test_rejects_non_power_of_two_row(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GEO, row_bytes=3000)

    def test_rejects_capacity_not_multiple_of_8(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(GEO, capacity_bits=511)

    def test_rejects_capacity_smaller_than_banks_times_row(self):
        with pytest.raises(ConfigurationError):
            BankClusterGeometry(
                capacity_bits=8 * 1024, banks=4, word_bits=32, row_bytes=4096
            )

    def test_check_local_address(self):
        GEO.check_local_address(0)
        GEO.check_local_address(GEO.capacity_bytes - 1)
        with pytest.raises(AddressError):
            GEO.check_local_address(GEO.capacity_bytes)
        with pytest.raises(AddressError):
            GEO.check_local_address(-1)


class TestBankState:
    def test_starts_closed(self):
        state = BankState()
        assert not state.is_open()
        assert state.open_row == NO_OPEN_ROW

    def test_open_close(self):
        state = BankState()
        state.open_row = 42
        assert state.is_open()
        state.close()
        assert not state.is_open()

    def test_reset(self):
        state = BankState()
        state.open_row = 7
        state.column_ready = 100
        state.reset()
        assert not state.is_open()
        assert state.column_ready == 0

    def test_make_bank_states_independent(self):
        states = make_bank_states(GEO)
        assert len(states) == 4
        states[0].open_row = 1
        assert states[1].open_row == NO_OPEN_ROW
