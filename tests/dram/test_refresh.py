"""Tests for refresh parameters."""

import pytest

from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.dram.refresh import RefreshParameters
from repro.errors import ConfigurationError


class TestRefreshParameters:
    def test_paper_values(self):
        ref = NEXT_GEN_MOBILE_DDR.refresh
        assert ref.interval_ns == pytest.approx(7800.0)
        assert ref.all_bank

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            RefreshParameters(interval_ns=0.0)

    def test_commands_in_window(self):
        ref = RefreshParameters(interval_ns=7800.0)
        assert ref.commands_in(78_000.0) == 10
        assert ref.commands_in(7_799.0) == 0
        assert ref.commands_in(0.0) == 0
        assert ref.commands_in(-5.0) == 0

    def test_duty_fraction(self):
        ref = RefreshParameters(interval_ns=7800.0)
        # tRFC = 72 ns -> ~0.92 % bandwidth loss.
        assert ref.duty_fraction(72.0) == pytest.approx(72.0 / 7800.0)

    def test_duty_fraction_rejects_negative_trfc(self):
        ref = RefreshParameters(interval_ns=7800.0)
        with pytest.raises(ConfigurationError):
            ref.duty_fraction(-1.0)

    def test_commands_per_second_rate(self):
        # 1 s / 7.8 us = ~128205 refreshes per second per channel.
        ref = RefreshParameters(interval_ns=7800.0)
        assert ref.commands_in(1e9) == 128205


class TestTemperatureDerating:
    def test_cool_die_unchanged(self):
        ref = RefreshParameters(interval_ns=7800.0)
        assert ref.derated(25.0) is ref
        assert ref.derated(85.0) is ref

    def test_hot_die_halves_interval(self):
        ref = RefreshParameters(interval_ns=7800.0)
        hot = ref.derated(95.0)
        assert hot.interval_ns == pytest.approx(3900.0)
        assert hot.all_bank == ref.all_bank

    def test_operating_range_enforced(self):
        ref = RefreshParameters(interval_ns=7800.0)
        with pytest.raises(ConfigurationError):
            ref.derated(130.0)
        with pytest.raises(ConfigurationError):
            ref.derated(-50.0)

    def test_device_level_derating(self):
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR

        hot = NEXT_GEN_MOBILE_DDR.at_temperature(95.0)
        assert hot.timing.t_refi_ns == pytest.approx(3900.0)
        assert hot.refresh.interval_ns == pytest.approx(3900.0)
        assert "95" in hot.name
        # Cool path returns the identical object.
        assert NEXT_GEN_MOBILE_DDR.at_temperature(40.0) is NEXT_GEN_MOBILE_DDR

    def test_hot_device_refreshes_twice_as_often_in_simulation(self):
        from repro.controller.engine import ChannelEngine
        from repro.controller.interconnect import InterconnectModel
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR

        ideal = InterconnectModel(0.0)
        runs = [(0, 0, 50_000)]
        cool = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, interconnect=ideal).run(runs)
        hot_dev = NEXT_GEN_MOBILE_DDR.at_temperature(95.0)
        hot = ChannelEngine(hot_dev, 400.0, interconnect=ideal).run(runs)
        assert hot.counters.refreshes > 1.8 * cool.counters.refreshes
        assert hot.finish_cycle > cool.finish_cycle

    def test_hot_device_burns_more_power(self):
        from repro.analysis.sweep import simulate_use_case
        from repro.core.config import SystemConfig
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
        from repro.usecase.levels import level_by_name

        cool_cfg = SystemConfig(channels=2, freq_mhz=400.0)
        hot_cfg = SystemConfig(
            channels=2, freq_mhz=400.0,
            device=NEXT_GEN_MOBILE_DDR.at_temperature(95.0),
        )
        cool = simulate_use_case(level_by_name("3.1"), cool_cfg, chunk_budget=40_000)
        hot = simulate_use_case(level_by_name("3.1"), hot_cfg, chunk_budget=40_000)
        assert hot.total_power_mw > cool.total_power_mw
        assert hot.access_time_ms > cool.access_time_ms
