"""Tests for the current-integration power model."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.commands import CommandCounters, StateDurations
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.dram.power import EnergyBreakdown, PowerModel, ZERO_ENERGY
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return PowerModel(NEXT_GEN_MOBILE_DDR, 400.0)


class TestEnergyBreakdown:
    def test_total_sums_components(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert e.total_j == pytest.approx(15.0)

    def test_zero_energy(self):
        assert ZERO_ENERGY.total_j == 0.0

    def test_average_power(self):
        e = EnergyBreakdown(1e-3, 0, 0, 0, 0)
        assert e.average_power_w(1e6) == pytest.approx(1.0)  # 1 mJ over 1 ms

    def test_average_power_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            ZERO_ENERGY.average_power_w(0.0)

    def test_merged_with(self):
        a = EnergyBreakdown(1, 0, 2, 0, 0)
        b = EnergyBreakdown(1, 1, 1, 1, 1)
        m = a.merged_with(b)
        assert m.background_j == 2
        assert m.read_j == 3
        assert m.total_j == pytest.approx(a.total_j + b.total_j)


class TestOperationEnergies:
    def test_burst_energy_is_frequency_independent(self):
        # Charge per bit is fixed: energy per burst must not depend on
        # the interface clock.
        m200 = PowerModel(NEXT_GEN_MOBILE_DDR, 200.0)
        m400 = PowerModel(NEXT_GEN_MOBILE_DDR, 400.0)
        assert m200.read_burst_energy_j == pytest.approx(m400.read_burst_energy_j)
        assert m200.write_burst_energy_j == pytest.approx(m400.write_burst_energy_j)
        assert m200.activate_energy_j == pytest.approx(m400.activate_energy_j)

    def test_read_costs_more_than_write(self, model):
        # IDD4R > IDD4W in the calibrated set.
        assert model.read_burst_energy_j > model.write_burst_energy_j

    def test_energies_positive(self, model):
        assert model.activate_energy_j > 0
        assert model.refresh_energy_j > 0

    def test_voltage_scaling_is_quadratic(self):
        import dataclasses

        lowered = dataclasses.replace(NEXT_GEN_MOBILE_DDR, core_voltage_v=0.675)
        half_v = PowerModel(lowered, 400.0)
        full_v = PowerModel(NEXT_GEN_MOBILE_DDR, 400.0)
        # 0.675 / 1.35 = 0.5 -> energies scale by 0.25.
        assert half_v.read_burst_energy_j == pytest.approx(
            0.25 * full_v.read_burst_energy_j
        )
        assert half_v.precharge_standby_power_w == pytest.approx(
            0.25 * full_v.precharge_standby_power_w
        )


class TestBackgroundPowers:
    def test_state_power_ordering(self, model):
        assert model.precharge_powerdown_power_w < model.precharge_standby_power_w
        assert model.active_powerdown_power_w < model.active_standby_power_w
        assert model.precharge_standby_power_w <= model.active_standby_power_w

    def test_standby_scales_with_frequency_powerdown_does_not(self):
        m200 = PowerModel(NEXT_GEN_MOBILE_DDR, 200.0)
        m400 = PowerModel(NEXT_GEN_MOBILE_DDR, 400.0)
        assert m400.active_standby_power_w > m200.active_standby_power_w
        # CKE low gates the clock tree: power-down power is flat.
        assert m400.precharge_powerdown_power_w == pytest.approx(
            m200.precharge_powerdown_power_w
        )

    def test_idle_channel_power_matches_fig5_delta(self, model):
        # Fig. 5's single- to 8-channel delta (~150 -> ~205 mW at
        # 720p30) implies roughly 7-9 mW per mostly-idle channel; the
        # calibrated power-down power must be in that band.
        pd_mw = model.precharge_powerdown_power_w * 1e3
        assert 4.0 <= pd_mw <= 9.0


class TestIntegration:
    def test_zero_activity_zero_energy(self, model):
        e = model.energy(CommandCounters(), StateDurations())
        assert e.total_j == 0.0

    def test_energy_linear_in_counts(self, model):
        one = model.energy(CommandCounters(reads=1), StateDurations())
        ten = model.energy(CommandCounters(reads=10), StateDurations())
        assert ten.read_j == pytest.approx(10 * one.read_j)

    def test_energy_additive_over_merges(self, model):
        c1 = CommandCounters(activates=3, reads=100, writes=50, refreshes=2)
        c2 = CommandCounters(activates=1, reads=10)
        s1 = StateDurations(active_standby_ns=1e6)
        s2 = StateDurations(active_standby_ns=5e5, active_powerdown_ns=1e5)
        separate = model.energy(c1, s1).total_j + model.energy(c2, s2).total_j
        merged = model.energy(c1.merged_with(c2), s1.merged_with(s2)).total_j
        assert merged == pytest.approx(separate)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**4),
    )
    def test_energy_never_negative(self, reads, writes, acts):
        model = PowerModel(NEXT_GEN_MOBILE_DDR, 400.0)
        e = model.energy(
            CommandCounters(reads=reads, writes=writes, activates=acts),
            StateDurations(active_standby_ns=1000.0),
        )
        assert e.total_j >= 0.0


class TestPagePolicyBackgroundBooking:
    """Idle residency must be charged at the rate of the state the
    page policy actually leaves the banks in: IDD3-class for open
    page (rows held open across gaps), IDD2-class for closed page
    (every bank precharged)."""

    def _idle_gap_result(self, policy):
        from repro.controller.engine import ChannelEngine
        from repro.controller.interconnect import InterconnectModel

        engine = ChannelEngine(
            NEXT_GEN_MOBILE_DDR,
            400.0,
            page_policy=policy,
            interconnect=InterconnectModel(address_cycles_per_access=0.0),
        )
        return engine.run([(0, 0, 1, 0), (0, 8, 1, 4000)])

    def test_closed_page_background_uses_precharged_rates(self, model):
        from repro.controller.pagepolicy import PagePolicy

        r = self._idle_gap_result(PagePolicy.CLOSED)
        assert r.states.precharge_powerdown_ns > 0
        assert r.states.active_powerdown_ns == 0.0
        e = model.energy(CommandCounters(), r.states)
        expected = (
            r.states.precharge_standby_ns * model.precharge_standby_power_w
            + r.states.precharge_powerdown_ns * model.precharge_powerdown_power_w
        ) * 1e-9
        assert e.background_j == pytest.approx(expected)

    def test_open_page_background_uses_active_rates(self, model):
        from repro.controller.pagepolicy import PagePolicy

        r = self._idle_gap_result(PagePolicy.OPEN)
        assert r.states.active_powerdown_ns > 0
        assert r.states.precharge_powerdown_ns == 0.0
        e = model.energy(CommandCounters(), r.states)
        expected = (
            r.states.active_standby_ns * model.active_standby_power_w
            + r.states.active_powerdown_ns * model.active_powerdown_power_w
        ) * 1e-9
        assert e.background_j == pytest.approx(expected)

    def test_closed_page_idle_background_rate_is_cheaper(self, model):
        # IDD2N < IDD3N and IDD2P < IDD3P: the same idle-heavy run must
        # average a lower background power with banks precharged.
        from repro.controller.pagepolicy import PagePolicy

        open_r = self._idle_gap_result(PagePolicy.OPEN)
        closed_r = self._idle_gap_result(PagePolicy.CLOSED)
        open_rate = (
            model.energy(CommandCounters(), open_r.states).background_j
            / open_r.states.total_ns()
        )
        closed_rate = (
            model.energy(CommandCounters(), closed_r.states).background_j
            / closed_r.states.total_ns()
        )
        assert closed_rate < open_rate


class TestStreamingPower:
    def test_streaming_power_matches_calibration_anchor(self, model):
        # The Fig. 5 calibration: a fully streaming 400 MHz channel
        # burns roughly 230-280 mW (see EXPERIMENTS.md derivation).
        p_mw = model.streaming_power_w() * 1e3
        assert 200.0 <= p_mw <= 300.0

    def test_read_fraction_bounds_checked(self, model):
        with pytest.raises(ConfigurationError):
            model.streaming_power_w(read_fraction=1.5)

    def test_read_heavy_streams_cost_more(self, model):
        assert model.streaming_power_w(1.0) > model.streaming_power_w(0.0)

    def test_validates_frequency(self):
        with pytest.raises(ConfigurationError):
            PowerModel(NEXT_GEN_MOBILE_DDR, 100.0)
