"""Tests for the calibrated device descriptor."""

import dataclasses

import pytest

from repro.dram.datasheet import (
    NEXT_GEN_MOBILE_DDR,
    CurrentSet,
    next_gen_mobile_ddr,
)
from repro.errors import ConfigurationError


class TestDescriptor:
    def test_builder_returns_equal_descriptor(self):
        assert next_gen_mobile_ddr() == NEXT_GEN_MOBILE_DDR

    def test_paper_voltages(self):
        # Section III: 1.35 V core projection, 1.2 V I/O estimate.
        assert NEXT_GEN_MOBILE_DDR.core_voltage_v == pytest.approx(1.35)
        assert NEXT_GEN_MOBILE_DDR.io_voltage_v == pytest.approx(1.2)

    def test_peak_bandwidth_at_400mhz(self):
        # 32-bit DDR at 400 MHz: 3.2 GB/s per channel.
        bw = NEXT_GEN_MOBILE_DDR.peak_bandwidth_bytes_per_s(400.0)
        assert bw == pytest.approx(3.2e9)

    def test_peak_bandwidth_scales_linearly(self):
        bw200 = NEXT_GEN_MOBILE_DDR.peak_bandwidth_bytes_per_s(200.0)
        bw400 = NEXT_GEN_MOBILE_DDR.peak_bandwidth_bytes_per_s(400.0)
        assert bw400 == pytest.approx(2 * bw200)

    def test_peak_bandwidth_validates_frequency(self):
        with pytest.raises(ConfigurationError):
            NEXT_GEN_MOBILE_DDR.peak_bandwidth_bytes_per_s(100.0)

    def test_eight_channels_match_xdr_class_bandwidth(self):
        # Section IV: eight channels at 400 MHz ~ 25.6 GB/s raw,
        # "similar bandwidth" to the Cell BE XDR interface.
        total = 8 * NEXT_GEN_MOBILE_DDR.peak_bandwidth_bytes_per_s(400.0)
        assert total == pytest.approx(25.6e9)

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(NEXT_GEN_MOBILE_DDR, core_voltage_v=0.0)


class TestCurrentSet:
    CUR = NEXT_GEN_MOBILE_DDR.currents

    def test_reference_operating_point(self):
        # Quoted at the Micron datasheet's 200 MHz / 1.8 V point.
        assert self.CUR.reference_freq_mhz == pytest.approx(200.0)
        assert self.CUR.reference_voltage_v == pytest.approx(1.8)

    def test_current_ordering_is_physical(self):
        c = self.CUR
        # Power-down < standby < burst; refresh is the heaviest
        # sustained operation.
        assert c.idd2p_ma < c.idd2n_ma
        assert c.idd3p_ma < c.idd3n_ma
        assert c.idd2n_ma <= c.idd3n_ma
        assert c.idd3n_ma < c.idd4w_ma <= c.idd4r_ma
        assert c.idd6_ma < c.idd2p_ma

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(self.CUR, idd0_ma=-1.0)

    def test_rejects_burst_below_standby(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(self.CUR, idd4r_ma=1.0)

    def test_rejects_idd0_below_standby(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(self.CUR, idd0_ma=1.0)

    def test_rejects_nonpositive_reference(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(self.CUR, reference_freq_mhz=0.0)


class TestAlternativeDevices:
    def test_contemporary_mobile_ddr_clock_range(self):
        from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR

        dev = CONTEMPORARY_MOBILE_DDR
        assert dev.timing.f_min_mhz == 133.0
        assert dev.timing.f_max_mhz == 200.0
        with pytest.raises(ConfigurationError):
            dev.timing.validate_frequency(400.0)

    def test_contemporary_runs_at_full_voltage(self):
        from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR

        assert CONTEMPORARY_MOBILE_DDR.core_voltage_v == pytest.approx(1.8)

    def test_contemporary_has_device_only_powerdown(self):
        from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR

        # Real Mobile DDR power-down currents are sub-milliamp, unlike
        # the next-gen model's effective (channel-inclusive) value.
        assert CONTEMPORARY_MOBILE_DDR.currents.idd2p_ma < 1.0

    def test_standard_ddr2_burns_more_background(self):
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR, STANDARD_DDR2

        std = STANDARD_DDR2.currents
        mob = NEXT_GEN_MOBILE_DDR.currents
        # The reference [14] argument: standard DDR standby/power-down
        # currents dwarf the mobile part's.
        assert std.idd2p_ma > 4 * mob.idd2p_ma
        assert std.idd2n_ma > 2 * mob.idd2n_ma
        assert std.idd3n_ma > 2 * mob.idd3n_ma

    def test_standard_ddr2_same_clock_range_as_next_gen(self):
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR, STANDARD_DDR2

        assert STANDARD_DDR2.timing.f_min_mhz == (
            NEXT_GEN_MOBILE_DDR.timing.f_min_mhz
        )
        assert STANDARD_DDR2.timing.f_max_mhz == (
            NEXT_GEN_MOBILE_DDR.timing.f_max_mhz
        )

    def test_all_devices_distinct_names(self):
        from repro.dram.datasheet import (
            CONTEMPORARY_MOBILE_DDR,
            NEXT_GEN_MOBILE_DDR,
            STANDARD_DDR2,
        )

        names = {
            CONTEMPORARY_MOBILE_DDR.name,
            NEXT_GEN_MOBILE_DDR.name,
            STANDARD_DDR2.name,
        }
        assert len(names) == 3

    def test_contemporary_simulates_end_to_end(self):
        import dataclasses

        from repro.analysis.sweep import simulate_use_case
        from repro.core.config import SystemConfig
        from repro.dram.datasheet import CONTEMPORARY_MOBILE_DDR
        from repro.usecase.levels import level_by_name

        config = SystemConfig(
            channels=4, freq_mhz=200.0, device=CONTEMPORARY_MOBILE_DDR
        )
        point = simulate_use_case(
            level_by_name("3.1"), config, chunk_budget=30_000
        )
        assert point.access_time_ms > 0
        assert point.total_power_mw > 0
