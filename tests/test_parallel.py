"""Determinism suite for the parallel execution layer.

The contract under test (docs/architecture.md, "parallel execution
layer"): running channels or sweep points across worker processes is
an implementation detail -- every observable result is bit-identical
to the sequential path, in the same order, for any worker count.
"""

import os
import pickle
import time
import warnings

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.generators import sequential_stream
from repro.parallel import (
    AUTO_WORKERS,
    MAX_WORKERS,
    PoolFallbackWarning,
    available_cpus,
    parallel_map,
    pool_supported,
    resolve_workers,
)
from repro.resilience.report import JobFailure

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="process pool unavailable on this platform"
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"worker failure on {x}")


# ---------------------------------------------------------------------------
# Worker-count semantics


class TestResolveWorkers:
    def test_none_means_in_process(self):
        assert resolve_workers(None, 8) == 1

    def test_one_means_in_process(self):
        assert resolve_workers(1, 8) == 1

    def test_auto_uses_cpu_count(self):
        assert resolve_workers(AUTO_WORKERS, 10**6) == available_cpus()

    def test_capped_by_job_count(self):
        assert resolve_workers(16, 4) == 4

    def test_zero_jobs_still_one_worker(self):
        assert resolve_workers(4, 0) == 1

    @pytest.mark.parametrize("bad", [-1, MAX_WORKERS + 1, 2.0, "4", True])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad, 8)

    def test_config_knob_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(parallelism=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(parallelism=257)


# ---------------------------------------------------------------------------
# parallel_map


class TestParallelMap:
    def test_in_process_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            n * n for n in range(10)
        ]

    @needs_pool
    def test_pooled_preserves_order(self):
        assert parallel_map(_square, range(50), workers=4) == [
            n * n for n in range(50)
        ]

    @needs_pool
    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, [1, 2, 3], workers=2)

    @needs_pool
    def test_unpicklable_function_falls_back_in_process(self):
        # A lambda cannot cross the process boundary; the layer must
        # catch the PicklingError and deliver the identical result
        # in-process instead of failing.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=2) == [2, 3, 4]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


# ---------------------------------------------------------------------------
# Callback (on_result / on_failure) semantics


def _mark_and_square(arg):
    """Square ``value``, dropping one marker file per simulation.

    The marker name embeds pid and a monotonic stamp so *every*
    execution of a job leaves a distinct file -- counting the markers
    for one value counts how many times that job was simulated.
    """
    value, mark_dir = arg
    name = f"{value}-{os.getpid()}-{time.monotonic_ns()}"
    with open(os.path.join(mark_dir, name), "w"):
        pass
    return value * value


def _disk_full(index, value):
    raise OSError("disk full (test)")


def _simulation_counts(mark_dir, values):
    return {
        value: sum(
            1
            for name in os.listdir(mark_dir)
            if name.startswith(f"{value}-")
        )
        for value in values
    }


class TestCallbackSemantics:
    """A raising ``on_result``/``on_failure`` is a *caller* error.

    The trap this guards: a checkpoint append failing with ``OSError``
    -- which is also a pool-error type -- must abort the map as the
    caller's exception, never be retried as a "transient pool failure"
    that re-simulates jobs whose results were already delivered.
    """

    @needs_pool
    def test_pooled_on_result_error_propagates_without_resimulation(
        self, tmp_path
    ):
        values = list(range(4))
        jobs = [(value, str(tmp_path)) for value in values]
        with warnings.catch_warnings():
            # A misclassification would surface as retry-then-fallback;
            # escalating the fallback warning makes it unmissable.
            warnings.simplefilter("error", PoolFallbackWarning)
            with pytest.raises(OSError, match="disk full"):
                parallel_map(
                    _mark_and_square, jobs, workers=2, on_result=_disk_full
                )
        counts = _simulation_counts(tmp_path, values)
        assert all(count <= 1 for count in counts.values()), (
            f"a failing on_result re-ran completed jobs: {counts}"
        )

    def test_serial_on_result_error_propagates_and_aborts(self, tmp_path):
        values = list(range(4))
        jobs = [(value, str(tmp_path)) for value in values]
        with pytest.raises(OSError, match="disk full"):
            parallel_map(_mark_and_square, jobs, on_result=_disk_full)
        # The first delivery aborted the map: one simulation, ever.
        counts = _simulation_counts(tmp_path, values)
        assert sum(counts.values()) == 1

    def test_on_result_sees_successes_in_completion_order(self):
        seen = {}
        parallel_map(
            _square, range(5), on_result=lambda i, v: seen.__setitem__(i, v)
        )
        assert seen == {i: i * i for i in range(5)}

    def test_on_failure_receives_captured_failures(self):
        seen = {}
        out = parallel_map(
            _boom,
            [1, 2],
            capture_failures=True,
            on_failure=lambda i, f: seen.__setitem__(i, f),
        )
        assert set(seen) == {0, 1}
        assert all(isinstance(f, JobFailure) for f in seen.values())
        assert out == [seen[0], seen[1]]

    def test_on_failure_error_propagates_as_caller_error(self):
        def explode(index, failure):
            raise RuntimeError("failure sink broke (test)")

        with pytest.raises(RuntimeError, match="failure sink broke"):
            parallel_map(
                _boom, [1], capture_failures=True, on_failure=explode
            )

    @needs_pool
    def test_pooled_on_failure_error_propagates_as_caller_error(self):
        def explode(index, failure):
            raise RuntimeError("failure sink broke (test)")

        with pytest.raises(RuntimeError, match="failure sink broke"):
            parallel_map(
                _boom,
                [1, 2, 3],
                workers=2,
                capture_failures=True,
                on_failure=explode,
            )


# ---------------------------------------------------------------------------
# Channel-level determinism


def _fingerprint(result):
    """Every observable field of a SimulationResult, channel by channel."""
    return [
        (
            ch.finish_cycle,
            ch.data_cycles,
            ch.chunks_read,
            ch.chunks_written,
            ch.counters,
            ch.states,
            ch.bank_accesses,
        )
        for ch in result.channels
    ]


def _write_read_mix(total_bytes, block_bytes=4096):
    """Alternating timed writes and backlogged reads."""
    from repro.controller.request import MasterTransaction, Op

    txns = []
    for i, addr in enumerate(range(0, total_bytes, block_bytes)):
        if i % 2:
            txns.append(MasterTransaction(Op.READ, addr, block_bytes))
        else:
            txns.append(
                MasterTransaction(
                    Op.WRITE, addr, block_bytes, arrival_ns=i * 100.0
                )
            )
    return txns


class TestChannelDeterminism:
    @needs_pool
    @pytest.mark.parametrize("channels", [1, 2, 4, 8])
    def test_parallel_matches_sequential(self, channels):
        txns = sequential_stream(2 * 2**20, block_bytes=4096)
        system = MultiChannelMemorySystem(SystemConfig(channels=channels))
        sequential = system.run(txns)
        parallel = system.run(txns, workers=4)
        assert _fingerprint(parallel) == _fingerprint(sequential)
        assert parallel.channels == sequential.channels
        assert parallel.access_time_ms == sequential.access_time_ms

    @needs_pool
    def test_config_parallelism_knob_matches_sequential(self):
        txns = sequential_stream(2 * 2**20, block_bytes=4096)
        base = SystemConfig(channels=4)
        sequential = MultiChannelMemorySystem(base).run(txns)
        knobbed = MultiChannelMemorySystem(base.with_parallelism(4)).run(txns)
        assert _fingerprint(knobbed) == _fingerprint(sequential)

    @needs_pool
    def test_mixed_timed_workload_matches_sequential(self):
        txns = _write_read_mix(2 * 2**20)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        sequential = system.run(txns)
        parallel = system.run(txns, workers=4)
        assert _fingerprint(parallel) == _fingerprint(sequential)

    def test_small_run_stays_in_process(self):
        # Below PARALLEL_MIN_CHUNKS the pool must not engage; the call
        # still succeeds and matches a plain run.
        txns = sequential_stream(64 * 1024, block_bytes=4096)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        assert _fingerprint(system.run(txns, workers=4)) == _fingerprint(
            system.run(txns)
        )

    def test_results_are_picklable(self):
        # The pool round trip relies on lossless pickling of results.
        txns = sequential_stream(64 * 1024, block_bytes=4096)
        result = MultiChannelMemorySystem(SystemConfig(channels=2)).run(txns)
        clone = pickle.loads(pickle.dumps(result))
        assert _fingerprint(clone) == _fingerprint(result)


# ---------------------------------------------------------------------------
# Sweep-level determinism


class TestSweepDeterminism:
    @needs_pool
    def test_sweep_parallel_matches_sequential(self):
        from repro.analysis.sweep import sweep_use_case
        from repro.usecase.levels import level_by_name

        levels = [level_by_name("3.1")]
        configs = [SystemConfig(channels=m) for m in (1, 2, 4)]
        sequential = sweep_use_case(levels, configs, chunk_budget=20_000)
        parallel = sweep_use_case(
            levels, configs, chunk_budget=20_000, workers=2
        )
        assert [p.config for p in parallel] == [p.config for p in sequential]
        for par, seq in zip(parallel, sequential):
            assert _fingerprint(par.result) == _fingerprint(seq.result)
            assert par.power == seq.power
            assert par.verdict is seq.verdict

    @needs_pool
    def test_sweep_order_independence(self):
        from repro.analysis.sweep import sweep_use_case
        from repro.usecase.levels import level_by_name

        levels = [level_by_name("3.1")]
        configs = [SystemConfig(channels=m) for m in (1, 2, 4)]
        forward = sweep_use_case(
            levels, configs, chunk_budget=20_000, workers=2
        )
        backward = sweep_use_case(
            levels, list(reversed(configs)), chunk_budget=20_000, workers=2
        )
        by_channels = {p.config.channels: p for p in backward}
        for point in forward:
            twin = by_channels[point.config.channels]
            assert _fingerprint(point.result) == _fingerprint(twin.result)
            assert point.power == twin.power

    @needs_pool
    def test_explorer_answers_unchanged_by_workers(self):
        from repro.analysis.explorer import minimum_channels
        from repro.usecase.levels import level_by_name

        level = level_by_name("3.2")
        assert minimum_channels(
            level, chunk_budget=20_000, workers=2
        ) == minimum_channels(level, chunk_budget=20_000)
