"""Determinism suite for the parallel execution layer.

The contract under test (docs/architecture.md, "parallel execution
layer"): running channels or sweep points across worker processes is
an implementation detail -- every observable result is bit-identical
to the sequential path, in the same order, for any worker count.
"""

import pickle

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.generators import sequential_stream
from repro.parallel import (
    AUTO_WORKERS,
    MAX_WORKERS,
    available_cpus,
    parallel_map,
    pool_supported,
    resolve_workers,
)

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="process pool unavailable on this platform"
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"worker failure on {x}")


# ---------------------------------------------------------------------------
# Worker-count semantics


class TestResolveWorkers:
    def test_none_means_in_process(self):
        assert resolve_workers(None, 8) == 1

    def test_one_means_in_process(self):
        assert resolve_workers(1, 8) == 1

    def test_auto_uses_cpu_count(self):
        assert resolve_workers(AUTO_WORKERS, 10**6) == available_cpus()

    def test_capped_by_job_count(self):
        assert resolve_workers(16, 4) == 4

    def test_zero_jobs_still_one_worker(self):
        assert resolve_workers(4, 0) == 1

    @pytest.mark.parametrize("bad", [-1, MAX_WORKERS + 1, 2.0, "4", True])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad, 8)

    def test_config_knob_validated(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(parallelism=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(parallelism=257)


# ---------------------------------------------------------------------------
# parallel_map


class TestParallelMap:
    def test_in_process_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            n * n for n in range(10)
        ]

    @needs_pool
    def test_pooled_preserves_order(self):
        assert parallel_map(_square, range(50), workers=4) == [
            n * n for n in range(50)
        ]

    @needs_pool
    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, [1, 2, 3], workers=2)

    @needs_pool
    def test_unpicklable_function_falls_back_in_process(self):
        # A lambda cannot cross the process boundary; the layer must
        # catch the PicklingError and deliver the identical result
        # in-process instead of failing.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=2) == [2, 3, 4]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


# ---------------------------------------------------------------------------
# Channel-level determinism


def _fingerprint(result):
    """Every observable field of a SimulationResult, channel by channel."""
    return [
        (
            ch.finish_cycle,
            ch.data_cycles,
            ch.chunks_read,
            ch.chunks_written,
            ch.counters,
            ch.states,
            ch.bank_accesses,
        )
        for ch in result.channels
    ]


def _write_read_mix(total_bytes, block_bytes=4096):
    """Alternating timed writes and backlogged reads."""
    from repro.controller.request import MasterTransaction, Op

    txns = []
    for i, addr in enumerate(range(0, total_bytes, block_bytes)):
        if i % 2:
            txns.append(MasterTransaction(Op.READ, addr, block_bytes))
        else:
            txns.append(
                MasterTransaction(
                    Op.WRITE, addr, block_bytes, arrival_ns=i * 100.0
                )
            )
    return txns


class TestChannelDeterminism:
    @needs_pool
    @pytest.mark.parametrize("channels", [1, 2, 4, 8])
    def test_parallel_matches_sequential(self, channels):
        txns = sequential_stream(2 * 2**20, block_bytes=4096)
        system = MultiChannelMemorySystem(SystemConfig(channels=channels))
        sequential = system.run(txns)
        parallel = system.run(txns, workers=4)
        assert _fingerprint(parallel) == _fingerprint(sequential)
        assert parallel.channels == sequential.channels
        assert parallel.access_time_ms == sequential.access_time_ms

    @needs_pool
    def test_config_parallelism_knob_matches_sequential(self):
        txns = sequential_stream(2 * 2**20, block_bytes=4096)
        base = SystemConfig(channels=4)
        sequential = MultiChannelMemorySystem(base).run(txns)
        knobbed = MultiChannelMemorySystem(base.with_parallelism(4)).run(txns)
        assert _fingerprint(knobbed) == _fingerprint(sequential)

    @needs_pool
    def test_mixed_timed_workload_matches_sequential(self):
        txns = _write_read_mix(2 * 2**20)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        sequential = system.run(txns)
        parallel = system.run(txns, workers=4)
        assert _fingerprint(parallel) == _fingerprint(sequential)

    def test_small_run_stays_in_process(self):
        # Below PARALLEL_MIN_CHUNKS the pool must not engage; the call
        # still succeeds and matches a plain run.
        txns = sequential_stream(64 * 1024, block_bytes=4096)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        assert _fingerprint(system.run(txns, workers=4)) == _fingerprint(
            system.run(txns)
        )

    def test_results_are_picklable(self):
        # The pool round trip relies on lossless pickling of results.
        txns = sequential_stream(64 * 1024, block_bytes=4096)
        result = MultiChannelMemorySystem(SystemConfig(channels=2)).run(txns)
        clone = pickle.loads(pickle.dumps(result))
        assert _fingerprint(clone) == _fingerprint(result)


# ---------------------------------------------------------------------------
# Sweep-level determinism


class TestSweepDeterminism:
    @needs_pool
    def test_sweep_parallel_matches_sequential(self):
        from repro.analysis.sweep import sweep_use_case
        from repro.usecase.levels import level_by_name

        levels = [level_by_name("3.1")]
        configs = [SystemConfig(channels=m) for m in (1, 2, 4)]
        sequential = sweep_use_case(levels, configs, chunk_budget=20_000)
        parallel = sweep_use_case(
            levels, configs, chunk_budget=20_000, workers=2
        )
        assert [p.config for p in parallel] == [p.config for p in sequential]
        for par, seq in zip(parallel, sequential):
            assert _fingerprint(par.result) == _fingerprint(seq.result)
            assert par.power == seq.power
            assert par.verdict is seq.verdict

    @needs_pool
    def test_sweep_order_independence(self):
        from repro.analysis.sweep import sweep_use_case
        from repro.usecase.levels import level_by_name

        levels = [level_by_name("3.1")]
        configs = [SystemConfig(channels=m) for m in (1, 2, 4)]
        forward = sweep_use_case(
            levels, configs, chunk_budget=20_000, workers=2
        )
        backward = sweep_use_case(
            levels, list(reversed(configs)), chunk_budget=20_000, workers=2
        )
        by_channels = {p.config.channels: p for p in backward}
        for point in forward:
            twin = by_channels[point.config.channels]
            assert _fingerprint(point.result) == _fingerprint(twin.result)
            assert point.power == twin.power

    @needs_pool
    def test_explorer_answers_unchanged_by_workers(self):
        from repro.analysis.explorer import minimum_channels
        from repro.usecase.levels import level_by_name

        level = level_by_name("3.2")
        assert minimum_channels(
            level, chunk_budget=20_000, workers=2
        ) == minimum_channels(level, chunk_budget=20_000)
