"""Tests for sweep progress heartbeats."""

import io

import pytest

from repro.telemetry.progress import (
    CallbackProgressSink,
    NullProgressSink,
    ProgressEvent,
    StreamProgressSink,
    SweepProgress,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def collect(tracker_kwargs, actions):
    """Run a scripted tracker and return the emitted events."""
    events = []
    clock = tracker_kwargs.pop("clock", FakeClock())
    tracker = SweepProgress(
        CallbackProgressSink(events.append), clock=clock, **tracker_kwargs
    )
    actions(tracker, clock)
    return events


class TestProgressEvent:
    def test_fraction_and_finished(self):
        event = ProgressEvent(
            done=3, total=4, failed=0, resumed=0, elapsed_s=1.0, eta_s=2.0
        )
        assert event.fraction == pytest.approx(0.75)
        assert not event.finished
        assert "3/4" in event.describe()
        assert "ETA" in event.describe()

    def test_finished_describe_reports_elapsed(self):
        event = ProgressEvent(
            done=4, total=4, failed=1, resumed=2, elapsed_s=9.0, eta_s=None
        )
        assert event.finished
        text = event.describe()
        assert "done in 9.0 s" in text
        assert "1 failed" in text
        assert "2 resumed" in text

    def test_zero_total_fraction(self):
        event = ProgressEvent(
            done=0, total=0, failed=0, resumed=0, elapsed_s=0.0, eta_s=None
        )
        assert event.fraction == 1.0


class TestSweepProgress:
    def test_emits_one_event_per_point_and_final_summary(self):
        def actions(tracker, clock):
            clock.advance(1.0)
            tracker.point_done({"index": 0})
            clock.advance(1.0)
            tracker.point_done({"index": 1})
            tracker.finish(failed=1)

        events = collect(dict(total=3), actions)
        assert [e.done for e in events] == [1, 2, 3]
        assert events[-1].failed == 1
        assert events[-1].finished

    def test_eta_from_this_runs_rate(self):
        def actions(tracker, clock):
            clock.advance(2.0)
            tracker.point_done()

        events = collect(dict(total=4), actions)
        # 1 point in 2 s -> 3 remaining at 2 s/point = 6 s.
        assert events[0].eta_s == pytest.approx(6.0)

    def test_resumed_points_excluded_from_eta_rate(self):
        def actions(tracker, clock):
            clock.advance(2.0)
            tracker.point_done()

        events = collect(dict(total=10, resumed=8), actions)
        # Warm-start announcement first, with no rate yet.
        assert events[0].done == 8
        assert events[0].eta_s is None
        # One *computed* point in 2 s -> 1 remaining -> 2 s, not the
        # absurd 9-points-in-0-s a resumed-inclusive rate would claim.
        assert events[1].eta_s == pytest.approx(2.0)

    def test_finish_skipped_when_last_point_already_reported(self):
        def actions(tracker, clock):
            tracker.point_done()
            tracker.finish(failed=0)

        events = collect(dict(total=1), actions)
        assert len(events) == 1
        assert events[0].finished

    def test_finish_emits_when_failures_close_the_sweep(self):
        def actions(tracker, clock):
            tracker.point_done()
            tracker.finish(failed=1)

        events = collect(dict(total=2), actions)
        assert [e.done for e in events] == [1, 2]
        assert events[-1].failed == 1


class TestStreamProgressSink:
    def make_event(self, done, total=10):
        return ProgressEvent(
            done=done, total=total, failed=0, resumed=0, elapsed_s=1.0, eta_s=None
        )

    def test_rate_limits_intermediate_events(self):
        stream = io.StringIO()
        clock = FakeClock()
        sink = StreamProgressSink(stream, min_interval_s=1.0, clock=clock)
        sink.emit(self.make_event(1))
        clock.advance(0.2)
        sink.emit(self.make_event(2))  # suppressed: 0.2 s < 1.0 s
        clock.advance(1.0)
        sink.emit(self.make_event(3))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "1/10" in lines[0] and "3/10" in lines[1]

    def test_final_event_bypasses_rate_limit(self):
        stream = io.StringIO()
        clock = FakeClock()
        sink = StreamProgressSink(stream, min_interval_s=60.0, clock=clock)
        sink.emit(self.make_event(1))
        sink.emit(self.make_event(10))  # finished: always written
        assert len(stream.getvalue().splitlines()) == 2


class TestNullSink:
    def test_discards_everything(self):
        sink = NullProgressSink()
        sink.emit(
            ProgressEvent(
                done=1, total=2, failed=0, resumed=0, elapsed_s=0.0, eta_s=None
            )
        )  # must simply not raise
