"""Tests for the metrics registry and its instruments."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("x").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(3.0)
        g.set(7.5)
        assert registry.as_dict()["gauges"]["depth"] == 7.5


class TestTimer:
    def test_record_accumulates_seconds_and_calls(self):
        t = Timer("t")
        t.record(0.5)
        t.record(0.25)
        assert t.seconds == pytest.approx(0.75)
        assert t.calls == 2

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Timer("t").record(-0.1)

    def test_time_context_manager_records_one_call(self):
        t = Timer("t")
        with t.time():
            pass
        assert t.calls == 1
        assert t.seconds >= 0.0


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.record(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestMetricsRegistry:
    def test_instruments_are_lazy_and_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")

    def test_as_dict_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b.second").add(2)
        registry.counter("a.first").add(1)
        registry.timer("t").record(0.5)
        registry.histogram("h").record(4.0)
        snapshot = registry.as_dict()
        assert list(snapshot["counters"]) == ["a.first", "b.second"]
        assert snapshot["timers"]["t"] == {"seconds": 0.5, "calls": 1}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["mean"] == pytest.approx(4.0)

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        # Shared singletons: no per-name allocation on the disabled path.
        assert registry.counter("a") is registry.counter("b")
        registry.counter("a").add(10)
        registry.gauge("g").set(1.0)
        registry.timer("t").record(2.0)
        registry.histogram("h").record(3.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["timers"] == {}
        assert snapshot["histograms"] == {}

    def test_disabled_null_counter_never_mutates(self):
        registry = MetricsRegistry(enabled=False)
        null = registry.counter("x")
        null.add(5)
        assert null.value == 0
