"""Tests for phase-scoped profiling and the profile report."""

import pytest

from repro.telemetry.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    ProfileReport,
    PhaseStat,
)


class FakeClock:
    """Deterministic clock: each call advances by the scripted steps."""

    def __init__(self, *readings):
        self._readings = list(readings)

    def __call__(self):
        return self._readings.pop(0)


class TestPhaseProfiler:
    def test_phase_attributes_clock_delta(self):
        profiler = PhaseProfiler(clock=FakeClock(10.0, 12.5))
        with profiler.phase("engine"):
            pass
        report = profiler.report()
        assert report.seconds("engine") == pytest.approx(2.5)
        assert report.phases[0].calls == 1

    def test_phases_accumulate_across_entries(self):
        profiler = PhaseProfiler(clock=FakeClock(0.0, 1.0, 5.0, 7.0))
        with profiler.phase("engine"):
            pass
        with profiler.phase("engine"):
            pass
        report = profiler.report()
        assert report.seconds("engine") == pytest.approx(3.0)
        assert report.phases[0].calls == 2

    def test_phase_records_even_when_body_raises(self):
        profiler = PhaseProfiler(clock=FakeClock(0.0, 4.0))
        with pytest.raises(RuntimeError):
            with profiler.phase("engine"):
                raise RuntimeError("boom")
        assert profiler.report().seconds("engine") == pytest.approx(4.0)

    def test_add_folds_external_measurements(self):
        profiler = PhaseProfiler()
        profiler.add("pool", 1.5, calls=4)
        profiler.add("pool", 0.5, calls=4)
        report = profiler.report()
        assert report.seconds("pool") == pytest.approx(2.0)
        assert report.phases[0].calls == 8

    def test_add_clamps_negative_noise_to_zero(self):
        profiler = PhaseProfiler()
        profiler.add("pool", -0.001)
        assert profiler.report().seconds("pool") == 0.0


class TestNullProfiler:
    def test_records_nothing(self):
        profiler = NullProfiler()
        with profiler.phase("engine"):
            pass
        profiler.add("pool", 3.0)
        assert profiler.report().phases == ()

    def test_shared_instance_reuses_one_context_manager(self):
        assert NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b")


class TestProfileReport:
    def make_report(self):
        return ProfileReport(
            phases=(
                PhaseStat("load", 1.0, 3),
                PhaseStat("engine", 3.0, 3),
            )
        )

    def test_total_seconds_share(self):
        report = self.make_report()
        assert report.total_s == pytest.approx(4.0)
        assert report.seconds("engine") == pytest.approx(3.0)
        assert report.seconds("missing") == 0.0
        assert report.share("engine") == pytest.approx(0.75)

    def test_as_dict_matches_export_schema(self):
        d = self.make_report().as_dict()
        assert d["total_s"] == pytest.approx(4.0)
        assert {p["name"] for p in d["phases"]} == {"load", "engine"}
        for p in d["phases"]:
            assert set(p) == {"name", "seconds", "calls", "share"}
            assert 0.0 <= p["share"] <= 1.0

    def test_format_slowest_first_with_total_row(self):
        text = self.make_report().format()
        lines = text.splitlines()
        assert lines[0].startswith("phase")
        assert lines[2].startswith("engine")  # slowest first
        assert lines[-1].startswith("total")

    def test_format_empty(self):
        assert "no phases" in ProfileReport(phases=()).format()

    def test_empty_report_share_is_zero(self):
        empty = ProfileReport(phases=())
        assert empty.total_s == 0.0
        assert empty.share("anything") == 0.0
