"""Tests for the Telemetry session object."""

from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.session import Telemetry


class TestTelemetry:
    def test_enabled_session_collects(self):
        telemetry = Telemetry.enabled()
        assert telemetry.is_enabled
        telemetry.counter("a").add(2)
        with telemetry.phase("p"):
            pass
        assert telemetry.registry.as_dict()["counters"]["a"] == 2
        assert telemetry.profile_report().seconds("p") >= 0.0
        assert [s.name for s in telemetry.profile_report().phases] == ["p"]

    def test_disabled_session_records_nothing(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.is_enabled
        telemetry.counter("a").add(2)
        telemetry.gauge("g").set(1.0)
        telemetry.timer("t").record(1.0)
        telemetry.histogram("h").record(1.0)
        with telemetry.phase("p"):
            pass
        assert telemetry.registry.as_dict()["counters"] == {}
        assert telemetry.profile_report().phases == ()
        assert telemetry.profiler is NULL_PROFILER

    def test_default_construction_is_enabled(self):
        assert Telemetry().is_enabled

    def test_custom_parts_are_kept(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler()
        telemetry = Telemetry(registry, profiler)
        assert telemetry.registry is registry
        assert telemetry.profiler is profiler
