"""End-to-end telemetry: threading through the simulation stack.

The two contracts under test:

1. *Completeness*: an enabled session threaded through a real (tiny)
   Fig. 3 point collects the documented phases and metrics, and the
   exported payload round-trips schema-valid.
2. *Transparency*: telemetry on, off or absent produces bit-identical
   ``SimulationResult``\\ s -- observation must never perturb the
   simulation.
"""

import json

import pytest

from repro.analysis.sweep import simulate_use_case, sweep_use_case
from repro.core.config import SystemConfig
from repro.telemetry import (
    CallbackProgressSink,
    Telemetry,
    validate_metrics,
    write_metrics,
)
from repro.usecase.levels import level_by_name

#: Tiny but real Fig. 3 point: 720p30 on 2 channels, 1 % of a frame.
LEVEL = level_by_name("3.1")
CONFIG = SystemConfig(channels=2, freq_mhz=400.0)
SCALE = 0.01


class TestPointTelemetry:
    def test_phases_and_metrics_collected(self):
        telemetry = Telemetry.enabled()
        point = simulate_use_case(LEVEL, CONFIG, scale=SCALE, telemetry=telemetry)
        report = telemetry.profile_report()
        recorded = {stat.name for stat in report.phases}
        assert {
            "load.build",
            "load.scale",
            "load.generate",
            "system.interleave",
            "system.engine",
            "power.integrate",
        } <= recorded
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["sim.points"] == 1
        assert counters["system.runs"] == 1
        assert counters["system.transactions"] > 0
        assert counters["engine.reads"] > 0
        # The counter mirrors the result's own statistics exactly.
        assert counters["engine.row_hits"] == point.result.row_hits
        assert counters["engine.bank_conflicts"] == point.result.bank_conflicts
        hist = telemetry.registry.as_dict()["histograms"]
        assert hist["system.channel_finish_cycles"]["count"] == CONFIG.channels

    def test_golden_metrics_export_round_trip(self, tmp_path):
        """The --metrics-out document for one tiny Fig. 3 point carries
        every documented key and survives a JSON round trip."""
        telemetry = Telemetry.enabled()
        simulate_use_case(LEVEL, CONFIG, scale=SCALE, telemetry=telemetry)
        path = tmp_path / "metrics.json"
        payload = write_metrics(path, "fig3", telemetry)
        assert validate_metrics(payload) == []
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == payload
        # Golden key set: the documented schema, nothing missing.
        assert set(loaded) == {
            "schema",
            "command",
            "generated_by",
            "counters",
            "gauges",
            "timers",
            "histograms",
            "profile",
        }
        for name in (
            "engine.row_hits",
            "engine.row_misses",
            "engine.bank_conflicts",
            "engine.queue_stalls",
            "engine.power_state_transitions",
            "system.runs",
            "system.transactions",
            "system.chunks_queued",
            "sim.points",
        ):
            assert name in loaded["counters"], name
        phase_names = {p["name"] for p in loaded["profile"]["phases"]}
        assert "system.engine" in phase_names

    def test_results_bit_identical_with_and_without_telemetry(self):
        untapped = simulate_use_case(LEVEL, CONFIG, scale=SCALE)
        enabled = simulate_use_case(
            LEVEL, CONFIG, scale=SCALE, telemetry=Telemetry.enabled()
        )
        disabled = simulate_use_case(
            LEVEL, CONFIG, scale=SCALE, telemetry=Telemetry.disabled()
        )
        # ChannelResult is a plain dataclass: == compares every field,
        # including counters, state residencies and the new stall /
        # conflict statistics.
        assert untapped.result.channels == enabled.result.channels
        assert untapped.result.channels == disabled.result.channels
        assert untapped.power == enabled.power == disabled.power
        assert untapped.verdict == enabled.verdict == disabled.verdict


class TestSweepTelemetry:
    def test_sweep_counters_and_heartbeats(self):
        telemetry = Telemetry.enabled()
        events = []
        report = sweep_use_case(
            [LEVEL],
            [CONFIG, CONFIG.with_frequency(200.0)],
            scale=SCALE,
            telemetry=telemetry,
            progress=CallbackProgressSink(events.append),
        )
        assert len(report) == 2
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["sweep.points_total"] == 2
        assert counters["sweep.points_completed"] == 2
        assert counters["sweep.points_failed"] == 0
        assert counters["sim.points"] == 2  # in-process: per-point taps land
        assert telemetry.registry.as_dict()["timers"]["sweep.run"]["calls"] == 1
        # One heartbeat per point; the last one closed the sweep.
        assert [e.done for e in events] == [1, 2]
        assert events[-1].finished
        assert events[0].coords["level"] == LEVEL.name

    def test_sweep_resume_reports_resumed_points(self, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        sweep_use_case([LEVEL], [CONFIG], scale=SCALE, checkpoint=checkpoint)
        telemetry = Telemetry.enabled()
        events = []
        sweep_use_case(
            [LEVEL],
            [CONFIG],
            scale=SCALE,
            checkpoint=checkpoint,
            telemetry=telemetry,
            progress=CallbackProgressSink(events.append),
        )
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["sweep.points_resumed"] == 1
        assert counters["sweep.points_completed"] == 0
        # Warm-start announcement: everything already accounted for.
        assert events[0].resumed == 1
        assert events[0].finished

    def test_first_interval_excludes_resume_scan_and_setup(
        self, tmp_path, monkeypatch
    ):
        # The first ``sweep.point_interval_seconds`` sample must
        # measure point throughput from dispatch start, not absorb the
        # checkpoint resume scan or pool setup done before dispatch.
        # Fake clock: frozen except where the wrappers below advance
        # it, so any pre-dispatch second billed to a point is visible.
        import time as time_module

        from repro.analysis import sweep as sweep_module
        from repro.resilience.checkpoint import SweepCheckpoint

        checkpoint = tmp_path / "sweep.ckpt"
        sweep_use_case(
            [LEVEL],
            [CONFIG, CONFIG.with_frequency(200.0)],
            scale=SCALE,
            checkpoint=checkpoint,
        )
        # Drop one point so the resumed sweep still computes work (a
        # fully warm sweep records no interval samples at all).
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:1]) + "\n")

        clock = [1000.0]
        monkeypatch.setattr(time_module, "monotonic", lambda: clock[0])

        real_load = SweepCheckpoint.load

        def slow_load(self):
            clock[0] += 100.0  # pretend the resume scan took 100 s
            return real_load(self)

        monkeypatch.setattr(SweepCheckpoint, "load", slow_load)

        real_resolve = sweep_module.resolve_workers

        def slow_setup(*args, **kwargs):
            clock[0] += 50.0  # pretend pre-dispatch setup took 50 s
            return real_resolve(*args, **kwargs)

        monkeypatch.setattr(sweep_module, "resolve_workers", slow_setup)

        telemetry = Telemetry.enabled()
        sweep_use_case(
            [LEVEL],
            [CONFIG, CONFIG.with_frequency(200.0)],
            scale=SCALE,
            checkpoint=checkpoint,
            telemetry=telemetry,
        )
        stats = telemetry.registry.as_dict()
        assert stats["counters"]["sweep.points_resumed"] == 1
        intervals = stats["histograms"]["sweep.point_interval_seconds"]
        assert intervals["count"] == 1
        assert intervals["max"] < 50.0

    def test_sweep_results_bit_identical_with_telemetry(self):
        plain = sweep_use_case([LEVEL], [CONFIG], scale=SCALE)
        tapped = sweep_use_case(
            [LEVEL], [CONFIG], scale=SCALE, telemetry=Telemetry.enabled()
        )
        assert plain[0].result.channels == tapped[0].result.channels
        assert plain[0].power == tapped[0].power
