"""Tests for the metrics export schema, writer and validator."""

import json

import pytest

from repro.telemetry.export import (
    METRICS_SCHEMA,
    REQUIRED_KEYS,
    main as validator_main,
    metrics_payload,
    validate_metrics,
    validate_metrics_file,
    write_metrics,
)
from repro.telemetry.session import Telemetry


def make_session():
    telemetry = Telemetry.enabled()
    telemetry.counter("engine.row_hits").add(7)
    telemetry.gauge("queue.depth").set(3.5)
    telemetry.timer("sweep.run").record(1.25)
    telemetry.histogram("system.channel_finish_cycles").record(100.0)
    with telemetry.phase("system.engine"):
        pass
    return telemetry


class TestPayload:
    def test_payload_carries_every_documented_key(self):
        payload = metrics_payload("fig3", make_session())
        assert set(REQUIRED_KEYS) <= set(payload)
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["command"] == "fig3"
        assert payload["generated_by"].startswith("repro ")
        assert payload["counters"]["engine.row_hits"] == 7
        assert payload["timers"]["sweep.run"] == {"seconds": 1.25, "calls": 1}
        assert payload["profile"]["phases"][0]["name"] == "system.engine"

    def test_payload_is_schema_valid(self):
        assert validate_metrics(metrics_payload("fig3", make_session())) == []

    def test_disabled_session_payload_is_valid_and_empty(self):
        payload = metrics_payload("fig3", Telemetry.disabled())
        assert validate_metrics(payload) == []
        assert payload["counters"] == {}
        assert payload["profile"]["phases"] == []

    def test_write_metrics_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        payload = write_metrics(path, "fig4", make_session())
        assert json.loads(path.read_text(encoding="utf-8")) == payload
        assert validate_metrics_file(path) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_metrics([1, 2, 3])
        assert validate_metrics(None)

    def test_reports_missing_keys(self):
        problems = validate_metrics({"schema": METRICS_SCHEMA})
        missing = [p for p in problems if p.startswith("missing required key")]
        assert len(missing) == len(REQUIRED_KEYS) - 1

    def test_rejects_wrong_schema_string(self):
        payload = metrics_payload("x", Telemetry.disabled())
        payload["schema"] = "repro-metrics/99"
        assert any("schema" in p for p in validate_metrics(payload))

    def test_rejects_non_integer_counter(self):
        payload = metrics_payload("x", Telemetry.disabled())
        payload["counters"]["engine.row_hits"] = 1.5
        assert any("expected an integer" in p for p in validate_metrics(payload))

    def test_rejects_negative_timer(self):
        payload = metrics_payload("x", Telemetry.disabled())
        payload["timers"]["t"] = {"seconds": -1.0, "calls": 1}
        assert any("t.seconds" in p for p in validate_metrics(payload))

    def test_rejects_out_of_range_phase_share(self):
        payload = metrics_payload("x", Telemetry.disabled())
        payload["profile"]["phases"] = [
            {"name": "engine", "seconds": 1.0, "calls": 1, "share": 1.5}
        ]
        assert any("share" in p for p in validate_metrics(payload))

    def test_file_validator_flags_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert validate_metrics_file(path)

    def test_cli_ok_and_failure_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_metrics(good, "fig3", Telemetry.disabled())
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert validator_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert validator_main([str(good), str(bad)]) == 1
        assert validator_main([]) == 2
