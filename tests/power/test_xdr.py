"""Tests for the XDR reference model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.xdr import XDR_CELL_BE, XdrReference


class TestCellBeReference:
    def test_published_numbers(self):
        # Section IV: 1.6 GHz, 25.6 GB/s, typically 5 W.
        assert XDR_CELL_BE.bandwidth_bytes_per_s == pytest.approx(25.6e9)
        assert XDR_CELL_BE.power_w == pytest.approx(5.0)
        assert XDR_CELL_BE.clock_mhz == pytest.approx(1600.0)

    def test_power_ratio(self):
        # The paper's headline: 205 mW is ~4 % of the XDR power.
        assert XDR_CELL_BE.power_ratio(0.205) == pytest.approx(0.041)

    def test_bandwidth_ratio(self):
        assert XDR_CELL_BE.bandwidth_ratio(25.0e9) == pytest.approx(0.977, abs=1e-3)

    def test_energy_per_byte(self):
        assert XDR_CELL_BE.energy_per_byte_j() == pytest.approx(5.0 / 25.6e9)


class TestValidation:
    def test_rejects_bad_reference(self):
        with pytest.raises(ConfigurationError):
            XdrReference("x", bandwidth_bytes_per_s=0, power_w=5, clock_mhz=100)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ConfigurationError):
            XDR_CELL_BE.power_ratio(-1.0)
        with pytest.raises(ConfigurationError):
            XDR_CELL_BE.bandwidth_ratio(-1.0)
