"""Tests for the standby power analysis."""

import pytest

from repro.core.config import SystemConfig
from repro.power.standby import standby_power


class TestStandbyPower:
    def test_state_ordering(self):
        report = standby_power(SystemConfig(channels=4, freq_mhz=400.0))
        # Self refresh < power-down < raw standby.
        assert report.self_refresh_w < report.precharge_powerdown_w
        assert report.precharge_powerdown_w < report.precharge_standby_w

    def test_linear_in_channels(self):
        one = standby_power(SystemConfig(channels=1))
        eight = standby_power(SystemConfig(channels=8))
        assert eight.self_refresh_w == pytest.approx(8 * one.self_refresh_w)
        assert eight.precharge_powerdown_w == pytest.approx(
            8 * one.precharge_powerdown_w
        )

    def test_self_refresh_is_sub_milliwatt_per_channel(self):
        # IDD6 = 0.35 mA at 1.35 V-scaled: well under a milliwatt --
        # the reason handhelds can keep DRAM contents alive for hours.
        report = standby_power(SystemConfig(channels=1))
        assert report.self_refresh_w < 1e-3

    def test_powerdown_saving_substantial(self):
        report = standby_power(SystemConfig(channels=8))
        assert report.powerdown_saving > 0.5

    def test_best_state(self):
        report = standby_power(SystemConfig(channels=2))
        assert report.best_state_w == report.self_refresh_w

    def test_standard_ddr2_idles_hotter(self):
        from repro.dram.datasheet import STANDARD_DDR2

        mobile = standby_power(SystemConfig(channels=8))
        standard = standby_power(
            SystemConfig(channels=8, device=STANDARD_DDR2)
        )
        assert standard.self_refresh_w > 5 * mobile.self_refresh_w
        assert standard.precharge_powerdown_w > 3 * mobile.precharge_powerdown_w

    def test_summary_renders(self):
        text = standby_power(SystemConfig(channels=2)).summary()
        assert "self-refresh" in text
        assert "mW" in text
