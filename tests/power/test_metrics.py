"""Tests for energy-per-bit metrics."""

import pytest

from repro.analysis.sweep import simulate_use_case
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.power.metrics import energy_per_bit, reference_pj_per_bit
from repro.power.xdr import XDR_CELL_BE
from repro.usecase.levels import level_by_name

BUDGET = 40_000


def metrics_for(level_name, channels):
    point = simulate_use_case(
        level_by_name(level_name),
        SystemConfig(channels=channels, freq_mhz=400.0),
        chunk_budget=BUDGET,
    )
    return energy_per_bit(point.result, point.power)


class TestReference:
    def test_xdr_pj_per_bit(self):
        # 5 W / 25.6 GB/s = 195.3 pJ/B = 24.4 pJ/bit.
        assert reference_pj_per_bit(XDR_CELL_BE) == pytest.approx(24.41, abs=0.05)


class TestEnergyPerBit:
    def test_mobile_ddr_beats_xdr_per_bit(self):
        # The paper's comparison in portable units: at its heaviest
        # feasible load the 8-channel mobile memory moves bits several
        # times cheaper than the XDR reference point.
        m = metrics_for("5.2", 8)
        assert m.pj_per_bit < 0.6 * reference_pj_per_bit(XDR_CELL_BE)

    def test_light_loads_cost_more_per_bit(self):
        # Idle background energy is amortised over fewer bits.
        light = metrics_for("3.1", 8)
        heavy = metrics_for("5.2", 8)
        assert light.pj_per_bit > heavy.pj_per_bit

    def test_busy_cost_below_average_cost_when_idle_exists(self):
        m = metrics_for("3.1", 1)
        assert m.busy_pj_per_bit <= m.pj_per_bit

    def test_bits_match_table1(self):
        from repro.usecase.pipeline import VideoRecordingUseCase

        m = metrics_for("3.1", 1)
        expected = VideoRecordingUseCase(level_by_name("3.1")).total_bits_per_frame()
        assert m.bits_per_frame == pytest.approx(expected, rel=0.01)

    def test_ratio_to(self):
        m = metrics_for("3.1", 1)
        assert m.ratio_to(m.pj_per_bit) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            m.ratio_to(0.0)
