"""Tests for frame-average power assembly (the Fig. 5 metric)."""

import dataclasses

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.dram.powerstate import NoPowerDown
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.power.report import FramePowerReport, compute_frame_power
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


def run_720p30(channels=1, scale=1 / 32, power_down=None):
    config = SystemConfig(channels=channels, freq_mhz=400.0)
    if power_down is not None:
        config = dataclasses.replace(config, power_down=power_down)
    uc = VideoRecordingUseCase(level_by_name("3.1"))
    load = VideoRecordingLoadModel(uc)
    result = MultiChannelMemorySystem(config).run(
        load.generate_frame(scale=scale), scale=scale
    )
    return config, result


class TestComposition:
    def test_total_is_dram_plus_interface(self):
        config, result = run_720p30()
        report = compute_frame_power(config, result, 33.333)
        assert report.total_power_w == pytest.approx(
            report.dram_power_w + report.interface_power_w
        )
        assert report.total_power_mw == pytest.approx(report.total_power_w * 1e3)

    def test_interface_is_small_fraction(self):
        # Fig. 5: the dark interface slice sits thinly on top of the
        # bars (a few mW per active channel).
        config, result = run_720p30()
        report = compute_frame_power(config, result, 33.333)
        assert report.interface_power_w < 0.05 * report.dram_power_w + 5e-3

    def test_energy_per_frame_consistent(self):
        config, result = run_720p30()
        report = compute_frame_power(config, result, 33.333)
        window_s = max(report.access_time_ms, report.frame_period_ms) * 1e-3
        assert report.energy_per_frame_j == pytest.approx(
            report.total_power_w * window_s
        )

    def test_scaled_and_finer_scaled_agree(self):
        config, coarse = run_720p30(scale=1 / 16)
        _, fine = run_720p30(scale=1 / 64)
        p_coarse = compute_frame_power(config, coarse, 33.333).total_power_w
        p_fine = compute_frame_power(config, fine, 33.333).total_power_w
        assert p_coarse == pytest.approx(p_fine, rel=0.03)


class TestIdleAccounting:
    def test_more_idle_channels_add_little_power(self):
        # The Fig. 5 story: 8 channels cost only modestly more than 1
        # on the same workload, because idle channels power down.
        c1, r1 = run_720p30(channels=1)
        c8, r8 = run_720p30(channels=8)
        p1 = compute_frame_power(c1, r1, 33.333).total_power_w
        p8 = compute_frame_power(c8, r8, 33.333).total_power_w
        assert p8 > p1
        assert p8 < 1.8 * p1

    def test_no_power_down_costs_much_more_when_idle(self):
        # Conclusions: "aggressive use of power-down modes is
        # necessary for energy efficient operation".
        c_pd, r_pd = run_720p30(channels=8)
        c_np, r_np = run_720p30(channels=8, power_down=NoPowerDown())
        p_pd = compute_frame_power(c_pd, r_pd, 33.333).total_power_w
        p_np = compute_frame_power(c_np, r_np, 33.333).total_power_w
        assert p_np > 1.5 * p_pd

    def test_idle_window_reduces_average_power(self):
        # The same traffic averaged over a longer frame period means
        # lower average power (more power-down time).
        config, result = run_720p30()
        p30 = compute_frame_power(config, result, 33.333).total_power_w
        p15 = compute_frame_power(config, result, 66.667).total_power_w
        assert p15 < p30


class TestRealTimeFlags:
    def test_meets_realtime(self):
        config, result = run_720p30(channels=4)
        report = compute_frame_power(config, result, 33.333)
        assert report.meets_realtime
        assert report.meets_realtime_with_margin()

    def test_misses_realtime(self):
        config, result = run_720p30(channels=1)
        report = compute_frame_power(config, result, 5.0)  # absurd 200 fps
        assert not report.meets_realtime

    def test_margin_validation(self):
        config, result = run_720p30()
        report = compute_frame_power(config, result, 33.333)
        with pytest.raises(ConfigurationError):
            report.meets_realtime_with_margin(margin=1.0)

    def test_rejects_bad_frame_period(self):
        config, result = run_720p30()
        with pytest.raises(ConfigurationError):
            compute_frame_power(config, result, 0.0)

    def test_overrun_averages_over_access_time(self):
        # When the access time exceeds the frame period the average
        # window is the access time itself (no negative idle).
        config, result = run_720p30(channels=1)
        report = compute_frame_power(config, result, 1.0)
        assert report.access_time_ms > report.frame_period_ms
        assert report.total_power_w > 0
