"""Tests for equation (1): interface power."""

import pytest

from repro.errors import ConfigurationError
from repro.power.interface import (
    PAPER_INTERFACE,
    InterfaceParameters,
    interface_energy_j,
    interface_power_w,
)


class TestPaperValues:
    def test_parameter_defaults(self):
        # Section III's stated assumptions.
        assert PAPER_INTERFACE.pins == 36
        assert PAPER_INTERFACE.capacitance_f == pytest.approx(0.4e-12)
        assert PAPER_INTERFACE.voltage_v == pytest.approx(1.2)
        assert PAPER_INTERFACE.activity == pytest.approx(0.5)

    def test_approximately_5mw_at_400mhz(self):
        # "with 400 MHz clock frequency, these assumptions result in
        # the approximate interface power of 5 mW per channel" --
        # the exact equation gives 4.15 mW.
        p = interface_power_w(400.0)
        assert p == pytest.approx(4.147e-3, rel=1e-3)
        assert 3e-3 < p < 6e-3

    def test_linear_in_frequency(self):
        assert interface_power_w(400.0) == pytest.approx(2 * interface_power_w(200.0))

    def test_quadratic_in_voltage(self):
        doubled = InterfaceParameters(voltage_v=2.4)
        assert interface_power_w(400.0, doubled) == pytest.approx(
            4 * interface_power_w(400.0)
        )

    def test_linear_in_pins_capacitance_activity(self):
        base = interface_power_w(400.0)
        assert interface_power_w(
            400.0, InterfaceParameters(pins=72)
        ) == pytest.approx(2 * base)
        assert interface_power_w(
            400.0, InterfaceParameters(capacitance_f=0.8e-12)
        ) == pytest.approx(2 * base)
        assert interface_power_w(
            400.0, InterfaceParameters(activity=1.0)
        ) == pytest.approx(2 * base)


class TestValidation:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            interface_power_w(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            InterfaceParameters(pins=0)
        with pytest.raises(ConfigurationError):
            InterfaceParameters(capacitance_f=0.0)
        with pytest.raises(ConfigurationError):
            InterfaceParameters(voltage_v=-1.2)
        with pytest.raises(ConfigurationError):
            InterfaceParameters(activity=1.5)


class TestEnergy:
    def test_energy_over_window(self):
        # 4.147 mW over 1 ms = 4.147 uJ.
        e = interface_energy_j(400.0, 1e6)
        assert e == pytest.approx(4.147e-6, rel=1e-3)

    def test_zero_window(self):
        assert interface_energy_j(400.0, 0.0) == 0.0

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigurationError):
            interface_energy_j(400.0, -1.0)
