"""Run the docstring examples embedded in the library."""

import doctest

import pytest

import repro.analysis.realtime
import repro.units

MODULES_WITH_DOCTESTS = [repro.units, repro.analysis.realtime]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} should carry doctest examples"
    assert result.failed == 0
