"""Tests for the reproduction report generator."""

import pytest

from repro.analysis.reportgen import generate_report, write_report

BUDGET = 40_000


@pytest.fixture(scope="module")
def report():
    return generate_report(chunk_budget=BUDGET)


class TestGenerateReport:
    def test_all_anchors_hold_at_defaults(self, report):
        _, anchors = report
        assert anchors
        failing = [a.name for a in anchors if not a.holds]
        assert not failing, failing

    def test_markdown_contains_every_artifact(self, report):
        markdown, _ = report
        for heading in ("Table I", "Table II", "Fig. 3", "Fig. 4", "Fig. 5",
                        "XDR", "Paper anchors"):
            assert heading in markdown

    def test_anchor_table_rendered(self, report):
        markdown, anchors = report
        assert f"**{len(anchors)}/{len(anchors)} anchors reproduced.**" in markdown
        for a in anchors:
            assert a.name in markdown

    def test_measured_values_recorded(self, report):
        _, anchors = report
        t1 = next(a for a in anchors if a.name == "Table I level 3.1")
        assert "GB/s" in t1.measured
        assert "1.9" in t1.expected


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "REPORT.md"
        anchors = write_report(path, chunk_budget=BUDGET)
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert len(anchors) >= 10
