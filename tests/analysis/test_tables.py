"""Tests for ASCII table formatting."""

import pytest

from repro.analysis.tables import format_kv, format_series, format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        out = format_table([["name", "v"], ["long-label", "1"], ["x", "100"]])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        # Numeric column right-aligned.
        assert lines[2].endswith("1")
        assert lines[3].endswith("100")

    def test_no_header_rule(self):
        out = format_table([["a", "b"], ["c", "d"]], header_rule=False)
        assert "---" not in out

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            format_table([])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table([["a", "b"], ["c"]])

    def test_min_width(self):
        out = format_table([["a", "b"]], min_width=10)
        assert len(out.split("\n")[0]) >= 20


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"a": 1, "long": 2})
        lines = out.split("\n")
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        assert format_kv({"a": 1}, title="T").startswith("T")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            format_kv({})


class TestFormatSeries:
    def test_basic(self):
        out = format_series("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        assert "s1" in out and "s2" in out
        assert "40" in out

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("x", [1, 2], {"s": [1]})
