"""Tests for the one-call validation harness."""

import dataclasses

import pytest

from repro.analysis.validate import validate_configuration
from repro.controller.mapping import AddressMultiplexing
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.usecase.levels import level_by_name

BUDGET = 40_000


class TestValidateConfiguration:
    @pytest.mark.parametrize("channels", [1, 2, 4, 8])
    def test_paper_design_points_validate(self, channels):
        summary = validate_configuration(
            level_by_name("3.1"),
            SystemConfig(channels=channels, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        assert summary.all_passed, summary.failures()

    @pytest.mark.parametrize(
        "scheme", list(AddressMultiplexing), ids=lambda s: s.value
    )
    def test_every_mapping_validates(self, scheme):
        config = dataclasses.replace(
            SystemConfig(channels=2, freq_mhz=400.0), multiplexing=scheme
        )
        summary = validate_configuration(
            level_by_name("3.1"), config, chunk_budget=BUDGET
        )
        assert summary.all_passed, summary.failures()

    @pytest.mark.parametrize("freq", [200.0, 333.0, 533.0])
    def test_every_clock_validates(self, freq):
        summary = validate_configuration(
            level_by_name("3.1"),
            SystemConfig(channels=2, freq_mhz=freq),
            chunk_budget=BUDGET,
        )
        assert summary.all_passed, summary.failures()

    def test_1080p_validates(self):
        summary = validate_configuration(
            level_by_name("4"),
            SystemConfig(channels=4, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        assert summary.all_passed, summary.failures()

    def test_four_checks_present(self):
        summary = validate_configuration(
            level_by_name("3.1"), SystemConfig(channels=1), chunk_budget=BUDGET
        )
        names = [c.name for c in summary.checks]
        assert names == [
            "byte conservation",
            "protocol audit",
            "locality agreement",
            "analytic agreement",
        ]

    def test_impossible_tolerance_fails_cleanly(self):
        summary = validate_configuration(
            level_by_name("3.1"),
            SystemConfig(channels=1),
            chunk_budget=BUDGET,
            analytic_tolerance=1e-9,
        )
        assert not summary.all_passed
        assert any("analytic" in f for f in summary.failures())

    def test_tolerance_validation(self):
        with pytest.raises(ConfigurationError):
            validate_configuration(
                level_by_name("3.1"),
                SystemConfig(channels=1),
                analytic_tolerance=0.0,
            )

    def test_format_renders(self):
        summary = validate_configuration(
            level_by_name("3.1"), SystemConfig(channels=1), chunk_budget=BUDGET
        )
        text = summary.format()
        assert "[ok" in text
        assert "protocol audit" in text
