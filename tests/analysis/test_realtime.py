"""Tests for real-time verdicts."""

import pytest

from repro.analysis.realtime import PAPER_MARGIN, RealTimeVerdict, realtime_verdict
from repro.errors import ConfigurationError


class TestVerdicts:
    def test_comfortable_pass(self):
        assert realtime_verdict(20.0, 33.333) is RealTimeVerdict.PASS

    def test_marginal_inside_margin_band(self):
        # Meets 33.3 ms but leaves less than 15 % for processing --
        # the paper's Fig. 3 "MARGINAL" annotation.
        assert realtime_verdict(30.0, 33.333) is RealTimeVerdict.MARGINAL

    def test_fail_over_period(self):
        assert realtime_verdict(34.0, 33.333) is RealTimeVerdict.FAIL

    def test_boundary_exactly_at_period(self):
        assert realtime_verdict(33.333, 33.333) is RealTimeVerdict.MARGINAL

    def test_boundary_exactly_at_margin(self):
        period = 100.0
        at_margin = period * (1.0 - PAPER_MARGIN)
        assert realtime_verdict(at_margin, period) is RealTimeVerdict.PASS
        assert realtime_verdict(at_margin + 0.01, period) is RealTimeVerdict.MARGINAL

    def test_custom_margin(self):
        assert realtime_verdict(80.0, 100.0, margin=0.3) is RealTimeVerdict.MARGINAL
        assert realtime_verdict(80.0, 100.0, margin=0.1) is RealTimeVerdict.PASS

    def test_feasible_property(self):
        assert RealTimeVerdict.PASS.feasible
        assert RealTimeVerdict.MARGINAL.feasible
        assert not RealTimeVerdict.FAIL.feasible

    def test_paper_margin_is_15_percent(self):
        assert PAPER_MARGIN == pytest.approx(0.15)


class TestValidation:
    def test_rejects_negative_access_time(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(-1.0, 33.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(1.0, 0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(1.0, 33.0, margin=1.0)

    @pytest.mark.parametrize(
        "access_time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_non_finite_access_time(self, access_time):
        # A NaN access time compares False against every threshold and
        # would otherwise fall through to PASS -- the one verdict a
        # corrupted measurement must never earn.
        with pytest.raises(ConfigurationError, match="finite"):
            realtime_verdict(access_time, 33.333)

    @pytest.mark.parametrize("period", [float("nan"), float("inf")])
    def test_rejects_non_finite_period(self, period):
        with pytest.raises(ConfigurationError, match="finite"):
            realtime_verdict(20.0, period)
