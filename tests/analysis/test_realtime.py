"""Tests for real-time verdicts."""

import pytest

from repro.analysis.realtime import PAPER_MARGIN, RealTimeVerdict, realtime_verdict
from repro.errors import ConfigurationError


class TestVerdicts:
    def test_comfortable_pass(self):
        assert realtime_verdict(20.0, 33.333) is RealTimeVerdict.PASS

    def test_marginal_inside_margin_band(self):
        # Meets 33.3 ms but leaves less than 15 % for processing --
        # the paper's Fig. 3 "MARGINAL" annotation.
        assert realtime_verdict(30.0, 33.333) is RealTimeVerdict.MARGINAL

    def test_fail_over_period(self):
        assert realtime_verdict(34.0, 33.333) is RealTimeVerdict.FAIL

    def test_boundary_exactly_at_period(self):
        assert realtime_verdict(33.333, 33.333) is RealTimeVerdict.MARGINAL

    def test_boundary_exactly_at_margin(self):
        period = 100.0
        at_margin = period * (1.0 - PAPER_MARGIN)
        assert realtime_verdict(at_margin, period) is RealTimeVerdict.PASS
        assert realtime_verdict(at_margin + 0.01, period) is RealTimeVerdict.MARGINAL

    def test_custom_margin(self):
        assert realtime_verdict(80.0, 100.0, margin=0.3) is RealTimeVerdict.MARGINAL
        assert realtime_verdict(80.0, 100.0, margin=0.1) is RealTimeVerdict.PASS

    def test_feasible_property(self):
        assert RealTimeVerdict.PASS.feasible
        assert RealTimeVerdict.MARGINAL.feasible
        assert not RealTimeVerdict.FAIL.feasible

    def test_paper_margin_is_15_percent(self):
        assert PAPER_MARGIN == pytest.approx(0.15)


class TestValidation:
    def test_rejects_negative_access_time(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(-1.0, 33.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(1.0, 0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigurationError):
            realtime_verdict(1.0, 33.0, margin=1.0)

    @pytest.mark.parametrize(
        "access_time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_non_finite_access_time(self, access_time):
        # A NaN access time compares False against every threshold and
        # would otherwise fall through to PASS -- the one verdict a
        # corrupted measurement must never earn.
        with pytest.raises(ConfigurationError, match="finite"):
            realtime_verdict(access_time, 33.333)

    @pytest.mark.parametrize("period", [float("nan"), float("inf")])
    def test_rejects_non_finite_period(self, period):
        with pytest.raises(ConfigurationError, match="finite"):
            realtime_verdict(20.0, period)


class TestFeasibilityBoundary:
    """The feasibility boundary must classify deterministically.

    Backends that agree to within float rounding noise (the fast/batch
    engines reassociate sums the reference engine accumulates
    serially) must agree on the verdict: an access time exactly at the
    frame period -- or one ulp either side of it -- is always
    feasible, on every backend, deterministically.
    """

    PERIODS = [33.333, 1000.0 / 30.0, 16.683, 100.0]

    @pytest.mark.parametrize("period", PERIODS)
    def test_access_equal_to_period_is_feasible(self, period):
        assert realtime_verdict(period, period).feasible

    @pytest.mark.parametrize("period", PERIODS)
    def test_one_ulp_around_period_is_deterministically_feasible(self, period):
        import math

        below = math.nextafter(period, 0.0)
        above = math.nextafter(period, math.inf)
        verdicts = {
            realtime_verdict(access, period)
            for access in (below, period, above)
        }
        # One verdict for all three: sub-ulp noise cannot flip it.
        assert len(verdicts) == 1
        assert verdicts.pop().feasible

    @pytest.mark.parametrize("period", PERIODS)
    def test_equality_is_a_pass_without_margin(self, period):
        # The raw real-time requirement is "access <= period": with no
        # processing margin demanded, meeting it exactly is a PASS --
        # and so is meeting it to within one ulp.
        import math

        assert realtime_verdict(period, period, margin=0.0) is RealTimeVerdict.PASS
        assert (
            realtime_verdict(math.nextafter(period, math.inf), period, margin=0.0)
            is RealTimeVerdict.PASS
        )

    def test_snap_is_narrow(self):
        # The snap absorbs rounding noise, not real misses: 1 part in
        # a million over the period is still a clean FAIL.
        assert realtime_verdict(33.333 * (1.0 + 1e-6), 33.333) is RealTimeVerdict.FAIL
