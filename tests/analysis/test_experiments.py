"""The headline reproduction tests: every paper artifact's qualitative
pattern, asserted against the simulator.

These are integration tests over the whole stack (use case -> load
model -> multi-channel system -> power/real-time analysis).  They use
a reduced simulation budget to stay fast; the benchmarks run the same
experiments at full fidelity.
"""

import pytest

from repro.analysis.experiments import (
    format_table1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_xdr_comparison,
)
from repro.analysis.realtime import RealTimeVerdict

BUDGET = 60_000

FAIL = RealTimeVerdict.FAIL
MARGINAL = RealTimeVerdict.MARGINAL
PASS = RealTimeVerdict.PASS


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(chunk_budget=BUDGET)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(chunk_budget=BUDGET)


@pytest.fixture(scope="module")
def fig4(fig5):
    return fig5.fig4


class TestTable1:
    """Table I: the bandwidth requirements the prose quotes."""

    def test_720p30_1_9_gbps(self):
        table = run_table1()
        assert table.column_for("3.1").bandwidth_gb_per_s == pytest.approx(
            1.9, abs=0.06
        )

    def test_1080p30_4_3_gbps(self):
        table = run_table1()
        assert table.column_for("4").bandwidth_gb_per_s == pytest.approx(4.3, rel=0.05)

    def test_1080p60_8_6_gbps(self):
        table = run_table1()
        assert table.column_for("4.2").bandwidth_gb_per_s == pytest.approx(
            8.6, rel=0.06
        )

    def test_format_renders(self):
        text = format_table1(run_table1())
        assert "Video encoder" in text
        assert "Data Mem. load [MB/s]" in text


class TestTable2:
    """Table II: 16-byte round-robin over bank clusters."""

    def test_eight_channel_map(self):
        result = run_table2(channels=8)
        assert result.rows[0] == ("0..15", "BC 0")
        assert result.rows[1] == ("16..31", "BC 1")
        assert result.rows[-1] == ("128..143", "BC 0")  # 16 x M wraps

    def test_format_renders(self):
        assert "Bank cluster" in run_table2(4).format()


class TestFig3:
    """Fig. 3: access time vs clock frequency for 720p30."""

    def test_one_channel_200_and_266_fail(self, fig3):
        # "the first two frequencies 200 and 266 MHz cannot meet the
        # performance requirements".
        assert fig3.verdicts[200.0][1] is FAIL
        assert fig3.verdicts[266.0][1] is FAIL

    def test_one_channel_333_marginal(self, fig3):
        # "(333 MHz, marked marginal in Fig. 3), is on the edge".
        assert fig3.verdicts[333.0][1] is MARGINAL

    def test_one_channel_400_and_up_pass(self, fig3):
        for f in (400.0, 466.0, 533.0):
            assert fig3.verdicts[f][1] is PASS

    def test_two_channels_meet_all_frequencies(self, fig3):
        # "at least two channels are required to satisfy the real-time
        # requirements of the 720p HDTV with all the examined DDR2
        # clock frequencies."
        for f in fig3.frequencies_mhz:
            for m in (2, 4, 8):
                assert fig3.verdicts[f][m] is PASS

    def test_close_to_2x_speedup_per_channel_doubling(self, fig3):
        # "close to 2x speedup can be achieved by ... double the
        # number of exploited channels."
        for f in fig3.frequencies_mhz:
            for a, b in ((1, 2), (2, 4), (4, 8)):
                ratio = fig3.access_ms[f][a] / fig3.access_ms[f][b]
                assert 1.7 <= ratio <= 2.1, (f, a, b, ratio)

    def test_close_to_2x_speedup_per_frequency_doubling(self, fig3):
        # ... "or by using double clock frequency".
        for m in fig3.channel_counts:
            ratio = fig3.access_ms[200.0][m] / fig3.access_ms[400.0][m]
            assert 1.7 <= ratio <= 2.1, (m, ratio)

    def test_access_time_monotone_in_frequency(self, fig3):
        for m in fig3.channel_counts:
            times = [fig3.access_ms[f][m] for f in fig3.frequencies_mhz]
            assert times == sorted(times, reverse=True)

    def test_realtime_line(self, fig3):
        assert fig3.realtime_requirement_ms == pytest.approx(33.33, abs=0.01)

    def test_format_renders(self, fig3):
        text = fig3.format()
        assert "Clock [MHz]" in text
        assert "33.3 ms" in text


class TestFig4:
    """Fig. 4: frame-format sweep at 400 MHz."""

    def test_level_31_achievable_with_all_interleavings(self, fig4):
        # "H.264/AVC level 3.1 is achievable with all interleaving
        # schemes."
        for m in fig4.channel_counts:
            assert fig4.verdict("3.1", m).feasible

    def test_level_32_requires_two_channels(self, fig4):
        # "Level 3.2 (@60 fps) requires at least two channels."
        assert fig4.verdict("3.2", 1) is FAIL
        for m in (2, 4, 8):
            assert fig4.verdict("3.2", m) is PASS

    def test_1080p30_safe_with_four_channels(self, fig4):
        # "In order to be on the safe side ... 1080p employs at
        # minimum four channels": 2 channels work but only marginally.
        assert fig4.verdict("4", 1) is FAIL
        assert fig4.verdict("4", 2) is MARGINAL
        assert fig4.verdict("4", 4) is PASS
        assert fig4.verdict("4", 8) is PASS

    def test_1080p60_needs_eight_channels(self, fig4):
        # "The frame format 1080p@60 ... need[s] all eight channels":
        # four channels cannot leave the processing margin.
        assert fig4.verdict("4.2", 2) is FAIL
        assert fig4.verdict("4.2", 4) in (MARGINAL, FAIL)
        assert fig4.verdict("4.2", 8) is PASS

    def test_2160p_on_the_edge_with_eight_channels(self, fig4):
        # "2160p format starts to be already doubtful": only the
        # 8-channel configuration is feasible, and only just.
        for m in (1, 2, 4):
            assert fig4.verdict("5.2", m) is FAIL
        assert fig4.verdict("5.2", 8) in (PASS, MARGINAL)
        assert fig4.access_ms("5.2", 8) > 25.0  # close to the 33.3 line

    def test_1080p30_needs_2_2x_more_than_720p30(self, fig4):
        ratio = fig4.access_ms("4", 4) / fig4.access_ms("3.1", 4)
        assert ratio == pytest.approx(2.2, abs=0.2)

    def test_format_renders(self, fig4):
        assert "Frame format" in fig4.format()


class TestFig5:
    """Fig. 5: power vs frame format at 400 MHz."""

    def test_720p30_single_channel_about_150mw(self, fig5):
        # "With a single channel, average power consumption for 720p
        # is 150 mW."
        p = fig5.point("3.1", 1)
        assert p.total_power_mw == pytest.approx(150.0, rel=0.10)

    def test_720p30_eight_channels_about_205mw(self, fig5):
        # "...whereas 8-channel configuration demands 205 mW."
        p = fig5.point("3.1", 8)
        assert p.total_power_mw == pytest.approx(205.0, rel=0.10)

    def test_1080p30_four_channels_about_345mw(self, fig5):
        # "Video recording for ... 1080p with four channels consumes
        # 345 mW."
        p = fig5.point("4", 4)
        assert p.total_power_mw == pytest.approx(345.0, rel=0.10)

    def test_2160p_eight_channels_about_1280mw(self, fig5):
        # "3840x2160 with 8-channel configuration requires ... up to
        # 1280 mW."
        p = fig5.point("5.2", 8)
        assert p.total_power_mw == pytest.approx(1280.0, rel=0.10)

    def test_multi_channel_power_increase_is_moderate(self, fig5):
        # "the increase in power consumption is moderate when
        # comparing multi-channel to single-channel configuration."
        p1 = fig5.point("3.1", 1).total_power_mw
        p8 = fig5.point("3.1", 8).total_power_mw
        assert 1.0 < p8 / p1 < 1.6

    def test_infeasible_bars_are_zero(self, fig5):
        # "Bars with zero values mean that the memory subsystem
        # configuration cannot meet the real time requirements."
        assert fig5.point("5.2", 1).reported_power_mw == 0.0
        assert fig5.point("4.2", 1).reported_power_mw == 0.0

    def test_interface_power_a_few_mw_per_channel(self, fig5):
        p = fig5.point("3.1", 8).power
        assert 0.0 < p.interface_power_w < 8 * 4.5e-3

    def test_power_grows_with_load(self, fig5):
        powers = [
            fig5.point(name, 8).total_power_mw
            for name in ("3.1", "3.2", "4", "4.2", "5.2")
        ]
        assert powers == sorted(powers)

    def test_format_renders(self, fig5):
        text = fig5.format()
        assert "mW" in text
        assert "0 !" in text  # zero bars present


class TestXdrComparison:
    """Section IV: similar bandwidth at 4-25 % of the XDR power."""

    def test_bandwidth_similar_to_xdr(self, fig5):
        result = run_xdr_comparison(fig5=fig5)
        assert result.peak_bandwidth_bytes_per_s == pytest.approx(25.6e9)
        assert result.reference.bandwidth_bytes_per_s == pytest.approx(25.6e9)

    def test_power_ratio_range_4_to_25_percent(self, fig5):
        result = run_xdr_comparison(fig5=fig5)
        lo, hi = result.power_ratio_range
        assert lo == pytest.approx(0.04, abs=0.01)
        assert hi == pytest.approx(0.25, abs=0.035)

    def test_all_feasible_levels_compared(self, fig5):
        result = run_xdr_comparison(fig5=fig5)
        # All five levels are feasible on 8 channels.
        assert len(result.per_level) == 5

    def test_format_renders(self, fig5):
        text = run_xdr_comparison(fig5=fig5).format()
        assert "XDR" in text
        assert "%" in text
