"""Tests for the GOP steady-state analysis."""

import pytest

from repro.analysis.realtime import RealTimeVerdict
from repro.analysis.steadystate import analyze_gop
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

BUDGET = 40_000


@pytest.fixture(scope="module")
def gop():
    return analyze_gop(
        level_by_name("4"),
        SystemConfig(channels=4, freq_mhz=400.0),
        gop_length=15,
        chunk_budget=BUDGET,
    )


class TestIntraUseCase:
    def test_i_frame_traffic_much_lighter(self):
        level = level_by_name("4")
        p_frame = VideoRecordingUseCase(level)
        i_frame = VideoRecordingUseCase(level, intra_only=True)
        # No reference reads: the dominant encoder term vanishes.
        assert i_frame.total_bits_per_frame() < 0.5 * p_frame.total_bits_per_frame()

    def test_image_processing_unchanged(self):
        level = level_by_name("4")
        p_frame = VideoRecordingUseCase(level)
        i_frame = VideoRecordingUseCase(level, intra_only=True)
        assert i_frame.image_processing_bits_per_frame() == pytest.approx(
            p_frame.image_processing_bits_per_frame()
        )

    def test_intra_has_no_reference_buffers_in_reads(self):
        level = level_by_name("4")
        uc = VideoRecordingUseCase(level, intra_only=True)
        encoder = next(s for s in uc.stages() if s.name == "Video encoder")
        assert not any(buf.startswith("ref_") for buf, _ in encoder.reads)


class TestGopAnalysis:
    def test_p_frame_is_the_worst_frame(self, gop):
        # Confirms the paper's sizing methodology: the steady-state P
        # frame bounds the requirement.
        assert gop.worst_frame_ms == gop.p_frame_ms
        assert gop.i_frame_ms < gop.p_frame_ms

    def test_i_frame_headroom_substantial(self, gop):
        assert gop.i_frame_headroom > 0.3

    def test_frame_pattern_structure(self, gop):
        pattern = gop.frame_pattern_ms
        assert len(pattern) == 15
        assert pattern[0] == gop.i_frame_ms
        assert all(t == gop.p_frame_ms for t in pattern[1:])

    def test_sustained_power_below_p_frame_power(self, gop):
        assert gop.sustained_power_mw < gop.p_frame_power_mw
        assert gop.sustained_power_mw > gop.i_frame_power_mw

    def test_worst_frame_verdict_matches_fig4(self, gop):
        # 1080p30 on four channels passes in Fig. 4; the GOP analysis
        # must agree on its worst frame.
        assert gop.worst_frame_verdict is RealTimeVerdict.PASS

    def test_p_frame_matches_regular_simulation(self, gop):
        from repro.analysis.sweep import simulate_use_case

        point = simulate_use_case(
            level_by_name("4"),
            SystemConfig(channels=4, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        assert gop.p_frame_ms == pytest.approx(point.access_time_ms, rel=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analyze_gop(
                level_by_name("4"),
                SystemConfig(channels=4),
                gop_length=1,
                chunk_budget=BUDGET,
            )

    def test_summary_renders(self, gop):
        text = gop.summary()
        assert "GOP power" in text
        assert "worst-frame" in text
