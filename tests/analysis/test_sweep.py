"""Tests for the sweep machinery."""

import pytest

from repro.analysis.realtime import RealTimeVerdict
from repro.analysis.sweep import (
    channel_sweep_configs,
    frequency_sweep_configs,
    simulate_use_case,
    sweep_use_case,
)
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.usecase.levels import level_by_name

BUDGET = 40_000


class TestSimulateUseCase:
    def test_point_carries_everything(self):
        level = level_by_name("3.1")
        config = SystemConfig(channels=2, freq_mhz=400.0)
        point = simulate_use_case(level, config, chunk_budget=BUDGET)
        assert point.level is level
        assert point.config is config
        assert point.access_time_ms > 0
        assert point.total_power_mw > 0
        assert isinstance(point.verdict, RealTimeVerdict)

    def test_explicit_scale_respected(self):
        level = level_by_name("3.1")
        config = SystemConfig(channels=2)
        point = simulate_use_case(level, config, scale=1 / 128)
        assert point.result.scale == pytest.approx(1 / 128)

    def test_reported_power_zero_on_fail(self):
        # A single channel cannot do 1080p60: Fig. 5 reports zero.
        point = simulate_use_case(
            level_by_name("4.2"), SystemConfig(channels=1), chunk_budget=BUDGET
        )
        assert point.verdict is RealTimeVerdict.FAIL
        assert point.reported_power_mw == 0.0
        assert point.total_power_mw > 0.0  # raw value still available

    def test_reported_power_nonzero_on_pass(self):
        point = simulate_use_case(
            level_by_name("3.1"), SystemConfig(channels=2), chunk_budget=BUDGET
        )
        assert point.reported_power_mw == point.total_power_mw > 0


class TestSweep:
    def test_cartesian_size(self):
        levels = [level_by_name("3.1"), level_by_name("4")]
        configs = channel_sweep_configs(SystemConfig(), [1, 2])
        points = sweep_use_case(levels, configs, chunk_budget=BUDGET)
        assert len(points) == 4

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sweep_use_case([], [SystemConfig()])
        with pytest.raises(ConfigurationError):
            sweep_use_case([level_by_name("3.1")], [])


class TestConfigFactories:
    def test_channel_sweep(self):
        configs = channel_sweep_configs(SystemConfig(freq_mhz=266.0), [1, 4, 8])
        assert [c.channels for c in configs] == [1, 4, 8]
        assert all(c.freq_mhz == 266.0 for c in configs)

    def test_frequency_sweep(self):
        configs = frequency_sweep_configs(SystemConfig(channels=2), [200.0, 533.0])
        assert [c.freq_mhz for c in configs] == [200.0, 533.0]
        assert all(c.channels == 2 for c in configs)
